//! Network monitoring (the paper's Section 1 motivation): several
//! monitoring devices observe flow records at very high rate; the operator
//! wants (a) a live sample of traffic weighted by bytes, and (b) the
//! *residual* heavy flows — the flows that matter once the handful of
//! gigantic elephants are set aside (Theorem 4).
//!
//! The live sample runs as a real concurrent deployment through the
//! scenario driver (`run_scenario`); the residual-heavy-hitter tracker
//! then mines the same flow records.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use dwrs::apps::residual_hh::{
    exact_residual_heavy_hitters, recall, ResidualHeavyHitters, ResidualHhConfig,
};
use dwrs::runtime::{run_scenario, EngineKind, Scenario, Workload};
use dwrs::sim::Partition;
use dwrs::workloads;

fn main() {
    let k = 16; // monitoring devices
    let eps = 0.2;
    let delta = 0.05;

    // Synthetic flow records: a few mega-elephants (backup jobs) dominating
    // total bytes, plus a heavy-tailed mix of ordinary flows. The residual
    // heavy hitters are invisible to naive "top talkers by sampling with
    // replacement" dashboards.
    let flows = workloads::residual_skew(20_000, 5, 2024);
    let total_bytes: f64 = flows.iter().map(|f| f.weight).sum();

    // (a) The live bytes-weighted sample: the k devices run the
    // message-optimal protocol as real threads, flows streaming through
    // the driver's bounded dispatcher (adversarial random placement).
    let scenario = Scenario::new(EngineKind::Threads, k, 16)
        .with_workload(Workload::items(flows.clone()))
        .with_partition(Partition::Random)
        .with_seed(99);
    let live = run_scenario(&scenario).expect("live sampling deployment");
    println!(
        "live bytes-weighted sample across {k} devices ({} messages for {} flows):",
        live.metrics.total(),
        live.items
    );
    for keyed in live.sample.iter().take(5) {
        println!(
            "  flow {:>6}  bytes {:.3e}  key {:.3e}",
            keyed.item.id, keyed.item.weight, keyed.key
        );
    }
    println!();

    let cfg = ResidualHhConfig::new(eps, delta, k);
    println!(
        "tracking residual heavy flows: eps = {eps}, delta = {delta} -> sample size s = {}",
        cfg.sample_size()
    );

    let mut tracker = ResidualHeavyHitters::new(cfg, 99);
    for (t, flow) in flows.iter().enumerate() {
        // Adversarial partitioning: flows land on arbitrary devices.
        tracker.observe(t % k, *flow);
    }

    let candidates = tracker.query();
    let required = exact_residual_heavy_hitters(&flows, eps);

    println!("\ntotal bytes observed : {total_bytes:.3e}");
    println!(
        "messages spent       : {}  (stream had {} records)",
        tracker.messages(),
        flows.len()
    );
    println!("\ntop candidate flows (by bytes):");
    for flow in candidates.iter().take(10) {
        let marker = if required.contains(&flow.id) {
            "*"
        } else {
            " "
        };
        println!("  {marker} flow {:>6}  bytes {:.3e}", flow.id, flow.weight);
    }
    println!("  (* = provably required: >= eps of the residual stream)");
    println!(
        "\nresidual heavy hitter recall: {:.3} over {} required flows",
        recall(&required, &candidates),
        required.len()
    );

    // Show the failure of a same-budget with-replacement sampler.
    use dwrs::core::centralized::{OnlineWeightedSwr, StreamSampler};
    let mut swr = OnlineWeightedSwr::new(tracker.config().sample_size(), 17);
    for flow in &flows {
        swr.observe(*flow);
    }
    let mut swr_top = swr.sample();
    swr_top.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    swr_top.dedup_by_key(|f| f.id);
    swr_top.truncate(tracker.config().output_size());
    println!(
        "with-replacement baseline recall (same budget): {:.3} — the elephants swallow every slot",
        recall(&required, &swr_top)
    );

    let mega: Vec<_> = flows
        .iter()
        .filter(|f| f.weight > total_bytes * 0.05)
        .map(|f| f.id)
        .collect();
    println!("\n(mega-elephants carrying most of the bytes: {mega:?})");
}
