//! The adversary's streams: the two hard instances from the paper's lower
//! bounds (Theorems 5 and 7), run live against the upper-bound algorithms.
//! Watching the message counters climb on exactly these streams — and stay
//! low elsewhere — is the lower bounds made tangible.
//!
//! ```text
//! cargo run --release --example lower_bound_adversary
//! ```

use dwrs::apps::l1::{run_tracker, FolkloreTracker, L1Config, L1DupTracker};
use dwrs::apps::residual_hh::{ResidualHeavyHitters, ResidualHhConfig};
use dwrs::workloads::{exploding, l1_unit_epochs, weighted_epochs};

fn main() {
    // ---- Theorem 5, instance 1: the exploding stream -------------------
    // w_i = eps·(1+eps)^i: every arrival is an eps/(1+eps) heavy hitter, so
    // any correct heavy-hitter tracker must change its answer every step:
    // Ω(log(W)/eps) messages.
    let eps = 0.1;
    let stream = exploding(eps, 1e12, 1 << 20);
    let w: f64 = stream.iter().map(|i| i.weight).sum();
    let k = 8;
    let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(eps, 0.1, k), 1);
    for (t, it) in stream.iter().enumerate() {
        tracker.observe(t % k, *it);
    }
    println!("Theorem 5 / exploding stream (eps = {eps}):");
    println!("  n = {} items, W = {w:.3e}", stream.len());
    println!(
        "  messages = {}  vs lower bound ln(W)/eps = {:.0}",
        tracker.messages(),
        w.ln() / eps
    );
    println!("  (every single item was a heavy hitter on arrival — no algorithm can stay quiet)\n");

    // ---- Theorem 5/7, instance 2: k^i epochs ----------------------------
    // In epoch i every site receives weight k^i; the first arrival is
    // instantly a 1/2 heavy hitter and no site can know it wasn't first:
    // Ω(k) messages per epoch, Ω(k·logW/log k) total.
    let k = 32;
    let inst = weighted_epochs(k, 5);
    let w2: f64 = inst.iter().map(|(_, i)| i.weight).sum();
    let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(0.25, 0.1, k), 2);
    for (site, it) in &inst {
        tracker.observe(*site, *it);
    }
    println!("Theorem 5 / k^i weighted epochs (k = {k}, 5 epochs):");
    println!(
        "  messages = {}  vs lower bound k·ln(W)/ln(k) = {:.0}",
        tracker.messages(),
        k as f64 * w2.ln() / (k as f64).ln()
    );
    println!("  (each epoch forces ~k messages: every site must speak)\n");

    // ---- Theorem 7: L1 tracking hard instance ---------------------------
    let k = 16;
    let inst = l1_unit_epochs(k, 4, 1 << 17);
    let n = inst.len() as f64;
    let mut cfg = L1Config::new(0.2, 0.25, k);
    cfg.sample_size_override = Some(50);
    cfg.dup_override = Some(125);
    let mut ours = L1DupTracker::new(cfg, 3);
    let (_, m_ours) = run_tracker(&mut ours, &inst, usize::MAX);
    let mut folk = FolkloreTracker::new(0.2, k);
    let (_, m_folk) = run_tracker(&mut folk, &inst, usize::MAX);
    println!("Theorem 7 / k^i unit epochs (k = {k}, n = {n}):");
    println!(
        "  this work: {m_ours} msgs; folklore: {m_folk} msgs; lower bound k·ln(W)/ln(k) = {:.0}",
        k as f64 * n.ln() / (k as f64).ln()
    );
    println!("  (no correct tracker beats the bound — the paper's Ω is tight)");
}
