//! Search-query analytics (the paper's other Section 1 motivation): a
//! search engine runs many servers; the analytics pipeline continuously
//! maintains (a) a work-weighted sample of "typical" queries and (b) a
//! `(1±eps)` estimate of the total work (L1 tracking, Theorem 6), while
//! keeping cross-datacenter traffic tiny.
//!
//! ```text
//! cargo run --release --example query_analytics
//! ```

use dwrs::apps::l1::{
    FolkloreTracker, HyzTracker, L1Config, L1DupTracker, L1Estimator, PiggybackL1Tracker,
};
use dwrs::core::swor::SworConfig;
use dwrs::sim::{assign_sites, build_swor, Partition};
use dwrs::workloads;

fn main() {
    let k = 32; // query servers
    let n = 50_000;

    // Query events: Zipf-popular query strings; weight = processing cost.
    let queries = workloads::query_log(n, 2_000, 1.1, 3.0, 7);
    let total_work: f64 = queries.iter().map(|q| q.weight).sum();
    let sites = assign_sites(Partition::Skewed { hot: 0.3 }, k, n, 8);

    // (a) continuous work-weighted sample of queries.
    let s = 12;
    let mut sampler = build_swor(SworConfig::new(s, k), 1);
    sampler.run(sites.iter().copied().zip(queries.iter().copied()));
    println!("typical queries right now (work-weighted sample of {s}):");
    for keyed in sampler.coordinator.sample() {
        println!(
            "  query #{:<5} cost {:>8.2}",
            keyed.item.id, keyed.item.weight
        );
    }
    println!(
        "sampling traffic: {} messages for {n} events\n",
        sampler.metrics.total()
    );

    // (b) L1 tracking of the total work, three protocols compared.
    let eps = 0.1;
    let mut ours = {
        let mut cfg = L1Config::new(eps, 0.25, k);
        // Experiment-scale constants (see EXPERIMENTS.md): lean sample size.
        cfg.sample_size_override = Some(200);
        cfg.dup_override = Some(1000);
        L1DupTracker::new(cfg, 2)
    };
    let mut folklore = FolkloreTracker::new(eps, k);
    let mut hyz = HyzTracker::new(eps, k, 3);
    // Extension: estimate W for free from the sampling deployment itself.
    let mut piggy = PiggybackL1Tracker::new(256, k, 4);
    for (t, q) in queries.iter().enumerate() {
        let site = sites[t];
        ours.observe(site, *q);
        folklore.observe(site, *q);
        hyz.observe(site, *q);
        piggy.observe(site, *q);
    }
    println!("L1 (total work) tracking, eps = {eps}:  true W = {total_work:.1}");
    for tracker in [
        &ours as &dyn L1Estimator,
        &folklore as &dyn L1Estimator,
        &hyz as &dyn L1Estimator,
        &piggy as &dyn L1Estimator,
    ] {
        let est = tracker.estimate().unwrap_or(0.0);
        println!(
            "  {:<34} estimate {:>12.1}  (err {:>6.2}%)  messages {:>8}",
            tracker.name(),
            est,
            100.0 * (est - total_work).abs() / total_work,
            tracker.messages()
        );
    }
    println!(
        "\n[Thm 6's tracker is asymptotically optimal for k ≳ 1/eps²; at this modest k the \
         deterministic baseline is still cheaper — experiment E13 maps the crossover]"
    );
}
