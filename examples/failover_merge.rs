//! Operating the sampler like production infrastructure: hierarchical
//! fan-in, coordinator checkpoint/restore, and free analytics off the live
//! sample (subset sums via the priority-sampling connection, the paper's
//! reference [17]).
//!
//! ```text
//! cargo run --release --example failover_merge
//! ```

use dwrs::core::estimate::{subset_sum, total_weight_estimate};
use dwrs::core::swor::{SworConfig, SworCoordinator};
use dwrs::sim::{build_swor, FanInTree};
use dwrs::workloads;

fn main() {
    // ---- 1. Hierarchical deployment: 4 regions × 8 sites ---------------
    let s = 64;
    let (regions, sites_per_region) = (4, 8);
    let mut tree = FanInTree::new(s, regions, sites_per_region, 500, 2026);
    let events = workloads::pareto(80_000, 1.3, 1.0, 11);
    let total: f64 = events.iter().map(|e| e.weight).sum();
    for (t, ev) in events.iter().enumerate() {
        tree.observe(t % regions, (t / regions) % sites_per_region, *ev);
    }
    tree.sync_all();
    let root = tree.root_sample();
    println!(
        "fan-in tree: {} regions, root sample of {}",
        tree.num_groups(),
        root.len()
    );
    println!(
        "  total messages (intra-region + region->root): {}",
        tree.total_messages()
    );

    // ---- 2. Free analytics off the sample ------------------------------
    // The root sample is an exact top-s of independent keys, so the
    // rank-conditioning estimator gives unbiased subset sums.
    let est_w = total_weight_estimate(&root, false);
    println!("\nanalytics from the sample alone:");
    println!("  true total weight  : {total:.4e}");
    println!(
        "  estimated total    : {est_w:.4e}  (err {:.1}%)",
        100.0 * (est_w - total).abs() / total
    );
    let odd_true: f64 = events
        .iter()
        .filter(|e| e.id % 2 == 1)
        .map(|e| e.weight)
        .sum();
    let odd_est = subset_sum(&root, false, |it| it.id % 2 == 1);
    println!(
        "  odd-id subset sum  : true {odd_true:.4e}, estimated {odd_est:.4e}  (err {:.1}%)",
        100.0 * (odd_est - odd_true).abs() / odd_true
    );

    // ---- 3. Coordinator failover via checkpoint/restore ----------------
    let mut primary = build_swor(SworConfig::new(16, 4), 77);
    let stream = workloads::uniform_weights(30_000, 1.0, 5.0, 3);
    for (t, it) in stream.iter().take(15_000).enumerate() {
        primary.step(t % 4, *it);
    }
    // Checkpoint mid-stream; "crash"; bring up a standby from the snapshot.
    let snap = primary.coordinator.snapshot();
    let mut standby = SworCoordinator::restore(snap);
    // Keep feeding both the same protocol messages and compare.
    let mut downs = Vec::new();
    for (t, it) in stream.iter().enumerate().skip(15_000) {
        // Route through the primary's sites; tee the upstream messages.
        let site = t % 4;
        if let Some(up) = dwrs::core::swor::SworSite::observe(&mut primary.sites[site], *it) {
            primary.coordinator.receive(up, &mut downs);
            for d in downs.drain(..) {
                for st in &mut primary.sites {
                    st.receive(&d);
                }
            }
            standby.receive(up, &mut downs);
            downs.clear();
        }
    }
    let a: Vec<u64> = primary
        .coordinator
        .sample()
        .iter()
        .map(|k| k.item.id)
        .collect();
    let b: Vec<u64> = standby.sample().iter().map(|k| k.item.id).collect();
    println!(
        "\nfailover: primary and restored standby agree on the sample: {}",
        a == b
    );
    println!("  sample ids: {a:?}");
}
