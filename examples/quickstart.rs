//! Quickstart: continuous weighted sampling without replacement over a
//! distributed stream, in five minutes — one `Scenario`, any engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dwrs::runtime::{run_scenario, EngineKind, Scenario, Topology, Workload};
use dwrs::sim::{assign_sites, build_naive, Partition};

fn main() {
    // A stream of 100k weighted items, observed by k = 64 distributed
    // sites. The coordinator must hold a weighted sample (without
    // replacement) of size s = 32 that is valid at *every* point in time.
    let k = 64;
    let s = 32;
    let n = 100_000u64;

    // Describe the whole deployment declaratively: protocol, engine,
    // topology, workload, seed, partition. The driver streams the
    // workload through a bounded dispatcher — memory stays O(batch ×
    // queue) no matter how large n grows.
    let scenario = Scenario::new(EngineKind::Threads, k, s)
        .with_n(n)
        .with_seed(42)
        .with_workload(Workload::Uniform { lo: 1.0, hi: 100.0 })
        .with_partition(Partition::Random);
    let report = run_scenario(&scenario).expect("scenario run");

    println!(
        "stream: n = {} items across {k} sites ({} engine, {:.0} items/s)",
        report.items,
        report.engine,
        report.items_per_s()
    );
    println!(
        "\ncurrent weighted sample (id, weight, key), first 10 of {}:",
        s
    );
    for keyed in report.sample.iter().take(10) {
        println!(
            "  item {:>6}  weight {:>8.3}  key {:.3e}",
            keyed.item.id, keyed.item.weight, keyed.key
        );
    }

    let m = &report.metrics;
    println!("\nmessages used:");
    println!("  early (withheld heavy items) : {}", m.kind("early"));
    println!("  regular (keyed forwards)     : {}", m.kind("regular"));
    println!(
        "  epoch broadcasts             : {}",
        m.kind("update_epoch")
    );
    println!(
        "  level-saturation broadcasts  : {}",
        m.kind("level_saturated")
    );
    println!(
        "  TOTAL                        : {}  (vs {n} stream items!)",
        m.total()
    );
    if let Some(d) = &report.dispatcher {
        println!(
            "\nstreaming dispatch: {} frames, buffered window <= {} items \
             (independent of n)",
            d.frames,
            d.buffered_items_bound()
        );
    }
    println!(
        "invariants: {}",
        if report.invariants_ok() {
            "all checks passed"
        } else {
            "VIOLATED"
        }
    );

    // The same scenario as a two-tier fan-in tree — one line changed.
    let tree = scenario.clone().with_topology(Topology::Tree {
        groups: 8,
        sync_every: 5_000,
    });
    let tree_report = run_scenario(&tree).expect("tree run");
    println!(
        "\nfan-in tree (8 groups x 8 sites): root sample {} entries, {} root syncs, {} messages",
        tree_report.sample.len(),
        tree_report.syncs(),
        tree_report.metrics.total()
    );

    // Compare with the naive protocol the paper improves on: every site
    // keeps its own top-s and forwards every local change.
    let items: Vec<_> = scenario.source().expect("source").collect();
    let sites = assign_sites(Partition::Random, k, items.len(), 42 ^ 0x17);
    let mut naive = build_naive(s, k, 43);
    naive.run(sites.into_iter().zip(items));
    println!(
        "\nnaive per-site-sampler baseline: {} messages ({:.1}x more)",
        naive.metrics.total(),
        naive.metrics.total() as f64 / m.total().max(1) as f64
    );
    let total_weight: f64 = 50.5 * n as f64; // E[uniform(1,100)] per item
    println!(
        "\nTheorem 3: O(k·log(W/s)/log(1+k/s)) = O({:.0}) messages expected",
        (k as f64) * (total_weight / s as f64).ln() / (1.0 + k as f64 / s as f64).ln()
    );
}
