//! Quickstart: continuous weighted sampling without replacement over a
//! distributed stream, in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::sim::{assign_sites, build_naive, build_swor, Partition};

fn main() {
    // A stream of 100k weighted items, observed by k = 8 distributed sites.
    // The coordinator must hold a weighted sample (without replacement) of
    // size s = 10 that is valid at *every* point in time.
    let k = 64;
    let s = 32;
    let n = 100_000u64;

    let items: Vec<Item> = (0..n)
        .map(|i| Item::new(i, 1.0 + (i % 100) as f64))
        .collect();
    let total_weight: f64 = items.iter().map(|it| it.weight).sum();
    let sites = assign_sites(Partition::Random, k, items.len(), 7);

    // The paper's message-optimal protocol (Algorithms 1-3).
    let mut runner = build_swor(SworConfig::new(s, k), 42);
    runner.run(sites.iter().copied().zip(items.iter().copied()));

    println!("stream: n = {n}, total weight W = {total_weight}");
    println!("\ncurrent weighted sample (id, weight, key):");
    for keyed in runner.coordinator.sample() {
        println!(
            "  item {:>6}  weight {:>5}  key {:.3e}",
            keyed.item.id, keyed.item.weight, keyed.key
        );
    }

    let m = &runner.metrics;
    println!("\nmessages used:");
    println!("  early (withheld heavy items) : {}", m.kind("early"));
    println!("  regular (keyed forwards)     : {}", m.kind("regular"));
    println!(
        "  epoch broadcasts             : {}",
        m.kind("update_epoch")
    );
    println!(
        "  level-saturation broadcasts  : {}",
        m.kind("level_saturated")
    );
    println!(
        "  TOTAL                        : {}  (vs {n} stream items!)",
        m.total()
    );

    // Compare with the naive protocol the paper improves on: every site
    // keeps its own top-s and forwards every local change.
    let mut naive = build_naive(s, k, 43);
    naive.run(sites.iter().copied().zip(items.iter().copied()));
    println!(
        "\nnaive per-site-sampler baseline: {} messages ({:.1}x more)",
        naive.metrics.total(),
        naive.metrics.total() as f64 / m.total().max(1) as f64
    );
    println!(
        "\nTheorem 3: O(k·log(W/s)/log(1+k/s)) = O({:.0}) messages expected",
        (k as f64) * (total_weight / s as f64).ln() / (1.0 + k as f64 / s as f64).ln()
    );
}
