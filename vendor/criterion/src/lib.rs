//! Minimal, offline, API-compatible stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use (see
//! `vendor/README.md`): `criterion_group!` / `criterion_main!`,
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and [`Bencher::iter`].
//!
//! Measurement is intentionally simple — a fixed-iteration timed loop with
//! mean ns/iter on stdout, no statistics, no plots. `--test` (what
//! `cargo bench -- --test` passes) switches to a single-iteration smoke run,
//! and a positional argument filters benchmarks by substring, matching the
//! real harness's CLI contract closely enough for CI.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("name", param)`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(param)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to bench closures; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Time `routine` with a per-iteration input built by `setup`; setup
    /// time is excluded from the measurement (matching the real
    /// criterion's `iter_batched`).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed_ns = elapsed.as_nanos();
    }
}

/// Input-buffering strategy for [`Bencher::iter_batched`]. The stand-in
/// builds inputs one at a time regardless, so the variants only mirror the
/// real API.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: the real harness batches many per allocation.
    SmallInput,
    /// Large inputs: the real harness builds them one at a time.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    matched: usize,
}

impl Drop for Criterion {
    // A filter matching nothing is usually a misparsed flag (the stub treats
    // any non-dash argument as a name filter); stay exit-0 — under
    // `cargo bench -- <filter>` a filter may legitimately match zero
    // benchmarks in *this* target while matching another — but don't let the
    // empty run look like a successful one.
    fn drop(&mut self) {
        if self.matched == 0 {
            if let Some(f) = &self.filter {
                eprintln!("warning: benchmark filter '{f}' matched no benchmarks in this target");
            }
        }
    }
}

impl Criterion {
    /// Build from CLI args: recognizes `--test` (single-iteration smoke mode)
    /// and a positional substring filter; ignores other harness flags the
    /// real criterion accepts (`--bench`, `--verbose`, ...).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.should_run(id) {
            return;
        }
        self.matched += 1;
        let iters = if self.test_mode { 1 } else { 20 };
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        let per_iter = b.elapsed_ns as f64 / iters as f64;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / per_iter * 1e3),
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s)", n as f64 / per_iter * 1e9 / 1048576.0)
            }
        });
        println!(
            "{id:<50} {:>12.0} ns/iter{}",
            per_iter,
            rate.unwrap_or_default()
        );
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record units-per-iteration for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not time-box runs.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, &mut f);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion
            .run_one(&id, throughput, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Define a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            test_mode: true,
            matched: 0,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1)).sample_size(10);
            g.bench_function("keep_me", |b| {
                b.iter(|| ran.push("keep"));
            });
            g.bench_function("skip_me", |b| {
                b.iter(|| ran.push("skip"));
            });
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            matched: 0,
        };
        let mut seen = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
                b.iter(|| seen = x);
            });
            g.finish();
        }
        assert_eq!(seen, 7);
    }
}
