//! Minimal, offline, API-compatible stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's test suites use (see
//! `vendor/README.md`): the [`proptest!`] macro, `prop_assert*!` /
//! [`prop_assume!`], [`strategy::Strategy`] for numeric ranges and tuples,
//! [`collection::vec`], [`arbitrary::any`], and
//! [`test_runner::Config`] (`ProptestConfig`).
//!
//! Differences from the real crate, by design:
//!
//! - **Deterministic**: every test derives its RNG seed from its own name
//!   (FNV-1a), so a given binary always runs the identical case sequence.
//!   No failure-persistence files are written.
//! - **No shrinking**: a failing case reports its per-case seed instead of a
//!   minimized input.

/// Deterministic pseudo-random generation (SplitMix64).
pub mod rng {
    /// The RNG handed to strategies. SplitMix64: tiny, fast, and good enough
    /// for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly from a 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Derive a seed from a test name so each test gets a distinct but
        /// reproducible stream (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Run configuration and per-case error type.
pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`. Only `cases` matters.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
        /// Cap on total attempts (rejections included) before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// `ProptestConfig::with_cases(n)` — run `n` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not counted.
        Reject(String),
        /// A `prop_assert*!` failed — the test fails.
        Fail(String),
    }
}

/// The [`Strategy`](strategy::Strategy) trait and implementations for ranges and tuples.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value-tree/shrinking machinery:
    /// a strategy simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Blanket impl so `&S` works where a strategy is expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty integer range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % width;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! int_range_inclusive_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(
                        start <= end,
                        "empty integer range strategy {}..={}",
                        start,
                        end
                    );
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % width;
                    (start as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty float range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! float_range_inclusive_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(
                        start <= end,
                        "empty float range strategy {}..={}",
                        start,
                        end
                    );
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )+};
    }

    float_range_inclusive_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` — the full-range strategy for a type.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::unnecessary_cast)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<u64>()` etc. — unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Define property tests. Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut seed_rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut executed: u32 = 0;
            let mut rejects: u32 = 0;
            while executed < config.cases {
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest stub: too many rejected cases in {} ({} rejects, {} executed)",
                        stringify!($name), rejects, executed
                    );
                }
                let case_seed = seed_rng.next_u64();
                // catch_unwind so a panic from the code under test (not just
                // prop_assert*) still reports the case seed — without
                // shrinking, the seed is the only way to regenerate the input.
                let caught = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let mut case_rng = $crate::rng::TestRng::from_seed(case_seed);
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                let outcome = match caught {
                    ::std::result::Result::Ok(outcome) => outcome,
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest stub: case panicked in {} (case seed {:#018x})",
                            stringify!($name),
                            case_seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                };
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (case seed {:#018x}): {}",
                            stringify!($name), case_seed, msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skip (don't count) the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng::TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::strategy::Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = crate::rng::TestRng::deterministic("vec_lengths");
        for _ in 0..200 {
            let v = crate::strategy::Strategy::generate(
                &crate::collection::vec(0u64..5, 2..9),
                &mut rng,
            );
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng::TestRng::deterministic("same-name");
        let mut b = crate::rng::TestRng::deterministic("same-name");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 1u64..100, (lo, hi) in (0i64..10, 10i64..20)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(lo < hi);
            prop_assert_eq!(x, x);
            prop_assert_ne!(lo, hi);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        #[should_panic(expected = "boom")]
        fn body_panics_still_propagate(n in 0usize..10) {
            // Exercises the catch_unwind path: the runner prints the case
            // seed to stderr, then resumes the unwind.
            assert!(n >= 10, "boom: {n}");
        }
    }
}
