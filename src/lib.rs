//! # dwrs — Weighted Reservoir Sampling from Distributed Streams
//!
//! A production-quality Rust implementation of Jayaram, Sharma, Tirthapura
//! and Woodruff, *"Weighted Reservoir Sampling from Distributed Streams"*
//! (PODS 2019, arXiv:1904.04126), together with the substrates and baselines
//! needed to reproduce every quantitative claim of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dwrs-core` | the message-optimal distributed weighted SWOR (Algorithms 1–3), weighted SWR reduction, unweighted substrates, centralized reference samplers, exact oracle, math/RNG |
//! | [`sim`] | `dwrs-sim` | the distributed coordinator-model simulator with exact message metering, incl. the lockstep fan-in tree |
//! | [`runtime`] | `dwrs-runtime` | concurrent site/coordinator engines (threads, loopback TCP) in flat and hierarchical topologies |
//! | [`workloads`] | `dwrs-workloads` | stream generators incl. the lower-bound hard instances |
//! | [`apps`] | `dwrs-apps` | residual heavy hitters (Thm. 4), L1 tracking (Thm. 6) + baselines, sliding-window extension |
//! | [`stats`] | `dwrs-stats` | chi-square / KS / TV validation toolkit, mergeable GK quantile sketch |
//! | [`telemetry`] | `dwrs-telemetry` | metrics registry (counters, gauges, sketch-backed histograms), trace rings, Prometheus/JSON exposition |
//! | [`load`] | `dwrs-load` | load/chaos harness against the live daemon: rate-controlled schedules, latency percentiles, seeded fault plans, post-run invariant battery |
//!
//! ## Quickstart
//!
//! One declarative [`Scenario`] runs on any engine (lockstep simulator,
//! OS threads, loopback TCP) in any topology (flat, fan-in tree), with
//! the workload streamed through a bounded dispatcher — O(batch × queue)
//! resident memory however long the stream:
//!
//! ```
//! use dwrs::runtime::RuntimeConfig;
//! use dwrs::{run_scenario, EngineKind, Scenario, Workload};
//!
//! // 4 site threads, continuous weighted sample (without replacement)
//! // of size 8 over a streamed 10k-item weighted stream. The tight
//! // batch/queue keeps the feedback window small on this short stream
//! // (message counts grow with pipeline depth; see the README).
//! let scenario = Scenario::new(EngineKind::Threads, 4, 8)
//!     .with_n(10_000)
//!     .with_seed(42)
//!     .with_workload(Workload::Uniform { lo: 1.0, hi: 14.0 })
//!     .with_runtime(RuntimeConfig::new().with_batch_max(4).with_queue_capacity(4));
//! let report = run_scenario(&scenario).unwrap();
//!
//! assert_eq!(report.sample.len(), 8); // valid at *every* prefix, too
//! // Message-optimal: far fewer messages than stream items.
//! assert!(report.metrics.total() < 2_000);
//! // Accounting/sample invariants are checked on every run.
//! assert!(report.invariants_ok());
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench` for the experiment
//! harness regenerating the paper's tables (documented in EXPERIMENTS.md).

pub use dwrs_apps as apps;
pub use dwrs_core as core;
pub use dwrs_load as load;
pub use dwrs_runtime as runtime;
pub use dwrs_sim as sim;
pub use dwrs_stats as stats;
pub use dwrs_telemetry as telemetry;
pub use dwrs_workloads as workloads;

pub use dwrs_runtime::{
    run_scenario, EngineKind, Query, QueryAnswer, RunReport, Scenario, Topology, Workload,
};

/// Crate version of the facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
