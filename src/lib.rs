//! # dwrs — Weighted Reservoir Sampling from Distributed Streams
//!
//! A production-quality Rust implementation of Jayaram, Sharma, Tirthapura
//! and Woodruff, *"Weighted Reservoir Sampling from Distributed Streams"*
//! (PODS 2019, arXiv:1904.04126), together with the substrates and baselines
//! needed to reproduce every quantitative claim of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dwrs-core` | the message-optimal distributed weighted SWOR (Algorithms 1–3), weighted SWR reduction, unweighted substrates, centralized reference samplers, exact oracle, math/RNG |
//! | [`sim`] | `dwrs-sim` | the distributed coordinator-model simulator with exact message metering, incl. the lockstep fan-in tree |
//! | [`runtime`] | `dwrs-runtime` | concurrent site/coordinator engines (threads, loopback TCP) in flat and hierarchical topologies |
//! | [`workloads`] | `dwrs-workloads` | stream generators incl. the lower-bound hard instances |
//! | [`apps`] | `dwrs-apps` | residual heavy hitters (Thm. 4), L1 tracking (Thm. 6) + baselines, sliding-window extension |
//! | [`stats`] | `dwrs-stats` | chi-square / KS / TV validation toolkit |
//!
//! ## Quickstart
//!
//! ```
//! use dwrs::core::swor::SworConfig;
//! use dwrs::sim::{assign_sites, build_swor, Partition};
//! use dwrs::core::Item;
//!
//! // 4 sites, continuous weighted sample (without replacement) of size 8.
//! let mut runner = build_swor(SworConfig::new(8, 4), 42);
//! let items: Vec<Item> = (0..10_000u64)
//!     .map(|i| Item::new(i, 1.0 + (i % 13) as f64))
//!     .collect();
//! let sites = assign_sites(Partition::RoundRobin, 4, items.len(), 7);
//! runner.run(sites.into_iter().zip(items));
//!
//! let sample = runner.coordinator.sample(); // valid at *every* prefix, too
//! assert_eq!(sample.len(), 8);
//! // Message-optimal: far fewer messages than stream items.
//! assert!(runner.metrics.total() < 2_000);
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench` for the experiment
//! harness regenerating the paper's tables (documented in EXPERIMENTS.md).

pub use dwrs_apps as apps;
pub use dwrs_core as core;
pub use dwrs_runtime as runtime;
pub use dwrs_sim as sim;
pub use dwrs_stats as stats;
pub use dwrs_workloads as workloads;

/// Crate version of the facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
