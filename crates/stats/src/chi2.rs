//! Chi-square goodness-of-fit and two-sample homogeneity tests.

use dwrs_core::math::gamma_q;

/// Result of a chi-square test.
#[derive(Clone, Copy, Debug)]
pub struct Chi2Result {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// `P(X² ≥ statistic)` under the null.
    pub p_value: f64,
}

/// Goodness-of-fit of observed counts against expected probabilities.
///
/// `expected` must sum to ~1; cells with tiny expectation are merged into a
/// remainder cell to keep the asymptotics honest.
pub fn chi2_gof(observed: &[u64], expected: &[f64]) -> Chi2Result {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(observed.len() >= 2, "need at least 2 cells");
    let n: u64 = observed.iter().sum();
    assert!(n > 0, "no observations");
    let psum: f64 = expected.iter().sum();
    assert!(
        (psum - 1.0).abs() < 1e-6,
        "expected probabilities must sum to 1, got {psum}"
    );
    let mut stat = 0.0;
    let mut cells = 0usize;
    let mut rest_obs = 0.0f64;
    let mut rest_exp = 0.0f64;
    for (&o, &p) in observed.iter().zip(expected) {
        let e = p * n as f64;
        if e < 5.0 {
            rest_obs += o as f64;
            rest_exp += e;
        } else {
            stat += (o as f64 - e) * (o as f64 - e) / e;
            cells += 1;
        }
    }
    if rest_exp > 0.0 {
        stat += (rest_obs - rest_exp) * (rest_obs - rest_exp) / rest_exp;
        cells += 1;
    }
    assert!(cells >= 2, "all cells underpopulated");
    let dof = cells - 1;
    Chi2Result {
        statistic: stat,
        dof,
        p_value: gamma_q(dof as f64 / 2.0, stat / 2.0),
    }
}

/// Two-sample chi-square homogeneity test on two count vectors over the same
/// categories.
pub fn chi2_two_sample(a: &[u64], b: &[u64]) -> Chi2Result {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least 2 cells");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "empty sample");
    let k1 = ((nb as f64) / (na as f64)).sqrt();
    let k2 = 1.0 / k1;
    let mut stat = 0.0;
    let mut cells = 0usize;
    for (&oa, &ob) in a.iter().zip(b) {
        let tot = oa + ob;
        if tot == 0 {
            continue;
        }
        let d = k1 * oa as f64 - k2 * ob as f64;
        stat += d * d / tot as f64;
        cells += 1;
    }
    assert!(cells >= 2, "no populated cells");
    let dof = cells - 1;
    Chi2Result {
        statistic: stat,
        dof,
        p_value: gamma_q(dof as f64 / 2.0, stat / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::rng::Rng;

    #[test]
    fn fair_die_accepted() {
        let mut rng = Rng::new(1);
        let mut counts = [0u64; 6];
        for _ in 0..60_000 {
            counts[rng.index(6)] += 1;
        }
        let r = chi2_gof(&counts, &[1.0 / 6.0; 6]);
        assert_eq!(r.dof, 5);
        assert!(r.p_value > 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn loaded_die_rejected() {
        // Clearly biased counts.
        let counts = [20_000u64, 10_000, 10_000, 10_000, 10_000, 10_000];
        let r = chi2_gof(&counts, &[1.0 / 6.0; 6]);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_same_distribution_accepted() {
        let mut rng = Rng::new(2);
        let mut a = [0u64; 8];
        let mut b = [0u64; 8];
        for _ in 0..40_000 {
            a[rng.index(8)] += 1;
            b[rng.index(8)] += 1;
        }
        let r = chi2_two_sample(&a, &b);
        assert!(r.p_value > 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_different_rejected() {
        let a = [10_000u64, 10_000, 10_000, 10_000];
        let b = [16_000u64, 8_000, 8_000, 8_000];
        let r = chi2_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn small_cells_merged() {
        // One cell with tiny expectation must not produce NaN/invalid dof.
        let counts = [5_000u64, 5_000, 1];
        let r = chi2_gof(&counts, &[0.4999, 0.4999, 0.0002]);
        assert!(r.p_value.is_finite());
    }
}
