//! Mergeable streaming quantile sketch (Greenwald–Khanna style).
//!
//! [`QuantileSketch`] answers any quantile query within `eps` *rank* error
//! using `O(1/eps · log(eps · n))` stored tuples, independent of the stream
//! length. Each stored tuple `(v, g, delta)` brackets the true rank of `v`:
//! `rmin = Σ g` over tuples up to and including it, `rmax = rmin + delta`.
//! The compression invariant `g_i + g_{i+1} + delta_{i+1} ≤ 2·eps·n` is what
//! bounds the query error.
//!
//! Two sketches built with the same `eps` fold with [`QuantileSketch::merge`]
//! the same way per-thread `Metrics` fold today: rank-interval widths add
//! across the merge, so a merge of shards each within `eps·n_i` stays within
//! `eps·Σn_i` of the exact combined ranks. Inserts are buffered and folded in
//! batches so the amortized per-observation cost is a push onto a `Vec`.

/// One summary tuple: `v` covers `g` observations whose ranks end at
/// `rmin(self)`, with `delta` extra rank uncertainty above that.
#[derive(Clone, Copy, Debug)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// Streaming `eps`-approximate quantile summary with merge support.
///
/// ```
/// use dwrs_stats::QuantileSketch;
/// let mut s = QuantileSketch::new(0.01);
/// for i in 0..10_000 {
///     s.observe(i as f64);
/// }
/// let p50 = s.query(0.5).unwrap();
/// assert!((p50 - 5_000.0).abs() <= 0.01 * 10_000.0 + 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    eps: f64,
    /// Summary tuples, sorted by `v`.
    tuples: Vec<Tuple>,
    /// Raw observations not yet folded into `tuples`.
    buffer: Vec<f64>,
    buffer_cap: usize,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl QuantileSketch {
    /// Creates an empty sketch with rank-error tolerance `eps` (e.g. `0.01`
    /// answers every quantile within ±1% of the true rank). Panics unless
    /// `0 < eps < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps < 1.0 && eps.is_finite(),
            "quantile sketch eps must be in (0, 1), got {eps}"
        );
        // Batch inserts so compression runs once per O(1/eps) observations.
        let buffer_cap = ((1.0 / eps) as usize).clamp(16, 4096);
        Self {
            eps,
            tuples: Vec::new(),
            buffer: Vec::with_capacity(buffer_cap),
            buffer_cap,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// The rank-error tolerance this sketch was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Total number of observations folded in (including buffered ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation, `None` when empty. Exact.
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest observation, `None` when empty. Exact.
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Sum of all observations. Exact (up to float rounding).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, `None` when empty. Exact (up to float rounding).
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.sum / self.count as f64)
    }

    /// Number of summary tuples currently held (after folding the buffer).
    /// Exposed so tests can assert the `O(1/eps · log(eps·n))` space bound.
    pub fn tuple_count(&mut self) -> usize {
        self.fold_buffer();
        self.tuples.len()
    }

    /// Records one observation. Amortized O(1): values are buffered and
    /// folded into the summary every `O(1/eps)` calls. Non-finite values are
    /// rejected with a panic — a NaN would poison every later comparison.
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite(), "quantile sketch observation must be finite");
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buffer.push(v);
        if self.buffer.len() >= self.buffer_cap {
            self.fold_buffer();
        }
    }

    /// Answers the `q`-quantile (`q ∈ [0, 1]`) within `eps` rank error;
    /// `None` when empty. `query(0.0)` / `query(1.0)` return the exact
    /// min / max.
    pub fn query(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.is_empty() {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        self.fold_buffer();
        let n = self.count as f64;
        // Target rank in 1..=n, and the slack the invariant guarantees.
        let r = (q * n).ceil().max(1.0);
        let limit = r + (self.eps * n).floor();
        let mut rmin: u64 = 0;
        for i in 0..self.tuples.len() {
            rmin += self.tuples[i].g;
            let next_rmax = match self.tuples.get(i + 1) {
                Some(next) => rmin + next.g + next.delta,
                // Last tuple is the max: its rank is exact.
                None => return Some(self.tuples[i].v),
            };
            // The first tuple whose successor could overshoot the tolerance
            // band is the answer: its own rank interval contains r ± eps·n.
            if (next_rmax as f64) > limit {
                return Some(self.tuples[i].v);
            }
        }
        unreachable!("non-empty sketch always yields a tuple");
    }

    /// Convenience: several quantiles in one pass over the summary.
    pub fn quantiles(&mut self, qs: &[f64]) -> Vec<Option<f64>> {
        qs.iter().map(|&q| self.query(q)).collect()
    }

    /// Folds `other` into `self`. Rank-interval widths add across the merge,
    /// so shards each within `eps·n_i` combine to within `eps·Σn_i` — the
    /// same contract as `Metrics::merge` for message counters. Panics if the
    /// sketches were built with different `eps`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.eps - other.eps).abs() < 1e-12,
            "cannot merge sketches with different eps ({} vs {})",
            self.eps,
            other.eps
        );
        if other.is_empty() {
            return;
        }
        // Other's buffered values are raw exact observations: replay them.
        // Counts/min/max/sum for them come along with the replay.
        let mut other_summary = Vec::new();
        let mut other_summary_count = 0u64;
        for t in &other.tuples {
            other_summary.push(*t);
            other_summary_count += t.g;
        }
        for &v in &other.buffer {
            self.count += 1;
            self.sum += v;
            self.buffer.push(v);
        }
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.fold_buffer();
        if other_summary.is_empty() {
            return;
        }
        self.count += other_summary_count;
        self.sum += other.sum - other.buffer.iter().sum::<f64>();
        self.tuples = combine(&self.tuples, &other_summary);
        self.compress();
    }

    /// Merges a whole pool of per-worker sketches into one — the
    /// fan-in counterpart of sharded recording (each worker observes
    /// into its own sketch with no synchronization, then the pool folds
    /// here). Returns an empty sketch of the given `eps` when the pool
    /// is empty. Panics if any sketch disagrees on `eps`.
    pub fn merge_all<'a>(eps: f64, pool: impl IntoIterator<Item = &'a QuantileSketch>) -> Self {
        let mut merged = QuantileSketch::new(eps);
        for sketch in pool {
            merged.merge(sketch);
        }
        merged
    }

    /// Drops every observation but keeps `eps` and capacity.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.buffer.clear();
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.sum = 0.0;
    }

    /// Merges buffered raw observations into the tuple summary.
    fn fold_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_by(f64::total_cmp);
        let mut merged = Vec::with_capacity(self.tuples.len() + self.buffer.len());
        let mut bi = 0;
        for t in &self.tuples {
            while bi < self.buffer.len() && self.buffer[bi] <= t.v {
                merged.push(Tuple {
                    v: self.buffer[bi],
                    g: 1,
                    // A raw value inserted before summary tuple `t` is only
                    // uncertain about how many of `t`'s covered items sit
                    // below it: the standard GK insert bound.
                    delta: (t.g + t.delta).saturating_sub(1),
                });
                bi += 1;
            }
            merged.push(*t);
        }
        while bi < self.buffer.len() {
            // Past the last summary tuple: rank is exact.
            merged.push(Tuple {
                v: self.buffer[bi],
                g: 1,
                delta: 0,
            });
            bi += 1;
        }
        self.buffer.clear();
        self.tuples = merged;
        self.compress();
    }

    /// Greedily merges adjacent tuples while the GK invariant
    /// `g_i + g_{i+1} + delta_{i+1} ≤ 2·eps·n` holds.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.eps * self.count as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // Keep the first and last tuples verbatim so the ends stay sharp.
        for i in 1..self.tuples.len() {
            let t = self.tuples[i];
            let last = *out.last().expect("out is seeded");
            let can_merge =
                out.len() > 1 && i < self.tuples.len() - 1 && last.g + t.g + t.delta <= threshold;
            if can_merge {
                let last = out.last_mut().expect("out is seeded");
                // Absorb `last` into `t`: the combined tuple keeps `t`'s
                // value and uncertainty, covering both gs.
                *last = Tuple {
                    v: t.v,
                    g: last.g + t.g,
                    delta: t.delta,
                };
            } else {
                out.push(t);
            }
        }
        self.tuples = out;
    }
}

/// Merge-sorts two tuple lists into one valid summary. A tuple keeps its own
/// `(g, delta)` and inherits the rank uncertainty of the *other* summary's
/// successor tuple — the items that summary cannot place on one side of it.
fn combine(a: &[Tuple], b: &[Tuple]) -> Vec<Tuple> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.v <= y.v,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let (t, other_next) = if take_a {
            let t = a[i];
            i += 1;
            (t, b.get(j))
        } else {
            let t = b[j];
            j += 1;
            (t, a.get(i))
        };
        let extra = match other_next {
            Some(nxt) => (nxt.g + nxt.delta).saturating_sub(1),
            None => 0,
        };
        out.push(Tuple {
            v: t.v,
            g: t.g,
            delta: t.delta + extra,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank band of `v` in a sorted oracle: positions (1-based) that
    /// `v` could occupy among equals.
    fn rank_band(sorted: &[f64], v: f64) -> (f64, f64) {
        let lo = sorted.partition_point(|&x| x < v);
        let hi = sorted.partition_point(|&x| x <= v);
        (lo as f64 + 1.0, hi as f64)
    }

    /// Asserts every decile answered by `sk` is within `eps·n` rank error of
    /// the exact answer over `data`.
    fn assert_rank_error(sk: &mut QuantileSketch, data: &[f64], eps: f64) {
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let got = sk.query(q).expect("non-empty");
            let target = (q * n).ceil().max(1.0);
            let (lo, hi) = rank_band(&sorted, got);
            let err = if target < lo {
                lo - target
            } else if target > hi {
                target - hi
            } else {
                0.0
            };
            assert!(
                err <= eps * n + 1.0,
                "q={q}: got {got} with rank band [{lo},{hi}], target {target}, \
                 err {err} > eps·n = {}",
                eps * n
            );
        }
    }

    #[test]
    fn empty_sketch_answers_none() {
        let mut s = QuantileSketch::new(0.05);
        assert!(s.is_empty());
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn single_value() {
        let mut s = QuantileSketch::new(0.05);
        s.observe(42.0);
        assert_eq!(s.query(0.0), Some(42.0));
        assert_eq!(s.query(0.5), Some(42.0));
        assert_eq!(s.query(1.0), Some(42.0));
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(42.0));
    }

    #[test]
    fn ends_are_exact() {
        let mut s = QuantileSketch::new(0.02);
        for i in 0..50_000 {
            s.observe((i * 7 % 50_000) as f64);
        }
        assert_eq!(s.query(0.0), Some(0.0));
        assert_eq!(s.query(1.0), Some(49_999.0));
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(49_999.0));
    }

    #[test]
    fn uniform_stream_within_eps() {
        let eps = 0.01;
        let mut s = QuantileSketch::new(eps);
        let mut data = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1_000_000) as f64;
            data.push(v);
            s.observe(v);
        }
        assert_rank_error(&mut s, &data, eps);
    }

    #[test]
    fn sorted_adversary_within_eps() {
        let eps = 0.01;
        let mut s = QuantileSketch::new(eps);
        let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        for &v in &data {
            s.observe(v);
        }
        assert_rank_error(&mut s, &data, eps);
        let mut rev = QuantileSketch::new(eps);
        for &v in data.iter().rev() {
            rev.observe(v);
        }
        assert_rank_error(&mut rev, &data, eps);
    }

    #[test]
    fn space_stays_sublinear() {
        let eps = 0.01;
        let mut s = QuantileSketch::new(eps);
        for i in 0..1_000_000u64 {
            s.observe((i.wrapping_mul(2654435761) % 1_000_003) as f64);
        }
        let tuples = s.tuple_count();
        // O(1/eps · log(eps n)) with small constants: 1/0.01 · log2(10^4) ≈
        // 1300. Allow generous headroom; the point is ≪ n.
        assert!(
            tuples < 10_000,
            "summary kept {tuples} tuples for 1M observations"
        );
    }

    #[test]
    fn merge_of_shards_matches_pooled_data() {
        let eps = 0.01;
        let shards = 8;
        let mut pooled = Vec::new();
        let mut merged = QuantileSketch::new(eps);
        for shard in 0..shards {
            let mut s = QuantileSketch::new(eps);
            let mut x: u64 = 0xdeadbeef + shard;
            for _ in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x % 500_000) as f64;
                pooled.push(v);
                s.observe(v);
            }
            merged.merge(&s);
        }
        assert_eq!(merged.count(), pooled.len() as u64);
        assert_rank_error(&mut merged, &pooled, eps);
    }

    #[test]
    fn merge_empty_and_into_empty() {
        let mut a = QuantileSketch::new(0.05);
        let mut b = QuantileSketch::new(0.05);
        a.merge(&b); // empty into empty
        assert!(a.is_empty());
        b.observe(1.0);
        b.observe(2.0);
        a.merge(&b); // into empty
        assert_eq!(a.count(), 2);
        assert_eq!(a.query(1.0), Some(2.0));
        let c = QuantileSketch::new(0.05);
        a.merge(&c); // empty into non-empty
        assert_eq!(a.count(), 2);
    }

    #[test]
    #[should_panic(expected = "different eps")]
    fn merge_rejects_mismatched_eps() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_observation_panics() {
        let mut s = QuantileSketch::new(0.05);
        s.observe(f64::NAN);
    }

    #[test]
    fn clear_resets() {
        let mut s = QuantileSketch::new(0.05);
        for i in 0..1000 {
            s.observe(i as f64);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.query(0.5), None);
        s.observe(7.0);
        assert_eq!(s.query(0.5), Some(7.0));
    }

    #[test]
    fn merge_all_pools_worker_sketches() {
        // Four "workers" each record a disjoint quarter of 0..20_000; the
        // pooled sketch must answer quantiles over the union within the
        // merged rank-error bound, exactly as one sketch over it all.
        let eps = 0.01;
        let n = 20_000u64;
        let workers: Vec<QuantileSketch> = (0..4)
            .map(|w| {
                let mut s = QuantileSketch::new(eps);
                for i in (w..n).step_by(4) {
                    s.observe(i as f64);
                }
                s
            })
            .collect();
        let mut pooled = QuantileSketch::merge_all(eps, &workers);
        assert_eq!(pooled.count(), n);
        assert_eq!(pooled.max(), Some((n - 1) as f64));
        for q in [0.5, 0.9, 0.99] {
            let got = pooled.query(q).unwrap();
            let rank = got as u64;
            let want = (q * n as f64) as u64;
            let slack = (2.0 * eps * n as f64) as u64;
            assert!(
                rank.abs_diff(want) <= slack,
                "q{q}: got rank {rank}, want {want} ± {slack}"
            );
        }
        assert!(QuantileSketch::merge_all(eps, []).is_empty());
    }

    #[test]
    fn sum_and_mean_are_exact() {
        let mut s = QuantileSketch::new(0.02);
        let mut sum = 0.0;
        for i in 1..=10_000 {
            s.observe(i as f64);
            sum += i as f64;
        }
        assert!((s.sum() - sum).abs() < 1e-6);
        assert!((s.mean().unwrap() - sum / 10_000.0).abs() < 1e-9);
    }
}
