//! # dwrs-stats
//!
//! Statistical validation toolkit used to check that the distributed
//! samplers match their target distributions: chi-square and
//! Kolmogorov–Smirnov tests with p-values, total-variation distance, and
//! descriptive statistics. Special functions come from `dwrs-core::math`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chi2;
pub mod descriptive;
pub mod ks;
pub mod sketch;
pub mod tv;

pub use chi2::{chi2_gof, chi2_two_sample, Chi2Result};
pub use descriptive::{mean, quantile, stddev, variance, Summary};
pub use ks::{ks_one_sample, ks_two_sample, KsResult};
pub use sketch::QuantileSketch;
pub use tv::{tv_distance, tv_from_counts};
