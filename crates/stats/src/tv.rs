//! Total-variation distance between discrete distributions.

/// TV distance between two probability vectors over the same support:
/// `½·Σ|p_i - q_i|`.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// TV distance between two empirical count vectors (normalized first).
pub fn tv_from_counts(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "empty counts");
    0.5 * a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 / na as f64 - y as f64 / nb as f64).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn disjoint_is_one() {
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_normalized() {
        let d = tv_from_counts(&[10, 10], &[1, 3]);
        // p = (0.5, 0.5), q = (0.25, 0.75) -> TV = 0.25
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.4, 0.4, 0.2];
        assert!((tv_distance(&p, &q) - tv_distance(&q, &p)).abs() < 1e-15);
    }
}
