//! Kolmogorov–Smirnov tests (one- and two-sample) with asymptotic p-values.

/// Result of a KS test.
#[derive(Clone, Copy, Debug)]
pub struct KsResult {
    /// The KS statistic (sup-norm distance between CDFs).
    pub statistic: f64,
    /// Asymptotic `P(D ≥ statistic)` under the null.
    pub p_value: f64,
}

/// Asymptotic Kolmogorov survival function
/// `Q(λ) = 2·Σ_{j≥1} (-1)^(j-1) e^(-2 j² λ²)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `xs` against the CDF `cdf`.
pub fn ks_one_sample<F: Fn(f64) -> f64>(xs: &[f64], cdf: F) -> KsResult {
    assert!(!xs.is_empty(), "empty sample");
    let n = xs.len();
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mut d: f64 = 0.0;
    for (i, &x) in v.iter().enumerate() {
        let c = cdf(x);
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((c - lo).abs().max((c - hi).abs()));
    }
    let sqrt_n = (n as f64).sqrt();
    // Stephens' small-sample correction.
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Two-sample KS test.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> KsResult {
    assert!(!xs.is_empty() && !ys.is_empty(), "empty sample");
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    // Advance through the merged order, measuring the ECDF gap after each
    // step; when one side is exhausted the final in-loop gap |1 - F_other|
    // dominates everything the tail could add.
    while i < n && j < m {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let gap = (i as f64 / n as f64 - j as f64 / m as f64).abs();
        d = d.max(gap);
    }
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::rng::Rng;

    #[test]
    fn uniform_sample_accepted() {
        let mut rng = Rng::new(1);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.f64()).collect();
        let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0));
        assert!(r.p_value > 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn exponential_sample_accepted() {
        let mut rng = Rng::new(2);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.exp()).collect();
        let r = ks_one_sample(&xs, |x| 1.0 - (-x).exp());
        assert!(r.p_value > 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn wrong_distribution_rejected() {
        let mut rng = Rng::new(3);
        // Exponential sample tested against uniform CDF.
        let xs: Vec<f64> = (0..5_000).map(|_| rng.exp()).collect();
        let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0));
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_same_accepted_different_rejected() {
        let mut rng = Rng::new(4);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.exp()).collect();
        let ys: Vec<f64> = (0..10_000).map(|_| rng.exp()).collect();
        let zs: Vec<f64> = (0..10_000).map(|_| rng.exp() * 1.3).collect();
        assert!(ks_two_sample(&xs, &ys).p_value > 1e-4);
        assert!(ks_two_sample(&xs, &zs).p_value < 1e-6);
    }

    #[test]
    fn kolmogorov_q_monotone() {
        let mut last = 1.0;
        for i in 1..40 {
            let q = kolmogorov_q(i as f64 * 0.1);
            assert!(q <= last + 1e-12);
            last = q;
        }
        assert!(kolmogorov_q(0.3) > 0.99);
        assert!(kolmogorov_q(2.0) < 0.001);
    }
}
