//! Descriptive statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile by linear interpolation on the sorted copy, `q ∈ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample (panics on empty input).
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty slice");
        Self {
            n: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            median: quantile(xs, 0.5),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stddev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }
}
