//! Property-based validation of the quantile sketch against an exact sorted
//! oracle: the `eps` rank-error guarantee must hold for uniform, zipfian and
//! adversarially sorted inputs, and for arbitrary shardings of a stream
//! merged back together (the telemetry registry folds per-thread sketches
//! exactly this way).

use dwrs_stats::QuantileSketch;
use proptest::prelude::*;
use proptest::rng::TestRng;

/// Checks every 5%-ile of `sk` against the exact rank band of `data`.
/// Allows `eps·n + 1` to absorb ceil/floor rounding at tiny n.
fn assert_within_eps(sk: &mut QuantileSketch, data: &[f64], eps: f64) -> Result<(), TestCaseError> {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    for i in 0..=20 {
        let q = i as f64 / 20.0;
        let got = sk.query(q).expect("sketch is non-empty");
        let lo = sorted.partition_point(|&x| x < got) as f64 + 1.0;
        let hi = sorted.partition_point(|&x| x <= got) as f64;
        let target = (q * n).ceil().max(1.0);
        let err = if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        };
        prop_assert!(
            err <= eps * n + 1.0,
            "q={} answered {} (rank band [{},{}]), target rank {}, err > {}",
            q,
            got,
            lo,
            hi,
            target,
            eps * n
        );
    }
    Ok(())
}

/// Zipf-ish heavy-tailed draw: rank r with probability ∝ 1/r over `universe`.
fn zipf_draw(rng: &mut TestRng, universe: u64) -> f64 {
    // Inverse-CDF on the harmonic weights via rejection-free scan is too
    // slow; use the standard approximation u^(-1) shape: x = universe^u is
    // heavy-tailed enough to stress the sketch's skew handling.
    let u = rng.unit_f64();
    (universe as f64).powf(u).floor()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn uniform_streams_respect_eps(
        n in 200usize..12_000,
        scale in 1u64..1_000_000,
        eps_mil in 5u64..80,
    ) {
        let eps = eps_mil as f64 / 1000.0;
        let mut rng = TestRng::from_seed(n as u64 ^ (scale << 20) ^ eps_mil);
        let mut sk = QuantileSketch::new(eps);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let v = (rng.next_u64() % scale.max(1)) as f64;
            data.push(v);
            sk.observe(v);
        }
        prop_assert_eq!(sk.count(), n as u64);
        assert_within_eps(&mut sk, &data, eps)?;
    }

    #[test]
    fn zipf_streams_respect_eps(
        n in 200usize..12_000,
        universe in 10u64..1_000_000,
        eps_mil in 5u64..80,
    ) {
        let eps = eps_mil as f64 / 1000.0;
        let mut rng = TestRng::from_seed((n as u64) << 32 ^ universe ^ eps_mil);
        let mut sk = QuantileSketch::new(eps);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let v = zipf_draw(&mut rng, universe);
            data.push(v);
            sk.observe(v);
        }
        assert_within_eps(&mut sk, &data, eps)?;
    }

    #[test]
    fn sorted_adversaries_respect_eps(
        n in 200usize..12_000,
        eps_mil in 5u64..80,
        descending in proptest::arbitrary::any::<bool>(),
    ) {
        let eps = eps_mil as f64 / 1000.0;
        let mut sk = QuantileSketch::new(eps);
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        if descending {
            for &v in data.iter().rev() { sk.observe(v); }
        } else {
            for &v in &data { sk.observe(v); }
        }
        assert_within_eps(&mut sk, &data, eps)?;
    }

    #[test]
    fn merged_shards_respect_eps(
        shards in 2usize..9,
        per_shard in 100usize..3_000,
        eps_mil in 10u64..60,
    ) {
        let eps = eps_mil as f64 / 1000.0;
        let mut rng = TestRng::from_seed((shards as u64) << 48 ^ (per_shard as u64) << 8 ^ eps_mil);
        let mut pooled = Vec::new();
        let mut merged = QuantileSketch::new(eps);
        for _ in 0..shards {
            let mut sk = QuantileSketch::new(eps);
            for _ in 0..per_shard {
                let v = (rng.next_u64() % 100_000) as f64;
                pooled.push(v);
                sk.observe(v);
            }
            merged.merge(&sk);
        }
        prop_assert_eq!(merged.count(), pooled.len() as u64);
        // Merge-of-shards must meet the same eps bound as a single sketch
        // over the pooled stream.
        assert_within_eps(&mut merged, &pooled, eps)?;
    }

    #[test]
    fn merge_is_order_insensitive_on_counts(
        a_n in 1usize..2_000,
        b_n in 1usize..2_000,
    ) {
        let eps = 0.02;
        let mut rng = TestRng::from_seed((a_n as u64) << 32 ^ b_n as u64);
        let mut a = QuantileSketch::new(eps);
        let mut b = QuantileSketch::new(eps);
        for _ in 0..a_n { a.observe((rng.next_u64() % 1000) as f64); }
        for _ in 0..b_n { b.observe((rng.next_u64() % 1000) as f64); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.count(), (a_n + b_n) as u64);
        prop_assert_eq!(ab.query(0.0), ba.query(0.0));
        prop_assert_eq!(ab.query(1.0), ba.query(1.0));
    }
}
