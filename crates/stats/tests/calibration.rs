//! Calibration of the statistical tests: under the null hypothesis,
//! p-values must be roughly uniform — the whole validation methodology of
//! the experiment suite rests on this.

use dwrs_core::Rng;
use dwrs_stats::{chi2_gof, chi2_two_sample, ks_one_sample, ks_two_sample};

/// Checks a batch of null p-values for gross mis-calibration: the fraction
/// below 0.1 must be near 0.1, and extreme small values must be rare.
fn assert_calibrated(ps: &[f64], label: &str) {
    let n = ps.len() as f64;
    let below_10 = ps.iter().filter(|&&p| p < 0.1).count() as f64 / n;
    assert!(
        (below_10 - 0.1).abs() < 0.06,
        "{label}: P(p < 0.1) = {below_10}"
    );
    let below_001 = ps.iter().filter(|&&p| p < 0.001).count() as f64 / n;
    assert!(
        below_001 < 0.02,
        "{label}: too many tiny p-values {below_001}"
    );
    let mean: f64 = ps.iter().sum::<f64>() / n;
    assert!(
        (mean - 0.5).abs() < 0.08,
        "{label}: mean p-value {mean} far from 0.5"
    );
}

#[test]
fn chi2_gof_calibrated_under_null() {
    let mut rng = Rng::new(1);
    let cells = 8usize;
    let expected = vec![1.0 / cells as f64; cells];
    let ps: Vec<f64> = (0..400)
        .map(|_| {
            let mut counts = vec![0u64; cells];
            for _ in 0..4_000 {
                counts[rng.index(cells)] += 1;
            }
            chi2_gof(&counts, &expected).p_value
        })
        .collect();
    assert_calibrated(&ps, "chi2_gof");
}

#[test]
fn chi2_two_sample_calibrated_under_null() {
    let mut rng = Rng::new(2);
    let cells = 6usize;
    let ps: Vec<f64> = (0..400)
        .map(|_| {
            let mut a = vec![0u64; cells];
            let mut b = vec![0u64; cells];
            for _ in 0..3_000 {
                a[rng.index(cells)] += 1;
                b[rng.index(cells)] += 1;
            }
            chi2_two_sample(&a, &b).p_value
        })
        .collect();
    assert_calibrated(&ps, "chi2_two_sample");
}

#[test]
fn ks_one_sample_calibrated_under_null() {
    let mut rng = Rng::new(3);
    let ps: Vec<f64> = (0..300)
        .map(|_| {
            let xs: Vec<f64> = (0..2_000).map(|_| rng.exp()).collect();
            ks_one_sample(&xs, |x| 1.0 - (-x).exp()).p_value
        })
        .collect();
    assert_calibrated(&ps, "ks_one_sample");
}

#[test]
fn ks_two_sample_calibrated_under_null() {
    let mut rng = Rng::new(4);
    let ps: Vec<f64> = (0..300)
        .map(|_| {
            let xs: Vec<f64> = (0..1_500).map(|_| rng.f64()).collect();
            let ys: Vec<f64> = (0..1_500).map(|_| rng.f64()).collect();
            ks_two_sample(&xs, &ys).p_value
        })
        .collect();
    assert_calibrated(&ps, "ks_two_sample");
}

#[test]
fn tests_have_power_against_alternatives() {
    // Complementary direction: shifted alternatives must be rejected
    // essentially always at these sample sizes.
    let mut rng = Rng::new(5);
    let mut rejections = 0;
    let trials = 50;
    for _ in 0..trials {
        let xs: Vec<f64> = (0..2_000).map(|_| rng.exp()).collect();
        let ys: Vec<f64> = (0..2_000).map(|_| rng.exp() * 1.3).collect();
        if ks_two_sample(&xs, &ys).p_value < 0.01 {
            rejections += 1;
        }
    }
    assert!(
        rejections >= trials * 8 / 10,
        "KS lacks power: {rejections}/{trials}"
    );
}
