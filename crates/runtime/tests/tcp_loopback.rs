//! Integration: the full weighted-SWOR protocol over real loopback TCP
//! sockets — in-process (`run_tcp`) and split into standalone server/client
//! halves (`serve_coordinator` + `run_site`), the shape a multi-process
//! deployment uses.

use std::net::TcpListener;
use std::thread;

use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::run_swor;
#[allow(deprecated)]
use dwrs_runtime::split_stream;
use dwrs_runtime::{EngineKind, RuntimeConfig};
use dwrs_sim::{swor_coordinator, swor_site, Metrics};

#[allow(deprecated)]
fn skewed_streams(n: u64, k: usize) -> Vec<Vec<Item>> {
    let items = dwrs_workloads::zipf_ranked(n as usize, 1.2, 9);
    split_stream(k, items.into_iter().enumerate().map(|(i, it)| (i % k, it)))
}

#[test]
fn tcp_engine_end_to_end() {
    let k = 4;
    let n = 50_000u64;
    let out = run_swor(
        EngineKind::Tcp,
        SworConfig::new(16, k),
        1234,
        skewed_streams(n, k),
        &RuntimeConfig::default(),
    )
    .expect("tcp run");
    assert_eq!(out.coordinator.sample().len(), 16);
    // Exact wire accounting survives the socket hop and the thread merge.
    let m = &out.metrics;
    assert_eq!(m.up_bytes, 17 * m.kind("early") + 25 * m.kind("regular"));
    assert_eq!(
        m.down_bytes,
        5 * m.kind("level_saturated") + 9 * m.kind("update_epoch")
    );
    assert_eq!(m.down_total, m.broadcast_events * k as u64);
    // The sample is the true top-s: every sampled key clears the final u.
    let sample = out.coordinator.sample();
    let u = out.coordinator.u();
    assert!(sample.iter().all(|kd| kd.key >= u));
}

#[test]
fn serve_and_site_halves_interoperate() {
    // A standalone coordinator server plus k independently spawned site
    // clients — the multi-process deployment shape, here on threads.
    let k = 3;
    let cfg = SworConfig::new(8, k);
    let seed = 77u64;
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let streams = skewed_streams(30_000, k);

    let server = thread::spawn({
        let cfg = cfg.clone();
        move || {
            let coordinator = swor_coordinator(cfg, seed);
            dwrs_runtime::tcp::serve_coordinator(
                &listener,
                k,
                coordinator,
                &RuntimeConfig::default(),
            )
        }
    });

    let mut clients = Vec::new();
    for (i, items) in streams.into_iter().enumerate() {
        let cfg = cfg.clone();
        clients.push(thread::spawn(move || {
            let site = swor_site(&cfg, seed, i);
            dwrs_runtime::tcp::run_site(addr, i, site, items, &RuntimeConfig::default())
        }));
    }

    let mut site_metrics = Metrics::new();
    for c in clients {
        let (_site, m) = c.join().unwrap().expect("site run");
        site_metrics.merge(&m);
    }
    let (coordinator, server_metrics, items_observed) = server.join().unwrap().expect("serve run");
    assert_eq!(items_observed, 30_000, "watermark covers the whole stream");
    assert_eq!(coordinator.sample().len(), 8);
    // The server meters ups from decoded frames; the clients meter them at
    // send time. Both sides of the wire must agree exactly.
    assert_eq!(server_metrics.up_total, site_metrics.up_total);
    assert_eq!(server_metrics.up_bytes, site_metrics.up_bytes);
    assert_eq!(server_metrics.kind("early"), site_metrics.kind("early"));
    assert_eq!(server_metrics.kind("regular"), site_metrics.kind("regular"));
}

#[test]
fn tcp_and_threads_agree_on_heavy_hitter_inclusion() {
    // Same deployment, same seed, both threaded substrates: the heaviest
    // item of a very skewed stream must be sampled by both (its inclusion
    // probability is overwhelming at this weight ratio).
    let k = 4;
    let mut items = dwrs_workloads::zipf_ranked(20_000, 1.5, 3);
    // Make rank-1 truly dominant.
    let max_id = items
        .iter()
        .max_by(|a, b| a.weight.total_cmp(&b.weight))
        .unwrap()
        .id;
    for it in &mut items {
        if it.id == max_id {
            it.weight *= 1e6;
        }
    }
    #[allow(deprecated)]
    let streams = |items: &[Item]| {
        split_stream(
            k,
            items.iter().copied().enumerate().map(|(i, it)| (i % k, it)),
        )
    };
    for engine in [EngineKind::Threads, EngineKind::Tcp, EngineKind::Epoll] {
        let out = run_swor(
            engine,
            SworConfig::new(8, k),
            555,
            streams(&items),
            &RuntimeConfig::default(),
        )
        .expect("run");
        assert!(
            out.coordinator
                .sample()
                .iter()
                .any(|kd| kd.item.id == max_id),
            "engine {engine}: dominant item missing from sample"
        );
    }
}
