//! Failover-path coverage for `AttachClient::attach_with_retry`: a flaky
//! listener that kills the first connections is ridden out by the backoff
//! loop, exhaustion surfaces as the typed `ReattachExhausted` error, and
//! an aborted (crashed) link frees its slot for the next incarnation.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig};
use dwrs_runtime::{RetryPolicy, RuntimeConfig, RuntimeError};
use dwrs_sim::swor_site;

/// A quick policy for tests: real backoff shape, millisecond scale.
fn fast_policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        base_ms: 1,
        cap_ms: 8,
        jitter_seed: 42,
    }
}

/// One half of the proxy pump: copy until EOF, then propagate the
/// half-close so framing semantics survive the hop.
fn pipe(mut from: TcpStream, mut to: TcpStream) {
    let _ = io::copy(&mut from, &mut to);
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

/// A listener that accepts and immediately slams the first `drop_first`
/// connections, then transparently proxies the rest to `real` — the
/// shape of a daemon behind a recovering network path.
fn flaky_proxy(real: SocketAddr, drop_first: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    thread::spawn(move || {
        let mut dropped = 0;
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            if dropped < drop_first {
                dropped += 1;
                drop(client);
                continue;
            }
            let Ok(upstream) = TcpStream::connect(real) else {
                break;
            };
            let (cr, cw) = (client.try_clone().expect("clone"), client);
            let (ur, uw) = (upstream.try_clone().expect("clone"), upstream);
            thread::spawn(move || pipe(cr, uw));
            thread::spawn(move || pipe(ur, cw));
        }
    });
    addr
}

#[test]
fn retry_rides_out_a_flaky_listener() {
    let d = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let mut ctrl = CtrlClient::connect(d.local_addr()).expect("ctrl");
    ctrl.create("flaky", 1, 8, "swor").expect("create");
    let proxy = flaky_proxy(d.local_addr(), 3);

    let cfg = SworConfig::new(8, 1);
    let rcfg = RuntimeConfig::default();
    let (mut client, failures) = AttachClient::attach_with_retry(
        proxy,
        "flaky",
        0,
        swor_site(&cfg, 7, 0),
        &rcfg,
        &fast_policy(8),
    )
    .expect("attach through the proxy");
    // Exactly the slammed connections were burned; the first clean one
    // won the slot.
    assert_eq!(failures, 3);
    assert!(!client.resumed());

    client.feed((0..500).map(Item::unit)).expect("feed");
    client.finish().expect("finish");
    let fin = ctrl.drain_stream("flaky").expect("drain");
    assert_eq!(fin.items, 500);
    d.shutdown();
}

#[test]
fn exhaustion_is_a_typed_error() {
    // A listener that never lets a handshake through.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    thread::spawn(move || {
        for conn in listener.incoming() {
            drop(conn);
        }
    });

    let cfg = SworConfig::new(4, 1);
    let rcfg = RuntimeConfig::default();
    let err = AttachClient::attach_with_retry(
        addr,
        "gone",
        0,
        swor_site(&cfg, 1, 0),
        &rcfg,
        &fast_policy(3),
    )
    .expect_err("every attempt must fail");
    match err {
        RuntimeError::ReattachExhausted { attempts, ref last } => {
            assert_eq!(attempts, 3);
            assert!(!last.is_empty(), "the final failure is carried along");
        }
        other => panic!("expected ReattachExhausted, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(
        rendered.contains("reattach exhausted after 3 attempts"),
        "got {rendered:?}"
    );
}

#[test]
fn abort_frees_the_slot_for_the_next_incarnation() {
    let d = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = d.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("crashy", 1, 4, "swor").expect("create");

    let cfg = SworConfig::new(4, 1);
    let rcfg = RuntimeConfig::default();
    let mut c = AttachClient::attach(addr, "crashy", 0, swor_site(&cfg, 3, 0), &rcfg).unwrap();
    c.feed((0..300).map(Item::unit)).expect("feed");
    // Crash: no flush, no handshake. The daemon must notice on its own.
    drop(c.abort());

    // The slot comes back resumable; the retry loop absorbs the window
    // in which the daemon has not yet processed the dead link.
    let (mut c, _failures) = AttachClient::attach_with_retry(
        addr,
        "crashy",
        0,
        swor_site(&cfg, 9, 0),
        &rcfg,
        &fast_policy(10),
    )
    .expect("reattach after crash");
    assert!(c.resumed());
    // Whatever the crash lost, it cannot have manufactured items.
    assert!(c.prior_items() <= 300);
    c.feed((300..400).map(Item::unit)).expect("feed resumed");
    c.finish().expect("finish");
    let fin = ctrl.drain_stream("crashy").expect("drain");
    assert!(fin.items <= 400);
    assert!(fin.items >= 100, "the resumed incarnation's items arrived");
    d.shutdown();
}

#[test]
fn backoff_delays_are_deterministic_and_capped() {
    let p = RetryPolicy {
        attempts: 8,
        base_ms: 10,
        cap_ms: 100,
        jitter_seed: 99,
    };
    for attempt in 0..8 {
        let full = (10u64 << attempt).min(100);
        let d = p.delay(attempt);
        // Pure: same policy and attempt, same delay.
        assert_eq!(d, p.delay(attempt));
        // Jitter shortens by at most half; the cap always holds.
        assert!(d <= Duration::from_millis(full));
        assert!(d >= Duration::from_millis(full / 2));
    }
    // Different seeds de-synchronize concurrently restarting sites.
    let q = RetryPolicy {
        jitter_seed: 7,
        ..p
    };
    assert!((0..8).any(|a| p.delay(a) != q.delay(a)));
}
