//! Slow-peer coverage for `CtrlClient`: a throttling control server that
//! trickles its reply one byte at a time (length prefix included) must
//! still decode cleanly, and the client must wait in blocking reads — not
//! burn a core polling. Kept as its own test binary so the process-wide
//! CPU-time measurement is not polluted by sibling tests.

use std::io::Write;
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use dwrs_core::ctrl::{CtrlMsg, CtrlResp};
use dwrs_core::framed::{FramedReader, FramedWriter};
use dwrs_runtime::daemon::CtrlClient;

/// This process's accumulated CPU time (user + system), read from
/// `/proc/self/stat` — std exposes no process-CPU clock, and the test
/// must not add dependencies. Linux-only, like the loopback daemon tests.
fn process_cpu() -> Duration {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    // Fields 14 (utime) and 15 (stime), counted *after* the parenthesised
    // comm field, which may itself contain spaces.
    let rest = stat.rsplit(')').next().expect("comm close paren");
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11).expect("utime").parse().expect("utime int");
    let stime: u64 = fields.next().expect("stime").parse().expect("stime int");
    // `_SC_CLK_TCK` is 100 on the Linux targets this test supports.
    Duration::from_nanos((utime + stime) * (1_000_000_000 / 100))
}

#[test]
fn trickled_reply_decodes_without_busy_waiting() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // The reply the server will trickle: big enough that byte-at-a-time
    // delivery takes a measurable wall-clock while the client waits.
    let info: String = "slow but steady wins the frame ".repeat(8);
    let reply = CtrlResp::Ok { info: info.clone() };

    let server = thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).expect("nodelay");
        // Read the request whole (the client sends it normally).
        let mut reader = FramedReader::new(stream.try_clone().expect("clone"));
        let req = reader
            .read_msg::<CtrlMsg>()
            .expect("read request")
            .expect("one request");
        assert!(matches!(req, CtrlMsg::Create { .. }), "got {req:?}");
        // Encode the response into a buffer, then dribble it out a byte
        // at a time — every read on the client side returns partial data.
        let mut encoded = FramedWriter::new(Vec::new());
        encoded.write_msg(&reply).expect("encode");
        let bytes = encoded.into_inner();
        let mut out = stream;
        for b in &bytes {
            out.write_all(std::slice::from_ref(b)).expect("trickle");
            out.flush().expect("flush");
            thread::sleep(Duration::from_micros(700));
        }
        bytes.len()
    });

    let mut ctrl = CtrlClient::connect(addr).expect("connect");
    let cpu0 = process_cpu();
    let t0 = Instant::now();
    let resp = ctrl
        .request(&CtrlMsg::Create {
            stream: "s".into(),
            k: 1,
            s: 8,
            query: "swor".into(),
        })
        .expect("request against the trickle server");
    let wall = t0.elapsed();
    let cpu = process_cpu() - cpu0;
    let sent = server.join().expect("server");

    // Correctness: the frame reassembled exactly despite arriving in
    // `sent` one-byte reads.
    assert_eq!(resp, CtrlResp::Ok { info });
    assert!(sent > 200, "reply should be non-trivial, got {sent} bytes");

    // The trickle dominates the wall clock...
    assert!(
        wall >= Duration::from_millis(100),
        "trickle finished suspiciously fast: {wall:?}"
    );
    // ...while the client sleeps in blocking reads. A busy-polling client
    // would burn CPU comparable to the wall time; granting a generous
    // margin keeps the assertion robust on loaded CI machines.
    assert!(
        cpu < wall / 3,
        "client burned {cpu:?} CPU over {wall:?} wall — is it polling?"
    );
}
