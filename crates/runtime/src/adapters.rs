//! Convenience builders mirroring `dwrs_sim::adapters`: one call wires `k`
//! seeded protocol sites and a coordinator onto a runtime engine.
//!
//! The site/coordinator construction (seeds included) is byte-identical to
//! the lockstep builders, so a lockstep run and a runtime run of the same
//! deployment differ only in execution substrate — which is exactly what
//! the equivalence tests compare.

use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
use dwrs_core::Item;
use dwrs_sim::{swor_coordinator, swor_site};

use crate::config::RuntimeConfig;
use crate::engine::{run_threads, RunOutput, RuntimeError};
use crate::tcp::run_tcp;

/// Which execution substrate to run a deployment on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded lockstep simulator (`dwrs_sim::Runner`).
    Lockstep,
    /// OS threads over in-process bounded channels.
    Threads,
    /// OS threads over loopback TCP with framed wire encoding.
    Tcp,
    /// Event-driven loopback TCP: the same wire format as [`Tcp`], but
    /// every connection multiplexed onto a few epoll event loops instead
    /// of two threads per site ([`crate::epoll`]).
    ///
    /// [`Tcp`]: EngineKind::Tcp
    Epoll,
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lockstep" => Ok(EngineKind::Lockstep),
            "threads" => Ok(EngineKind::Threads),
            "tcp" => Ok(EngineKind::Tcp),
            "epoll" => Ok(EngineKind::Epoll),
            other => Err(format!(
                "unknown engine '{other}' (expected lockstep | threads | tcp | epoll)"
            )),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Lockstep => write!(f, "lockstep"),
            EngineKind::Threads => write!(f, "threads"),
            EngineKind::Tcp => write!(f, "tcp"),
            EngineKind::Epoll => write!(f, "epoll"),
        }
    }
}

/// Builds the weighted-SWOR deployment (same seeds as
/// `dwrs_sim::build_swor`) and runs it on the chosen threaded substrate.
///
/// `streams[i]` is site `i`'s partition of the stream in arrival order
/// (any streaming iterator — pre-materialized vecs or the driver's
/// bounded shard queues); `cfg.num_sites` must equal `streams.len()`.
pub fn run_swor<I>(
    engine: EngineKind,
    cfg: SworConfig,
    seed: u64,
    streams: Vec<I>,
    rcfg: &RuntimeConfig,
) -> Result<RunOutput<SworSite, SworCoordinator>, RuntimeError>
where
    I: IntoIterator<Item = Item> + Send,
{
    assert_eq!(
        cfg.num_sites,
        streams.len(),
        "one stream partition per site"
    );
    let sites: Vec<SworSite> = (0..cfg.num_sites)
        .map(|i| swor_site(&cfg, seed, i))
        .collect();
    let coordinator = swor_coordinator(cfg, seed);
    match engine {
        EngineKind::Lockstep => {
            // Uniform API: drive the single-threaded simulator over a
            // round-robin interleaving of the partitions (any interleaving
            // is a valid adversarial arrival order in the paper's model).
            let mut runner = dwrs_sim::Runner::new(coordinator, sites);
            crate::driver::interleave_shards(streams, |site, item| runner.step(site, item));
            Ok(RunOutput {
                sites: runner.sites,
                coordinator: runner.coordinator,
                metrics: runner.metrics,
            })
        }
        EngineKind::Threads => run_threads(sites, coordinator, streams, rcfg),
        EngineKind::Tcp => run_tcp(sites, coordinator, streams, rcfg),
        EngineKind::Epoll => {
            // Vec-based entry point: materialize each partition into a
            // nonblocking feed. The scenario driver streams shard queues
            // into `run_epoll` directly instead.
            let feeds: Vec<Box<dyn crate::epoll::ItemFeed>> = streams
                .into_iter()
                .map(|items| {
                    Box::new(crate::epoll::VecFeed::new(items.into_iter().collect()))
                        as Box<dyn crate::epoll::ItemFeed>
                })
                .collect();
            crate::epoll::run_epoll(sites, coordinator, feeds, rcfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::engine::split_stream;

    #[test]
    fn engine_kind_parses() {
        assert_eq!(
            "threads".parse::<EngineKind>().unwrap(),
            EngineKind::Threads
        );
        assert_eq!("tcp".parse::<EngineKind>().unwrap(), EngineKind::Tcp);
        assert_eq!("epoll".parse::<EngineKind>().unwrap(), EngineKind::Epoll);
        assert_eq!(
            "lockstep".parse::<EngineKind>().unwrap(),
            EngineKind::Lockstep
        );
        assert!("async".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::Tcp.to_string(), "tcp");
        assert_eq!(EngineKind::Epoll.to_string(), "epoll");
    }

    #[allow(deprecated)]
    fn streams(n: u64, k: usize) -> Vec<Vec<Item>> {
        split_stream(
            k,
            (0..n).map(|i| ((i % k as u64) as usize, Item::new(i, 1.0 + (i % 7) as f64))),
        )
    }

    #[test]
    fn run_swor_threads_end_to_end() {
        let n = 5000u64;
        let out = run_swor(
            EngineKind::Threads,
            SworConfig::new(8, 4),
            42,
            streams(n, 4),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.coordinator.sample().len(), 8);
        assert!(out.metrics.up_total > 0);
        // The paper's byte accounting must hold after the per-thread merge.
        let m = &out.metrics;
        assert_eq!(
            m.up_bytes,
            17 * m.kind("early") + 25 * m.kind("regular"),
            "upstream bytes must match exact frame sizes"
        );
        assert_eq!(
            m.down_bytes,
            5 * m.kind("level_saturated") + 9 * m.kind("update_epoch"),
            "downstream bytes must match exact frame sizes"
        );
    }

    #[test]
    fn tight_pipeline_recovers_message_sublinearity() {
        // Threaded execution is the delayed-delivery regime: the message
        // bound degrades with the feedback window (pipeline depth =
        // queue_capacity × batch_max per site), never correctness. With a
        // pipeline much shorter than the stream, sites learn thresholds in
        // time and message counts stay strongly sublinear, as in lockstep.
        let n = 20_000u64;
        let rcfg = RuntimeConfig::new()
            .with_batch_max(4)
            .with_queue_capacity(4);
        let out = run_swor(
            EngineKind::Threads,
            SworConfig::new(8, 4),
            42,
            streams(n, 4),
            &rcfg,
        )
        .unwrap();
        assert_eq!(out.coordinator.sample().len(), 8);
        assert!(
            out.metrics.total() < n / 4,
            "expected sublinear traffic, got {} of n = {n}",
            out.metrics.total()
        );
        // And the deep-pipeline run on the same stream still answers with a
        // correct sample, just more traffic.
        let deep = run_swor(
            EngineKind::Threads,
            SworConfig::new(8, 4),
            42,
            streams(n, 4),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(deep.coordinator.sample().len(), 8);
    }
}
