//! Runtime tuning knobs.

/// Configuration for the threaded/TCP engines.
///
/// The two knobs trade latency for throughput on the up path:
///
/// * `batch_max` — a site buffers upstream messages and ships them as one
///   transport frame once this many have accumulated (the tail is always
///   flushed at end-of-stream). Larger batches amortize channel wakeups and
///   socket syscalls; smaller batches tighten the staleness window in which
///   the coordinator has not yet seen a site's candidates.
/// * `queue_capacity` — bound (in batches) of the site→coordinator queue.
///   When the coordinator falls behind, site `send`s block: bounded-queue
///   backpressure instead of unbounded buffering. The down path is
///   deliberately *unbounded* and eagerly drained, which is what makes the
///   blocking up path deadlock-free (see `crate::engine`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Upstream messages per transport frame before a flush is forced.
    pub batch_max: usize,
    /// Site→coordinator queue bound, in batches.
    pub queue_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            batch_max: 64,
            queue_capacity: 128,
        }
    }
}

impl RuntimeConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the batch flush threshold (clamped to ≥ 1).
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Sets the up-queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_one() {
        let cfg = RuntimeConfig::new()
            .with_batch_max(0)
            .with_queue_capacity(0);
        assert_eq!(cfg.batch_max, 1);
        assert_eq!(cfg.queue_capacity, 1);
        let cfg = RuntimeConfig::new().with_batch_max(256);
        assert_eq!(cfg.batch_max, 256);
        assert_eq!(cfg.queue_capacity, RuntimeConfig::default().queue_capacity);
    }
}
