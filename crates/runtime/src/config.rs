//! Runtime tuning knobs.

/// Configuration for the threaded/TCP/epoll engines.
///
/// The knobs trade latency for throughput:
///
/// * `batch_max` — a site buffers upstream messages and ships them as one
///   transport frame once this many have accumulated (the tail is always
///   flushed at end-of-stream). Larger batches amortize channel wakeups and
///   socket syscalls; smaller batches tighten the staleness window in which
///   the coordinator has not yet seen a site's candidates.
/// * `queue_capacity` — bound (in batches) of the site→coordinator queue.
///   When the coordinator falls behind, site `send`s block: bounded-queue
///   backpressure instead of unbounded buffering. The down path is
///   deliberately *unbounded* and eagerly drained, which is what makes the
///   blocking up path deadlock-free (see `crate::engine`).
/// * `down_poll_every` — items a site observes between polls of its down
///   link. Each poll is an atomic-laden channel drain (or a nonblocking
///   socket read on the epoll engine), so polling every item costs real
///   hot-path throughput; polling rarely widens the staleness window in
///   which a site keeps shipping candidates a fresher threshold would have
///   filtered. The protocols tolerate arbitrarily stale thresholds by
///   design (delayed-delivery regime), so this knob trades
///   threshold-propagation latency — and with it some message-count
///   inflation — against per-item overhead, never correctness. High-k
///   epoll runs can raise it to cut syscalls, or lower it toward 1 to
///   tighten threshold propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Upstream messages per transport frame before a flush is forced.
    pub batch_max: usize,
    /// Site→coordinator queue bound, in batches.
    pub queue_capacity: usize,
    /// Items a site observes between polls of its down link.
    pub down_poll_every: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            batch_max: 64,
            queue_capacity: 128,
            down_poll_every: 32,
        }
    }
}

impl RuntimeConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the batch flush threshold (clamped to ≥ 1).
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Sets the up-queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Sets the down-link poll cadence in items (clamped to ≥ 1; 1 polls
    /// before every item like the lockstep runner's prompt-delivery mode).
    pub fn with_down_poll_every(mut self, down_poll_every: u32) -> Self {
        self.down_poll_every = down_poll_every.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_one() {
        let cfg = RuntimeConfig::new()
            .with_batch_max(0)
            .with_queue_capacity(0)
            .with_down_poll_every(0);
        assert_eq!(cfg.batch_max, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.down_poll_every, 1);
        let cfg = RuntimeConfig::new().with_batch_max(256);
        assert_eq!(cfg.batch_max, 256);
        assert_eq!(cfg.queue_capacity, RuntimeConfig::default().queue_capacity);
        assert_eq!(cfg.down_poll_every, 32);
    }
}
