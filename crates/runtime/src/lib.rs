//! # dwrs-runtime
//!
//! A concurrent execution substrate for the PODS'19 site/coordinator
//! protocols: `k` sites and one coordinator run as real OS threads
//! connected by a pluggable framed [`transport`] — in-process bounded
//! channels ([`run_threads`]) or loopback TCP with the `swor::wire`
//! encoding on real sockets ([`tcp::run_tcp`], plus standalone
//! [`tcp::serve_coordinator`] / [`tcp::run_site`] halves for multi-process
//! deployments).
//!
//! Any [`dwrs_sim::SiteNode`] / [`dwrs_sim::CoordinatorNode`] pair runs
//! unmodified; the lockstep simulator remains the specification substrate,
//! this crate is the throughput substrate. The engine provides:
//!
//! * **per-site upstream batching** with a configurable flush threshold
//!   ([`RuntimeConfig::batch_max`]);
//! * **bounded-queue backpressure** on the up path
//!   ([`RuntimeConfig::queue_capacity`]) with an unbounded, eagerly
//!   drained down path — the combination that makes blocking sends
//!   deadlock-free (see [`engine`]);
//! * **deterministic graceful shutdown**: flush → `Eof` → coordinator
//!   drain → down-link close → final sample extraction, with per-thread
//!   [`dwrs_sim::Metrics`] merged into totals that follow the paper's
//!   accounting exactly as the lockstep runner's do;
//! * **panic-safe joins**: a crashing site or coordinator thread surfaces
//!   as a [`RuntimeError`] instead of a hang.
//!
//! The threaded engines are *not* round-synchronous: sites apply
//! coordinator broadcasts whenever they arrive, i.e. they run in the
//! delayed-delivery regime the protocols already tolerate (stale
//! thresholds cannot break correctness, only inflate message counts —
//! `tests/runtime_equivalence.rs` verifies the output distribution matches
//! the lockstep simulator's).
//!
//! Beyond the flat `k`-sites-one-coordinator deployment, the [`tree`]
//! module runs the **hierarchical fan-in topology**: groups of sites
//! against per-group aggregators, which periodically ship their mergeable
//! keyed samples to a root merger over the same transports (see
//! [`run_tree_swor`]).
//!
//! # Example
//!
//! ```
//! use dwrs_core::swor::SworConfig;
//! use dwrs_core::Item;
//! use dwrs_runtime::{run_swor, split_stream, EngineKind, RuntimeConfig};
//!
//! let k = 4;
//! let streams = split_stream(
//!     k,
//!     (0..20_000u64).map(|i| ((i % k as u64) as usize, Item::new(i, 1.0 + (i % 9) as f64))),
//! );
//! let out = run_swor(
//!     EngineKind::Threads,
//!     SworConfig::new(16, k),
//!     42,
//!     streams,
//!     &RuntimeConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(out.coordinator.sample().len(), 16);
//! // Message-optimal even across threads: far fewer messages than items.
//! assert!(out.metrics.total() < 10_000);
//! ```

#![warn(missing_docs)]

pub mod adapters;
pub mod config;
pub mod engine;
pub mod tcp;
pub mod transport;
pub mod tree;

pub use adapters::{run_swor, EngineKind};
pub use config::RuntimeConfig;
pub use engine::{run_threads, split_stream, RunOutput, RuntimeError};
pub use transport::{
    channel_wiring, BatchSender, CoordEndpoint, DownSender, SiteEndpoint, TransportError, UpFrame,
    Wiring,
};
pub use tree::{
    run_tree_swor, split_tree_stream, GroupStats, SampleSource, TreeOutput, TreeTopology,
};
