//! # dwrs-runtime
//!
//! A concurrent execution substrate for the PODS'19 site/coordinator
//! protocols: `k` sites and one coordinator run as real OS threads
//! connected by a pluggable framed [`transport`] — in-process bounded
//! channels ([`run_threads`]) or loopback TCP with the `swor::wire`
//! encoding on real sockets ([`tcp::run_tcp`], plus standalone
//! [`tcp::serve_coordinator`] / [`tcp::run_site`] halves for multi-process
//! deployments).
//!
//! Any [`dwrs_sim::SiteNode`] / [`dwrs_sim::CoordinatorNode`] pair runs
//! unmodified; the lockstep simulator remains the specification substrate,
//! this crate is the throughput substrate. The engine provides:
//!
//! * **per-site upstream batching** with a configurable flush threshold
//!   ([`RuntimeConfig::batch_max`]);
//! * **bounded-queue backpressure** on the up path
//!   ([`RuntimeConfig::queue_capacity`]) with an unbounded, eagerly
//!   drained down path — the combination that makes blocking sends
//!   deadlock-free (see [`engine`]);
//! * **deterministic graceful shutdown**: flush → `Eof` → coordinator
//!   drain → down-link close → final sample extraction, with per-thread
//!   [`dwrs_sim::Metrics`] merged into totals that follow the paper's
//!   accounting exactly as the lockstep runner's do;
//! * **panic-safe joins**: a crashing site or coordinator thread surfaces
//!   as a [`RuntimeError`] instead of a hang.
//!
//! The threaded engines are *not* round-synchronous: sites apply
//! coordinator broadcasts whenever they arrive, i.e. they run in the
//! delayed-delivery regime the protocols already tolerate (stale
//! thresholds cannot break correctness, only inflate message counts —
//! `tests/runtime_equivalence.rs` verifies the output distribution matches
//! the lockstep simulator's).
//!
//! Beyond the flat `k`-sites-one-coordinator deployment, the [`tree`]
//! module runs the **hierarchical fan-in topology**: groups of sites
//! against per-group aggregators, which periodically ship their mergeable
//! keyed samples to a root merger over the same transports (see
//! [`run_tree_swor`]).
//!
//! For continuous monitoring — the paper's actual setting — the
//! [`daemon`] module runs the coordinator as a **long-lived process**
//! hosting many concurrent named streams, with mid-run attach / detach /
//! reconnect and live queries answered while streams run (see
//! [`daemon::Daemon`] and [`daemon::AttachClient`]).
//!
//! All engine×topology combinations are unified behind the [`driver`]
//! layer: describe the run as a [`Scenario`] (protocol, engine, topology,
//! workload, seed, partition) and [`run_scenario`] streams the workload
//! through a bounded sharded dispatcher — O(batch × queue) resident
//! memory, never O(n) — returning a uniform [`RunReport`].
//!
//! Every layer reports into the `dwrs-telemetry` registry (frame-granular
//! counters, dispatcher depth gauges, sketch-backed latency histograms)
//! and the daemon additionally keeps per-stream trace rings, all
//! scrapeable live over the control socket (`CtrlMsg::Metrics`) while
//! streams run — see the Telemetry sections of `docs/DAEMON.md` and
//! `docs/ARCHITECTURE.md`.
//!
//! # Example
//!
//! ```
//! use dwrs_runtime::{run_scenario, EngineKind, Scenario, Workload};
//!
//! // 4 sites on the threaded engine, sample size 16, streaming 20k
//! // uniform-weight items: nothing is materialized.
//! let scenario = Scenario::new(EngineKind::Threads, 4, 16)
//!     .with_n(20_000)
//!     .with_workload(Workload::Uniform { lo: 1.0, hi: 10.0 });
//! let report = run_scenario(&scenario).unwrap();
//! assert_eq!(report.sample.len(), 16);
//! assert!(report.invariants_ok(), "{:?}", report.violations);
//! // Message-optimal even across threads: far fewer messages than items.
//! assert!(report.metrics.total() < 10_000);
//! // And the input side stayed bounded: the dispatch window is a small
//! // constant, independent of stream length.
//! let d = report.dispatcher.unwrap();
//! assert!(d.peak_in_flight_frames <= d.in_flight_bound());
//! ```

#![deny(missing_docs)]

pub mod adapters;
pub mod config;
pub mod daemon;
pub mod driver;
pub mod engine;
pub mod epoll;
pub(crate) mod obs;
pub mod query;
pub mod reactor;
pub mod tcp;
pub mod transport;
pub mod tree;

pub use adapters::{run_swor, EngineKind};
pub use config::RuntimeConfig;
pub use daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig, RetryPolicy};
pub use driver::{
    run_scenario, DispatcherStats, RunReport, Scenario, ShardSource, Topology, Workload,
};
#[allow(deprecated)]
pub use engine::split_stream;
pub use engine::{run_threads, RunOutput, RuntimeError};
pub use epoll::{run_epoll, run_tree_epoll, Feed, ItemFeed, VecFeed};
pub use query::{Query, QueryAnswer};
pub use reactor::raise_nofile_limit;
pub use transport::{
    channel_wiring, BatchSender, CoordEndpoint, DownSender, SiteEndpoint, TransportError, UpFrame,
    Wiring,
};
#[allow(deprecated)]
pub use tree::split_tree_stream;
pub use tree::{
    run_tree_nodes, run_tree_swor, GroupStats, LockstepTree, SampleSource, TreeOutput, TreeTopology,
};
