//! Runtime-side instrumentation: how the engine loops, the sharded
//! dispatcher and the tree tiers record into the process-wide
//! [`dwrs_telemetry`] registry.
//!
//! The discipline mirrors the per-thread [`Metrics`] accounting the
//! engines already do: **zero work per item**. Hot loops touch telemetry
//! only at flush boundaries (a handful of relaxed atomic adds plus two
//! local-sketch pushes), keep their histogram observations in thread-local
//! [`QuantileSketch`]es, and fold them into the shared registry every
//! [`FOLD_EVERY`] flushes and at loop exit — exactly like per-thread
//! `Metrics` merging into a run total. Message/byte totals are folded once
//! per thread, at loop exit, from the `Metrics` value the thread returns
//! anyway.

use std::sync::Arc;
use std::time::Instant;

use dwrs_sim::Metrics;
use dwrs_stats::QuantileSketch;
use dwrs_telemetry::{
    global, Counter, Gauge, Histogram, METRIC_BROADCAST_EVENTS_TOTAL, METRIC_DISPATCH_FRAMES_TOTAL,
    METRIC_DISPATCH_QUEUE_DEPTH, METRIC_DOWN_MESSAGES_TOTAL, METRIC_FLUSH_INTERVAL_NS,
    METRIC_FRAME_ITEMS, METRIC_ITEMS_TOTAL, METRIC_REACTOR_EVENTS_TOTAL,
    METRIC_REACTOR_REGISTERED_FDS, METRIC_REACTOR_SERVICE_NS, METRIC_SITE_FLUSHES_TOTAL,
    METRIC_TREE_SYNCS_TOTAL, METRIC_UP_MESSAGES_TOTAL, METRIC_WIRE_BYTES_TOTAL,
};

/// How many flushes a site loop batches locally before folding its
/// histogram sketches into the shared registry. Counters (items, flushes)
/// update on every flush so mid-run scrapes stay monotone; only the
/// distribution digests are folded at this coarser cadence.
const FOLD_EVERY: u32 = 64;

/// Per-site-thread flush instrumentation. One meter lives on each site
/// loop's stack: counter handles are resolved once (no registry lookups on
/// the hot path), distributions accumulate in thread-local sketches.
pub(crate) struct FlushMeter {
    items: Arc<Counter>,
    flushes: Arc<Counter>,
    frame_hist: Arc<Histogram>,
    interval_hist: Arc<Histogram>,
    frame_local: QuantileSketch,
    interval_local: QuantileSketch,
    last_flush: Instant,
    unfolded: u32,
}

impl FlushMeter {
    /// A meter recording into the process-wide registry.
    pub(crate) fn new() -> Self {
        let r = &global().registry;
        Self {
            items: r.counter(METRIC_ITEMS_TOTAL),
            flushes: r.counter(METRIC_SITE_FLUSHES_TOTAL),
            frame_hist: r.histogram(METRIC_FRAME_ITEMS),
            interval_hist: r.histogram(METRIC_FLUSH_INTERVAL_NS),
            frame_local: Histogram::local_sketch(),
            interval_local: Histogram::local_sketch(),
            last_flush: Instant::now(),
            unfolded: 0,
        }
    }

    /// Items that advanced the stream without a message flush (the
    /// residual watermark shipped just before `Eof`).
    pub(crate) fn on_items(&mut self, items: u64) {
        if items > 0 {
            self.items.add(items);
        }
    }

    /// One upstream flush of `msgs` messages covering `items` observed
    /// items: two relaxed counter adds, two local-sketch pushes, one
    /// monotonic-clock read.
    pub(crate) fn on_flush(&mut self, msgs: usize, items: u64) {
        self.items.add(items);
        self.flushes.inc();
        let now = Instant::now();
        self.frame_local.observe(msgs as f64);
        self.interval_local
            .observe(now.duration_since(self.last_flush).as_nanos() as f64);
        self.last_flush = now;
        self.unfolded += 1;
        if self.unfolded >= FOLD_EVERY {
            self.fold();
        }
    }

    fn fold(&mut self) {
        self.frame_hist.merge_local(&mut self.frame_local);
        self.interval_hist.merge_local(&mut self.interval_local);
        self.unfolded = 0;
    }

    /// Folds any remaining local observations; call at loop exit.
    pub(crate) fn finish(&mut self) {
        self.fold();
    }
}

/// Folds one thread's final [`Metrics`] into the global message/byte
/// counters. Per-thread metrics are disjoint (sites count ups, routers
/// count downs — the same split the engine's merge relies on), so calling
/// this once per exiting thread sums to the run totals without double
/// counting.
pub(crate) fn record_thread_metrics(m: &Metrics) {
    let r = &global().registry;
    if m.up_total > 0 {
        r.counter(METRIC_UP_MESSAGES_TOTAL).add(m.up_total);
    }
    if m.down_total > 0 {
        r.counter(METRIC_DOWN_MESSAGES_TOTAL).add(m.down_total);
    }
    let bytes = m.up_bytes + m.down_bytes;
    if bytes > 0 {
        r.counter(METRIC_WIRE_BYTES_TOTAL).add(bytes);
    }
    if m.broadcast_events > 0 {
        r.counter(METRIC_BROADCAST_EVENTS_TOTAL)
            .add(m.broadcast_events);
    }
}

/// Handle for one aggregator→root sync (tree tier cadence).
pub(crate) fn tree_syncs_counter() -> Arc<Counter> {
    global().registry.counter(METRIC_TREE_SYNCS_TOTAL)
}

/// Dispatcher-side handles: frames shipped and the instantaneous
/// in-flight frame depth across all shard queues.
pub(crate) fn dispatch_handles() -> (Arc<Counter>, Arc<Gauge>) {
    let r = &global().registry;
    (
        r.counter(METRIC_DISPATCH_FRAMES_TOTAL),
        r.gauge(METRIC_DISPATCH_QUEUE_DEPTH),
    )
}

/// Per-reactor-loop instrumentation, same discipline as [`FlushMeter`]:
/// counter/gauge updates are relaxed atomics at event granularity, the
/// service-latency distribution stays in a thread-local sketch folded
/// every [`FOLD_EVERY`] wakes and at loop exit. One meter lives on each
/// event-loop thread's stack (site workers, coordinator reactor, daemon
/// data plane); the fd gauge is shared, so concurrent loops compose.
pub(crate) struct ReactorMeter {
    fds: Arc<Gauge>,
    events: Arc<Counter>,
    service_hist: Arc<Histogram>,
    service_local: QuantileSketch,
    registered: i64,
    unfolded: u32,
}

impl ReactorMeter {
    /// A meter recording into the process-wide registry.
    pub(crate) fn new() -> Self {
        let r = &global().registry;
        Self {
            fds: r.gauge(METRIC_REACTOR_REGISTERED_FDS),
            events: r.counter(METRIC_REACTOR_EVENTS_TOTAL),
            service_hist: r.histogram(METRIC_REACTOR_SERVICE_NS),
            service_local: Histogram::local_sketch(),
            registered: 0,
            unfolded: 0,
        }
    }

    /// A connection was registered with (+1) or removed from (-1) this
    /// loop's poller.
    pub(crate) fn on_registered(&mut self, delta: i64) {
        self.registered += delta;
        self.fds.add(delta);
    }

    /// One service pass: `events` readiness notifications handled in
    /// `ns` nanoseconds before the loop blocks again.
    pub(crate) fn on_service(&mut self, events: usize, ns: u64) {
        if events > 0 {
            self.events.add(events as u64);
        }
        self.service_local.observe(ns as f64);
        self.unfolded += 1;
        if self.unfolded >= FOLD_EVERY {
            self.service_hist.merge_local(&mut self.service_local);
            self.unfolded = 0;
        }
    }

    /// Folds remaining observations and releases this loop's share of the
    /// fd gauge; call at loop exit.
    pub(crate) fn finish(&mut self) {
        self.service_hist.merge_local(&mut self.service_local);
        self.unfolded = 0;
        if self.registered != 0 {
            self.fds.add(-self.registered);
            self.registered = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_meter_accumulates_into_the_global_registry() {
        let r = &global().registry;
        let items0 = r.counter(METRIC_ITEMS_TOTAL).get();
        let flushes0 = r.counter(METRIC_SITE_FLUSHES_TOTAL).get();
        let frames0 = r.histogram(METRIC_FRAME_ITEMS).count();
        let mut meter = FlushMeter::new();
        for _ in 0..3 {
            meter.on_flush(16, 100);
        }
        meter.on_items(7);
        meter.finish();
        assert_eq!(r.counter(METRIC_ITEMS_TOTAL).get() - items0, 307);
        assert_eq!(r.counter(METRIC_SITE_FLUSHES_TOTAL).get() - flushes0, 3);
        assert_eq!(r.histogram(METRIC_FRAME_ITEMS).count() - frames0, 3);
    }

    #[test]
    fn thread_metrics_fold_totals() {
        let r = &global().registry;
        let up0 = r.counter(METRIC_UP_MESSAGES_TOTAL).get();
        let bytes0 = r.counter(METRIC_WIRE_BYTES_TOTAL).get();
        let mut m = Metrics::new();
        m.count_up("regular", 2, 50);
        record_thread_metrics(&m);
        assert_eq!(r.counter(METRIC_UP_MESSAGES_TOTAL).get() - up0, 2);
        assert_eq!(r.counter(METRIC_WIRE_BYTES_TOTAL).get() - bytes0, 50);
    }
}
