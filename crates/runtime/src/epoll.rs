//! The event-driven `epoll` engine: thousands of site connections
//! multiplexed onto a small fixed pool of event-loop threads.
//!
//! The TCP engine ([`crate::tcp`]) spends two OS threads per site (the
//! site loop plus a down-reader) and one up-reader per connection on the
//! coordinator side — at the paper's deployment regime (k in the
//! thousands, one site per edge/user shard) that is tens of thousands of
//! threads. This engine keeps the *protocol* byte-for-byte identical (same
//! `HELLO`/`BATCH`/`EOF`/`FAULT`/`DOWN` framing, same [`Metrics`] deltas)
//! but replaces thread-per-connection I/O with readiness-driven state
//! machines over nonblocking sockets (see [`crate::reactor`]):
//!
//! * **Site side** — each site is a `SiteTask`: the same
//!   observe/flush/finish/drain protocol steps as `engine::site_loop`, but
//!   resumable, driven by a worker pool of `EPOLL_WORKERS` event loops.
//!   Input arrives through the nonblocking [`ItemFeed`] interface instead
//!   of a blocking iterator, so one stalled feed never wedges the other
//!   tasks sharing its worker.
//! * **Coordinator side** — one reactor thread owns every site connection:
//!   it reassembles up-frames and pushes them into the same bounded
//!   `mpsc` queue `coordinator_loop` already consumes, and flushes
//!   down-messages from per-connection `SendBuf`s on write readiness.
//!   The unmodified `coordinator_loop` services the protocol.
//!
//! # Backpressure and deadlock freedom, tier by tier
//!
//! The engine invariant (bounded blocking up path, unbounded eagerly
//! drained down path — see [`crate::engine`]) maps onto the reactor so:
//!
//! * The coordinator reactor *may* block pushing a decoded frame into the
//!   bounded up queue. The coordinator always returns to draining that
//!   queue, so the reactor always unblocks; while it is blocked it reads
//!   no sockets, kernel receive buffers fill, and site writes see
//!   `WouldBlock` — exactly the TCP engine's backpressure chain.
//! * A site task stops *pulling input* while its up `SendBuf` is over
//!   cap (the buffered analogue of a blocking `send`), so per-connection
//!   memory stays bounded without ever blocking an event-loop thread.
//! * Down sends never block and never fail: [`DownSender::send`] appends
//!   to the connection's `SendBuf` under a mutex and wakes the reactor
//!   (`Waker` coalesces wake storms to one byte). Sites drain eagerly,
//!   so the down buffers are transient; their cap is advisory.
//!
//! # Lifecycle of a site connection
//!
//! ```text
//! Streaming ──(feed Done, finish+EOF queued)──▶ Closing
//! Closing ───(send buffer drained, shutdown(Write))──▶ Draining
//! Draining ──(down link EOF from coordinator)──▶ Done
//! ```
//!
//! Any I/O error or protocol violation short-circuits to `Done` with the
//! socket fully shut down, so the peer fails fast instead of hanging.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dwrs_core::framed::{encode_seq, FrameCodec};
use dwrs_core::merge::merge_samples;
use dwrs_core::swor::SyncMsg;
use dwrs_core::{Item, Keyed};
use dwrs_sim::{CoordinatorNode, Metrics, NoDown, SiteNode};

use crate::config::RuntimeConfig;
use crate::engine::{coordinator_loop, flush, RunOutput, RuntimeError};
use crate::obs::{record_thread_metrics, FlushMeter, ReactorMeter};
use crate::reactor::{
    current_nofile_limit, is_fd_exhausted, raise_nofile_limit, wake_pair, PollEvent, Poller,
    RecvBuf, SendBuf, WakeRx, Waker, WAKE_TOKEN,
};
use crate::tcp::{
    accept_sites, connect_site, read_hello, TAG_BATCH, TAG_DOWN, TAG_EOF, TAG_FAULT, TAG_HELLO,
};
use crate::transport::{BatchSender, CoordEndpoint, DownSender, TransportError, UpFrame};
use crate::tree::{aggregator_loop, root_loop, GroupStats, SampleSource, TreeOutput, TreeTopology};

/// Event-loop threads in the site-side worker pool. Connection count is a
/// memory problem, not a thread-count problem: k=1000 sites run on this
/// many loops (plus one coordinator reactor), not 2k+1000 threads.
pub(crate) const EPOLL_WORKERS: usize = 4;

/// Items a site task pulls per scheduling quantum, and the chunk size
/// [`VecFeed`] hands out. Bounds how long one task can monopolize its
/// worker before co-scheduled connections get serviced.
const FEED_CHUNK: usize = 4096;

/// Soft cap on a site's buffered-but-unflushed up bytes: past this the
/// task stops pulling input until write readiness drains it (the buffered
/// analogue of the TCP engine's blocking `send`).
const UP_BUF_CAP: usize = 64 * 1024;

/// Advisory cap on a connection's buffered down bytes. Down sends must
/// never block or fail (deadlock-freedom invariant), so the coordinator
/// may run over; sites drain eagerly, keeping the excess transient.
const DOWN_BUF_CAP: usize = 64 * 1024;

/// Maps an I/O error to the typed runtime error: fd-table exhaustion
/// (`EMFILE`/`ENFILE`) becomes [`RuntimeError::FdExhausted`] with the
/// current limit in the message, everything else a transport error.
pub(crate) fn io_runtime_err(what: &str, e: &io::Error) -> RuntimeError {
    if is_fd_exhausted(e) {
        RuntimeError::FdExhausted {
            what: what.to_string(),
            limit: current_nofile_limit(),
        }
    } else {
        RuntimeError::Transport(format!("{what}: {e}"))
    }
}

// ---------------------------------------------------------------- feeds

/// One poll of an [`ItemFeed`].
#[derive(Debug)]
pub enum Feed {
    /// The next chunk of stream items, in arrival order.
    Frame(Vec<Item>),
    /// Nothing available right now; poll again later. The task yields its
    /// worker instead of blocking.
    Pending,
    /// The stream is exhausted; no further frames follow.
    Done,
}

/// Nonblocking stream source for one site task.
///
/// The multiplexed engine cannot use blocking iterators: a worker thread
/// blocked inside one task's `next()` would starve every other connection
/// scheduled on that loop — and with the driver's bounded feeder filling
/// the queues, a blocked worker and a full sibling queue form a cycle.
/// `poll` must return [`Feed::Pending`] instead of waiting.
pub trait ItemFeed: Send {
    /// Returns the next chunk, `Pending` if none is ready, or `Done` at
    /// end of stream.
    fn poll(&mut self) -> Feed;
}

impl<T: ItemFeed + ?Sized> ItemFeed for Box<T> {
    fn poll(&mut self) -> Feed {
        (**self).poll()
    }
}

/// An [`ItemFeed`] over a materialized vector, handed out in
/// `FEED_CHUNK`-item frames.
#[derive(Debug)]
pub struct VecFeed {
    items: std::vec::IntoIter<Item>,
}

impl VecFeed {
    /// Wraps a fully materialized per-site stream.
    pub fn new(items: Vec<Item>) -> VecFeed {
        VecFeed {
            items: items.into_iter(),
        }
    }
}

impl ItemFeed for VecFeed {
    fn poll(&mut self) -> Feed {
        let chunk: Vec<Item> = self.items.by_ref().take(FEED_CHUNK).collect();
        if chunk.is_empty() {
            Feed::Done
        } else {
            Feed::Frame(chunk)
        }
    }
}

// ------------------------------------------------------------ up sender

/// [`BatchSender`] over a [`SendBuf`]: encodes exactly the frames
/// [`crate::tcp`]'s socket sender produces, but into the connection's
/// buffer instead of a blocking socket write — so `engine::flush` (and its
/// metering) is reused verbatim by the resumable site task.
struct BufUp<'a> {
    buf: &'a mut SendBuf,
}

impl<U: FrameCodec + Send> BatchSender<U> for BufUp<'_> {
    fn send(&mut self, frame: UpFrame<U>) -> Result<(), TransportError> {
        match frame {
            UpFrame::Batch { mut msgs, items } => self.send_batch(&mut msgs, items),
            UpFrame::Eof => self
                .buf
                .frame_with(|b| b.push(TAG_EOF))
                .map_err(TransportError::Io),
            UpFrame::Fault(msg) => self
                .buf
                .frame_with(|b| {
                    b.push(TAG_FAULT);
                    b.extend_from_slice(msg.as_bytes());
                })
                .map_err(TransportError::Io),
        }
    }

    fn send_batch(&mut self, batch: &mut Vec<U>, items: u64) -> Result<(), TransportError> {
        self.buf
            .frame_with(|b| {
                b.push(TAG_BATCH);
                b.extend_from_slice(&items.to_le_bytes());
                encode_seq(batch, b);
            })
            .map_err(TransportError::Io)?;
        batch.clear();
        Ok(())
    }
}

// ------------------------------------------------------------ site task

/// Where a [`SiteTask`] is in its connection lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Pulling items from the feed, observing, flushing batches.
    Streaming,
    /// Stream exhausted; final flush + `EOF` are queued, draining the
    /// send buffer before the write half-close.
    Closing,
    /// Write side closed; consuming down-messages until the coordinator
    /// half-closes.
    Draining,
    /// Finished (successfully or not); `result` is populated.
    Done,
}

/// One site connection as a resumable state machine: the exact protocol
/// steps of `engine::site_loop`, re-expressed so a worker can advance the
/// task as far as readiness allows and move on.
struct SiteTask<S: SiteNode> {
    /// Global site index (flat: site id; tree: `group * k + member`).
    global: usize,
    site: S,
    feed: Box<dyn ItemFeed>,
    cur: std::vec::IntoIter<Item>,
    stream: TcpStream,
    recv: RecvBuf,
    send: SendBuf,
    batch: Vec<S::Up>,
    items_pending: u64,
    until_poll: u32,
    metrics: Metrics,
    meter: FlushMeter,
    phase: Phase,
    /// Readiness hints from the worker's poller (level-triggered, so a
    /// stale `true` costs one `WouldBlock` syscall, never a lost event).
    read_ready: bool,
    write_ready: bool,
    /// The down link still delivers (false once the coordinator
    /// half-closes or the connection dies).
    downs_open: bool,
    /// Poller registration bookkeeping (worker-maintained).
    registered: bool,
    reg_read: bool,
    reg_write: bool,
    result: Option<Result<Metrics, RuntimeError>>,
}

impl<S: SiteNode> SiteTask<S>
where
    S::Up: FrameCodec + Send,
    S::Down: FrameCodec,
{
    fn new(global: usize, site: S, feed: Box<dyn ItemFeed>, stream: TcpStream) -> SiteTask<S> {
        SiteTask {
            global,
            site,
            feed,
            cur: Vec::new().into_iter(),
            stream,
            recv: RecvBuf::new(),
            send: SendBuf::with_cap(UP_BUF_CAP),
            batch: Vec::new(),
            items_pending: 0,
            until_poll: 0,
            metrics: Metrics::new(),
            meter: FlushMeter::new(),
            phase: Phase::Streaming,
            read_ready: true,
            write_ready: true,
            downs_open: true,
            registered: false,
            reg_read: false,
            reg_write: false,
            result: None,
        }
    }

    /// Advances the task as far as current readiness allows. Returns
    /// whether any progress was made (the worker idles only when a full
    /// pass over its tasks makes none).
    fn step(&mut self, batch_max: usize, down_poll: u32) -> Result<bool, RuntimeError> {
        let mut progress = self.flush_send()?;
        match self.phase {
            Phase::Streaming => {
                if self.read_ready {
                    progress |= self.drain_downs(false)?;
                }
                let mut budget = FEED_CHUNK;
                while budget > 0 && self.phase == Phase::Streaming {
                    if self.send.over_cap() {
                        // Backpressure: stop pulling input until write
                        // readiness drains the buffer below cap.
                        break;
                    }
                    let item = match self.cur.next() {
                        Some(item) => item,
                        None => match self.feed.poll() {
                            Feed::Frame(chunk) => {
                                self.cur = chunk.into_iter();
                                progress = true;
                                continue;
                            }
                            Feed::Pending => break,
                            Feed::Done => {
                                self.finish_stream(batch_max)?;
                                progress = true;
                                break;
                            }
                        },
                    };
                    if self.until_poll == 0 {
                        self.until_poll = down_poll;
                        self.drain_downs(true)?;
                    }
                    self.until_poll -= 1;
                    self.site.observe(item, &mut self.batch);
                    self.items_pending += 1;
                    progress = true;
                    budget -= 1;
                    if self.batch.len() >= batch_max {
                        self.meter.on_flush(self.batch.len(), self.items_pending);
                        self.flush_batch(batch_max)?;
                    }
                }
                progress |= self.flush_send()?;
            }
            Phase::Closing => {
                if self.read_ready {
                    progress |= self.drain_downs(false)?;
                }
                if self.send.is_empty() {
                    let _ = self.stream.shutdown(Shutdown::Write);
                    self.phase = Phase::Draining;
                    progress = true;
                }
            }
            Phase::Draining => {
                progress |= self.drain_downs(true)?;
                if !self.downs_open {
                    self.complete();
                    progress = true;
                }
            }
            Phase::Done => {}
        }
        Ok(progress)
    }

    /// The end-of-stream sequence of `site_loop`: `finish`, chunked final
    /// flushes, the residual item-count watermark, `EOF` — all queued into
    /// the send buffer; [`Phase::Closing`] drains it to the socket.
    fn finish_stream(&mut self, batch_max: usize) -> Result<(), RuntimeError> {
        self.site.finish(&mut self.batch);
        while self.batch.len() > batch_max {
            let rest = self.batch.split_off(batch_max);
            self.meter.on_flush(self.batch.len(), self.items_pending);
            self.flush_batch(batch_max)?;
            self.batch = rest;
        }
        if !self.batch.is_empty() {
            self.meter.on_flush(self.batch.len(), self.items_pending);
        }
        self.flush_batch(batch_max)?;
        if self.items_pending > 0 {
            self.meter.on_items(self.items_pending);
            let items = std::mem::take(&mut self.items_pending);
            let mut up = BufUp {
                buf: &mut self.send,
            };
            BatchSender::<S::Up>::send(
                &mut up,
                UpFrame::Batch {
                    msgs: Vec::new(),
                    items,
                },
            )
            .map_err(RuntimeError::from)?;
        }
        let mut up = BufUp {
            buf: &mut self.send,
        };
        BatchSender::<S::Up>::send(&mut up, UpFrame::Eof).map_err(RuntimeError::from)?;
        self.phase = Phase::Closing;
        Ok(())
    }

    /// One metered batch flush into the send buffer (shared accounting
    /// path with the threaded engines: `engine::flush`).
    fn flush_batch(&mut self, batch_max: usize) -> Result<(), RuntimeError> {
        let mut up = BufUp {
            buf: &mut self.send,
        };
        flush(
            &mut up,
            &mut self.batch,
            &mut self.items_pending,
            batch_max,
            &mut self.metrics,
        )?;
        Ok(())
    }

    /// Writes as much buffered up-traffic as the socket accepts.
    fn flush_send(&mut self) -> Result<bool, RuntimeError> {
        if self.send.is_empty() || !self.write_ready {
            return Ok(false);
        }
        match self.send.flush_to(&mut (&self.stream)) {
            Ok(n) => {
                if !self.send.is_empty() {
                    self.write_ready = false;
                }
                Ok(n > 0)
            }
            Err(e) => Err(io_runtime_err(&format!("site {} up link", self.global), &e)),
        }
    }

    /// Applies every complete down-frame currently available. With
    /// `force`, performs a read even without a readiness hint (the
    /// item-cadence poll and the drain phase); otherwise reads only while
    /// the socket was reported readable. Connection close or error ends
    /// the drain (`downs_open = false`) like the channel transport's
    /// disconnect; a malformed frame is a transport error.
    fn drain_downs(&mut self, force: bool) -> Result<bool, RuntimeError> {
        if !self.downs_open || !(force || self.read_ready) {
            return Ok(false);
        }
        let mut progress = false;
        loop {
            loop {
                let msg: S::Down = match self.recv.next_frame() {
                    Ok(None) => break,
                    Ok(Some(payload)) => match payload.split_first() {
                        Some((&TAG_DOWN, body)) => match <S::Down as FrameCodec>::decode(body) {
                            Ok((m, used)) if used == body.len() => m,
                            _ => {
                                return Err(RuntimeError::Transport(format!(
                                    "site {}: malformed down frame",
                                    self.global
                                )))
                            }
                        },
                        _ => {
                            return Err(RuntimeError::Transport(format!(
                                "site {}: unexpected frame on down link",
                                self.global
                            )))
                        }
                    },
                    Err(e) => {
                        return Err(RuntimeError::Transport(format!(
                            "site {} down link: {e}",
                            self.global
                        )))
                    }
                };
                self.site.receive(&msg);
                progress = true;
            }
            match self.recv.fill_from(&mut (&self.stream)) {
                Ok(0) => {
                    self.downs_open = false;
                    return Ok(true);
                }
                Ok(_) => progress = true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.read_ready = false;
                    return Ok(progress);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Reset/abort: end the drain like a closed channel —
                    // the run's outcome is decided by the up path.
                    self.downs_open = false;
                    return Ok(true);
                }
            }
        }
    }

    /// Clean completion: fold telemetry, record this task's metrics.
    fn complete(&mut self) {
        self.meter.finish();
        record_thread_metrics(&self.metrics);
        let metrics = std::mem::replace(&mut self.metrics, Metrics::new());
        self.result = Some(Ok(metrics));
        self.phase = Phase::Done;
    }

    /// Failure path: tear the connection down so the peer fails fast.
    fn fail(&mut self, e: RuntimeError) {
        let _ = self.stream.shutdown(Shutdown::Both);
        self.meter.finish();
        self.result = Some(Err(e));
        self.phase = Phase::Done;
    }

    /// The interest set the worker should keep registered, or `None` when
    /// the task wants no events. `None` means *deregister*: `EPOLLHUP` is
    /// reported regardless of the mask, so leaving a dead-idle connection
    /// registered would storm the level-triggered loop.
    fn desired_interest(&self) -> Option<(bool, bool)> {
        if self.phase == Phase::Done {
            return None;
        }
        let r = self.downs_open;
        let w = !self.send.is_empty();
        if r || w {
            Some((r, w))
        } else {
            None
        }
    }
}

// ----------------------------------------------------- site worker pool

/// Per-task outcome of a worker shard: `(global_index, result)`.
type SiteResults<S> = Vec<(usize, Result<(S, Metrics), RuntimeError>)>;

/// Runs `tasks` to completion on a pool of event-loop threads, returning
/// `(global_index, result)` per task. Tasks are distributed round-robin,
/// preserving a deterministic global→worker mapping.
fn run_site_pool<S>(tasks: Vec<SiteTask<S>>, batch_max: usize, down_poll: u32) -> SiteResults<S>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send,
    S::Down: FrameCodec,
{
    let workers = EPOLL_WORKERS.min(tasks.len()).max(1);
    let mut shards: Vec<Vec<SiteTask<S>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        shards[i % workers].push(t);
    }
    thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| scope.spawn(move || site_worker(shard, batch_max, down_poll)))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            // The worker itself cannot panic (site panics are caught per
            // step); a panic here loses its shard — the engine reports
            // the missing sites as panicked.
            if let Ok(results) = h.join() {
                out.extend(results);
            }
        }
        out
    })
}

/// One event-loop thread: steps every task while progress is made, then
/// blocks on the poller (with a short timeout — feed arrivals have no fd)
/// and refreshes per-task readiness hints.
fn site_worker<S>(mut tasks: Vec<SiteTask<S>>, batch_max: usize, down_poll: u32) -> SiteResults<S>
where
    S: SiteNode,
    S::Up: FrameCodec + Send,
    S::Down: FrameCodec,
{
    let poller = Poller::new().ok();
    let mut meter = ReactorMeter::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut events_since_wait = 0usize;
    let mut busy = Duration::ZERO;
    loop {
        let t0 = Instant::now();
        let mut progress = false;
        let mut all_done = true;
        for (i, t) in tasks.iter_mut().enumerate() {
            if t.phase == Phase::Done && !t.registered {
                continue;
            }
            if t.phase != Phase::Done {
                all_done = false;
                match catch_unwind(AssertUnwindSafe(|| t.step(batch_max, down_poll))) {
                    Ok(Ok(p)) => progress |= p,
                    Ok(Err(e)) => {
                        t.fail(e);
                        progress = true;
                    }
                    Err(_) => {
                        t.fail(RuntimeError::SitePanicked(t.global));
                        progress = true;
                    }
                }
            }
            if let Some(p) = poller.as_ref() {
                update_interest(t, p, i as u64, &mut meter);
            }
        }
        if all_done {
            break;
        }
        busy += t0.elapsed();
        if progress {
            continue;
        }
        meter.on_service(events_since_wait, busy.as_nanos() as u64);
        events_since_wait = 0;
        busy = Duration::ZERO;
        match poller.as_ref() {
            Some(p) => {
                events.clear();
                // Short timeout, not indefinite: item feeds are queue-fed
                // (no fd), so a stalled feed must be re-polled promptly.
                if p.wait(&mut events, 1).is_err() {
                    // No readiness facts this round: optimistically re-arm
                    // so the next pass retries I/O instead of wedging on
                    // stale hints.
                    rearm_all(&mut tasks);
                    thread::sleep(Duration::from_micros(500));
                }
                for ev in &events {
                    if let Some(t) = tasks.get_mut(ev.token as usize) {
                        if ev.readable {
                            t.read_ready = true;
                        }
                        if ev.writable {
                            t.write_ready = true;
                        }
                        if ev.hangup {
                            // Let the task's next read/write observe the
                            // failure directly.
                            t.read_ready = true;
                            t.write_ready = true;
                        }
                    }
                }
                events_since_wait += events.len();
            }
            // No epoll instance (creation failed): degrade to a timed
            // spin. The hints are normally re-armed only by poll events,
            // so without a poller they must be forced back on each round —
            // otherwise the first WouldBlock would clear them forever and
            // the task would wedge with a full send buffer.
            None => {
                rearm_all(&mut tasks);
                thread::sleep(Duration::from_micros(500));
            }
        }
    }
    meter.finish();
    tasks
        .into_iter()
        .map(|t| {
            let res = match t.result {
                Some(Ok(m)) => Ok((t.site, m)),
                Some(Err(e)) => Err(e),
                None => Err(RuntimeError::SitePanicked(t.global)),
            };
            (t.global, res)
        })
        .collect()
}

/// Forces every live task's readiness hints back on. Used when no poll
/// facts are available this round (no poller at all, or a failed wait):
/// the hints are otherwise re-armed only by poll events, so without this
/// the timed spin would never retry I/O after a `WouldBlock`.
fn rearm_all<S: SiteNode>(tasks: &mut [SiteTask<S>]) {
    for t in tasks.iter_mut() {
        if t.phase != Phase::Done {
            t.read_ready = true;
            t.write_ready = true;
        }
    }
}

/// Reconciles a task's poller registration with its desired interest set.
fn update_interest<S>(t: &mut SiteTask<S>, poller: &Poller, token: u64, meter: &mut ReactorMeter)
where
    S: SiteNode,
    S::Up: FrameCodec + Send,
    S::Down: FrameCodec,
{
    use std::os::fd::AsRawFd;
    match t.desired_interest() {
        None => {
            if t.registered && poller.deregister(t.stream.as_raw_fd()).is_ok() {
                t.registered = false;
                meter.on_registered(-1);
            }
        }
        Some((r, w)) => {
            if t.registered && (r, w) == (t.reg_read, t.reg_write) {
                return;
            }
            let ok = if t.registered {
                poller.modify(t.stream.as_raw_fd(), token, r, w).is_ok()
            } else {
                let ok = poller.register(t.stream.as_raw_fd(), token, r, w).is_ok();
                if ok {
                    meter.on_registered(1);
                }
                ok
            };
            if ok {
                t.registered = true;
                t.reg_read = r;
                t.reg_write = w;
            }
        }
    }
}

// ------------------------------------------------- coordinator reactor

/// Shared down-path state for one connection: the coordinator thread
/// appends frames, the reactor flushes them on write readiness.
struct DownState {
    send: SendBuf,
    closing: bool,
}

/// The coordinator-side handle pair: buffer plus reactor waker, with
/// lock-free mirrors of the buffer state so the reactor's per-iteration
/// pass over thousands of connections skips the mutex for idle ones.
struct ConnTx {
    state: Mutex<DownState>,
    waker: Arc<Waker>,
    /// Bytes pending in `state.send`, published under the lock by every
    /// mutator ([`ConnTx::publish`]).
    pending_hint: AtomicUsize,
    /// `state.closing`, published the same way — the reactor must visit a
    /// closing connection even with an empty buffer (to half-close it).
    closing_hint: AtomicBool,
}

impl ConnTx {
    fn new(waker: Arc<Waker>) -> Arc<ConnTx> {
        Arc::new(ConnTx {
            state: Mutex::new(DownState {
                send: SendBuf::with_cap(DOWN_BUF_CAP),
                closing: false,
            }),
            waker,
            pending_hint: AtomicUsize::new(0),
            closing_hint: AtomicBool::new(false),
        })
    }

    /// Mirrors the lock-held state into the atomic hints. Must be called
    /// with the `state` guard still held by every code path that mutates
    /// `DownState`, so the hints never lag a released lock.
    fn publish(&self, st: &DownState) {
        self.pending_hint
            .store(st.send.pending(), Ordering::Release);
        self.closing_hint.store(st.closing, Ordering::Release);
    }

    /// True when the reactor's down pass has work here: buffered bytes to
    /// flush, or a requested close to complete. Lock-free.
    fn down_work(&self) -> bool {
        self.pending_hint.load(Ordering::Acquire) > 0 || self.closing_hint.load(Ordering::Acquire)
    }
}

/// [`DownSender`] feeding the reactor: never blocks, never fails while
/// the link is up (deadlock-freedom invariant — the coordinator must
/// always return to draining its up queue).
struct EpollDownSender<D> {
    tx: Arc<ConnTx>,
    _marker: std::marker::PhantomData<fn(D)>,
}

impl<D: FrameCodec + Send> DownSender<D> for EpollDownSender<D> {
    fn send(&mut self, msg: &D) -> Result<(), TransportError> {
        let mut st = self.tx.state.lock().expect("down state poisoned");
        if st.closing {
            return Err(TransportError::Closed);
        }
        st.send
            .frame_with(|b| {
                b.push(TAG_DOWN);
                msg.encode(b);
            })
            .map_err(TransportError::Io)?;
        self.tx.publish(&st);
        drop(st);
        self.tx.waker.wake();
        Ok(())
    }

    fn close(&mut self) {
        let mut st = self.tx.state.lock().expect("down state poisoned");
        st.closing = true;
        self.tx.publish(&st);
        drop(st);
        self.tx.waker.wake();
    }
}

/// Dropping the sender closes the link, mirroring the channel transport's
/// disconnect-on-drop. Without this, a coordinator that dies without
/// calling `close()` (a panic unwinding `coordinator_loop`) would leave
/// every cleanly-finished connection waiting for a down-side half-close
/// that never comes — and the reactor parked in `epoll_wait` forever.
impl<D> Drop for EpollDownSender<D> {
    fn drop(&mut self) {
        // Never panic in drop (we may already be unwinding): a poisoned
        // lock still closes the link.
        let mut st = match self.tx.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.closing = true;
        self.tx.publish(&st);
        drop(st);
        self.tx.waker.wake();
    }
}

/// One site connection from the coordinator reactor's point of view.
struct CoordConn {
    stream: TcpStream,
    /// Site id within the queue's deployment (flat: global id; tree: the
    /// member index within the group).
    site: usize,
    /// Which up queue this connection reports into (flat: 0; tree: the
    /// group index).
    queue: usize,
    recv: RecvBuf,
    tx: Arc<ConnTx>,
    /// No more up-frames will be delivered (Eof/Fault seen, peer gone, or
    /// queue receiver dropped).
    up_done: bool,
    /// Our write half is shut (clean close handshake or teardown).
    write_shut: bool,
    registered: bool,
    reg_read: bool,
    reg_write: bool,
    dead: bool,
}

/// Decodes one up-frame payload — byte-for-byte the `tcp::up_reader`
/// rules, so faults carry identical diagnostics across engines.
fn decode_up<U: FrameCodec>(payload: &[u8]) -> UpFrame<U> {
    match payload.split_first() {
        Some((&TAG_BATCH, body)) if body.len() >= 8 => {
            let items = u64::from_le_bytes(body[..8].try_into().expect("8 bytes checked"));
            match dwrs_core::framed::decode_seq::<U>(&body[8..]) {
                Ok(msgs) => UpFrame::Batch { msgs, items },
                Err(e) => UpFrame::Fault(format!("bad batch payload: {e}")),
            }
        }
        Some((&TAG_BATCH, _)) => {
            UpFrame::Fault("batch frame shorter than its item-count header".into())
        }
        Some((&TAG_EOF, _)) => UpFrame::Eof,
        Some((&TAG_FAULT, body)) => UpFrame::Fault(String::from_utf8_lossy(body).into_owned()),
        Some((&tag, _)) => UpFrame::Fault(format!("unexpected frame tag {tag:#x}")),
        None => UpFrame::Fault("empty frame".into()),
    }
}

type UpQueue<U> = mpsc::SyncSender<(usize, UpFrame<U>)>;

/// Delivers one decoded frame into the connection's up queue, applying
/// the `tcp::up_reader` termination rules: any non-batch frame ends the
/// up path; a fault (or an orphaned queue) tears the whole connection
/// down so a still-streaming peer errors out promptly.
fn deliver<U>(c: &mut CoordConn, ups: &[UpQueue<U>], frame: UpFrame<U>) {
    let terminal = !matches!(frame, UpFrame::Batch { .. });
    let broken = matches!(frame, UpFrame::Fault(_));
    // Blocking send is the backpressure: while the bounded queue is full
    // the reactor reads no sockets, kernel buffers fill, sites stall.
    let orphaned = ups[c.queue].send((c.site, frame)).is_err();
    if terminal || orphaned {
        c.up_done = true;
    }
    if broken || orphaned {
        let mut st = c.tx.state.lock().expect("down state poisoned");
        st.send.clear();
        st.closing = true;
        c.tx.publish(&st);
        drop(st);
        let _ = c.stream.shutdown(Shutdown::Both);
        c.write_shut = true;
    }
}

/// Reads and delivers every complete up-frame currently available on `c`.
fn service_read<U: FrameCodec>(c: &mut CoordConn, ups: &[UpQueue<U>]) {
    loop {
        loop {
            let frame: UpFrame<U> = match c.recv.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => decode_up::<U>(payload),
                Err(e) => UpFrame::Fault(format!("read error: {e}")),
            };
            deliver(c, ups, frame);
            if c.up_done {
                return;
            }
        }
        match c.recv.fill_from(&mut (&c.stream)) {
            Ok(0) => {
                // Same split as `FramedReader`: EOF at a frame boundary is
                // a premature-close fault, EOF mid-frame a read error.
                let frame = if c.recv.mid_frame() {
                    UpFrame::Fault("read error: connection closed mid-frame".into())
                } else {
                    UpFrame::Fault("connection closed before EOF frame".into())
                };
                deliver(c, ups, frame);
                return;
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                deliver(c, ups, UpFrame::Fault(format!("read error: {e}")));
                return;
            }
        }
    }
}

/// Flushes the connection's buffered down-traffic; performs the write
/// half-close once `close()` was requested and the buffer drained; tears
/// the connection down on write errors (a closed link is not a run error
/// — the site may legitimately be gone).
fn flush_conn_downs(c: &mut CoordConn) {
    let mut st = c.tx.state.lock().expect("down state poisoned");
    if c.write_shut {
        st.send.clear();
        c.tx.publish(&st);
        return;
    }
    if !st.send.is_empty() && st.send.flush_to(&mut (&c.stream)).is_err() {
        st.send.clear();
        st.closing = true;
        c.tx.publish(&st);
        drop(st);
        let _ = c.stream.shutdown(Shutdown::Both);
        c.write_shut = true;
        return;
    }
    c.tx.publish(&st);
    if st.closing && st.send.is_empty() {
        drop(st);
        let _ = c.stream.shutdown(Shutdown::Write);
        c.write_shut = true;
    }
}

/// The coordinator-side event loop: one thread multiplexing every site
/// connection. Decoded up-frames flow into the bounded queues consumed by
/// [`coordinator_loop`]; down-frames queued by [`EpollDownSender`]s flush
/// on write readiness. Exits once every connection has completed both
/// directions; dropping the connections closes the sockets, so even an
/// abnormal exit releases the sites' drain loops.
fn coord_reactor<U: FrameCodec>(
    mut conns: Vec<CoordConn>,
    ups: Vec<UpQueue<U>>,
    mut wake_rx: WakeRx,
) -> Result<(), RuntimeError> {
    use std::os::fd::AsRawFd;
    let poller = Poller::new().map_err(|e| io_runtime_err("creating coordinator epoll", &e))?;
    poller
        .register(wake_rx.raw_fd(), WAKE_TOKEN, true, false)
        .map_err(|e| io_runtime_err("registering coordinator waker", &e))?;
    let mut meter = ReactorMeter::new();
    for (i, c) in conns.iter_mut().enumerate() {
        poller
            .register(c.stream.as_raw_fd(), i as u64, true, false)
            .map_err(|e| io_runtime_err("registering site connection", &e))?;
        c.registered = true;
        c.reg_read = true;
        c.reg_write = false;
        meter.on_registered(1);
    }
    let mut live = conns.len();
    let mut events: Vec<PollEvent> = Vec::new();
    while live > 0 {
        events.clear();
        // Bounded wait, not -1: the waker's drain ordering makes lost
        // wakeups impossible (see `WakeRx::drain`), but a periodic pass
        // over the connections is cheap insurance that queued down
        // sends/closes are picked up even if a wakeup ever went missing.
        let n = poller
            .wait(&mut events, 250)
            .map_err(|e| io_runtime_err("coordinator epoll_wait", &e))?;
        let t0 = Instant::now();
        let mut woke = false;
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                woke = true;
                continue;
            }
            let Some(c) = conns.get_mut(ev.token as usize) else {
                continue;
            };
            if c.dead {
                continue;
            }
            if ev.readable && !c.up_done {
                service_read(c, &ups);
            }
            if ev.hangup && c.up_done && !c.write_shut {
                // Peer fully gone while we only held the write half: the
                // read path can no longer observe it, so tear down here.
                let mut st = c.tx.state.lock().expect("down state poisoned");
                st.send.clear();
                st.closing = true;
                c.tx.publish(&st);
                drop(st);
                let _ = c.stream.shutdown(Shutdown::Both);
                c.write_shut = true;
            }
        }
        if woke {
            wake_rx.drain();
        }
        for (i, c) in conns.iter_mut().enumerate() {
            if c.dead {
                continue;
            }
            // Idle fast path: no buffered bytes and no close requested
            // (per the lock-free hints the senders publish), so skip the
            // mutex entirely — at k in the thousands this pass would
            // otherwise take O(k) lock acquisitions per wakeup.
            if !c.write_shut && c.tx.down_work() {
                flush_conn_downs(c);
            }
            if c.up_done && c.write_shut {
                if c.registered && poller.deregister(c.stream.as_raw_fd()).is_ok() {
                    meter.on_registered(-1);
                }
                c.registered = false;
                c.dead = true;
                live -= 1;
                continue;
            }
            let want_r = !c.up_done;
            let want_w = !c.write_shut && c.tx.pending_hint.load(Ordering::Acquire) > 0;
            if c.registered && (want_r, want_w) == (c.reg_read, c.reg_write) {
                continue;
            }
            if !want_r && !want_w {
                if c.registered && poller.deregister(c.stream.as_raw_fd()).is_ok() {
                    c.registered = false;
                    meter.on_registered(-1);
                }
                continue;
            }
            let ok = if c.registered {
                poller
                    .modify(c.stream.as_raw_fd(), i as u64, want_r, want_w)
                    .is_ok()
            } else {
                let ok = poller
                    .register(c.stream.as_raw_fd(), i as u64, want_r, want_w)
                    .is_ok();
                if ok {
                    meter.on_registered(1);
                }
                ok
            };
            if ok {
                c.registered = true;
                c.reg_read = want_r;
                c.reg_write = want_w;
            }
        }
        meter.on_service(n, t0.elapsed().as_nanos() as u64);
    }
    meter.finish();
    Ok(())
}

// ------------------------------------------------------------- wiring

/// Connects `k` site sockets to `addr` while accepting them on
/// `listener`, performing the `HELLO` handshake on each. Returns the site
/// ends (in site order) and the coordinator ends (indexed by the id each
/// `HELLO` declared). All sockets come back nonblocking with Nagle off.
fn wire_sites(
    listener: &TcpListener,
    addr: SocketAddr,
    k: usize,
) -> Result<(Vec<TcpStream>, Vec<TcpStream>), RuntimeError> {
    let connector = thread::spawn(move || -> io::Result<Vec<TcpStream>> {
        let mut streams = Vec::with_capacity(k);
        for id in 0..k {
            // Bounded connect: if the accept side errors out the join
            // below cannot hang on a never-completing handshake.
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
            stream.set_nodelay(true)?;
            let mut hello = Vec::with_capacity(9);
            hello.extend_from_slice(&5u32.to_le_bytes());
            hello.push(TAG_HELLO);
            hello.extend_from_slice(&(id as u32).to_le_bytes());
            (&stream).write_all(&hello)?;
            stream.set_nonblocking(true)?;
            streams.push(stream);
        }
        Ok(streams)
    });
    let mut accept_err: Option<RuntimeError> = None;
    let mut accepted: Vec<Option<TcpStream>> = (0..k).map(|_| None).collect();
    for _ in 0..k {
        let stream = match listener.accept() {
            Ok((s, _peer)) => s,
            Err(e) => {
                accept_err = Some(io_runtime_err("accepting site connection", &e));
                break;
            }
        };
        let r = stream
            .set_nodelay(true)
            .map_err(|e| io_runtime_err("configuring site connection", &e))
            .and_then(|()| read_hello(&stream))
            .and_then(|site| {
                if site >= k {
                    Err(RuntimeError::Transport(format!(
                        "HELLO for site {site} but k = {k}"
                    )))
                } else if accepted[site].is_some() {
                    Err(RuntimeError::Transport(format!(
                        "duplicate HELLO for site {site}"
                    )))
                } else {
                    Ok(site)
                }
            })
            .and_then(|site| {
                stream
                    .set_nonblocking(true)
                    .map_err(|e| io_runtime_err("configuring site connection", &e))?;
                Ok(site)
            });
        match r {
            Ok(site) => accepted[site] = Some(stream),
            Err(e) => {
                accept_err = Some(e);
                break;
            }
        }
    }
    // Join the connector before surfacing accept errors: its sockets must
    // not leak, and a failed accept loop usually means it failed too.
    let connected = connector
        .join()
        .map_err(|_| RuntimeError::Transport("site connector thread panicked".into()))?;
    if let Some(e) = accept_err {
        return Err(e);
    }
    let site_streams = connected.map_err(|e| io_runtime_err("connecting site sockets", &e))?;
    let coord_streams = accepted
        .into_iter()
        .map(|s| s.expect("all k slots filled above"))
        .collect();
    Ok((site_streams, coord_streams))
}

// -------------------------------------------------------------- engine

/// Runs a full flat deployment on the event-driven engine: `k` site
/// connections over loopback TCP, multiplexed onto `EPOLL_WORKERS`
/// site event loops plus one coordinator reactor — thread count is O(1)
/// in `k`, so k in the thousands runs on one box.
///
/// Wire format, protocol behavior, and [`Metrics`] accounting are
/// identical to [`crate::tcp::run_tcp`]; `feeds[i]` is site `i`'s
/// partition of the stream as a nonblocking [`ItemFeed`].
pub fn run_epoll<S, C>(
    sites: Vec<S>,
    mut coordinator: C,
    feeds: Vec<Box<dyn ItemFeed>>,
    cfg: &RuntimeConfig,
) -> Result<RunOutput<S, C>, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    C: CoordinatorNode<Up = S::Up, Down = S::Down> + Send,
{
    let k = sites.len();
    assert!(k >= 1, "need at least one site");
    assert_eq!(feeds.len(), k, "one feed per site");
    let batch_max = cfg.batch_max.max(1);
    let down_poll = cfg.down_poll_every.max(1);
    let _ = raise_nofile_limit();

    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))
        .map_err(|e| io_runtime_err("bind loopback listener", &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| RuntimeError::Transport(e.to_string()))?;
    let (site_streams, coord_streams) = wire_sites(&listener, addr, k)?;

    let (up_tx, up_rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
    let (waker, wake_rx) = wake_pair().map_err(|e| io_runtime_err("creating reactor waker", &e))?;
    let mut conns = Vec::with_capacity(k);
    let mut downs: Vec<Box<dyn DownSender<S::Down>>> = Vec::with_capacity(k);
    for (site, stream) in coord_streams.into_iter().enumerate() {
        let tx = ConnTx::new(Arc::clone(&waker));
        downs.push(Box::new(EpollDownSender::<S::Down> {
            tx: Arc::clone(&tx),
            _marker: std::marker::PhantomData,
        }));
        conns.push(CoordConn {
            stream,
            site,
            queue: 0,
            recv: RecvBuf::new(),
            tx,
            up_done: false,
            write_shut: false,
            registered: false,
            reg_read: false,
            reg_write: false,
            dead: false,
        });
    }
    let coord_ep = CoordEndpoint::new(up_rx, downs);
    let tasks: Vec<SiteTask<S>> = sites
        .into_iter()
        .zip(site_streams)
        .zip(feeds)
        .enumerate()
        .map(|(i, ((site, stream), feed))| SiteTask::new(i, site, feed, stream))
        .collect();

    let (reactor_res, coord_res, site_res) = thread::scope(|scope| {
        let reactor = scope.spawn(move || coord_reactor::<S::Up>(conns, vec![up_tx], wake_rx));
        let coord = scope.spawn(|| {
            let (metrics, _items) = coordinator_loop(&mut coordinator, coord_ep, false)?;
            Ok::<_, RuntimeError>(metrics)
        });
        let site_res = run_site_pool(tasks, batch_max, down_poll);
        (reactor.join(), coord.join(), site_res)
    });

    // Deterministic error priority, matching run_on: panicking site by
    // index, then the coordinator, then reactor/site transport errors.
    let mut slots: Vec<Option<Result<(S, Metrics), RuntimeError>>> = (0..k).map(|_| None).collect();
    for (global, res) in site_res {
        slots[global] = Some(res);
    }
    for (i, slot) in slots.iter().enumerate() {
        if matches!(slot, None | Some(Err(RuntimeError::SitePanicked(_)))) {
            return Err(RuntimeError::SitePanicked(i));
        }
    }
    let coord_metrics = coord_res.map_err(|_| RuntimeError::CoordinatorPanicked)??;
    reactor_res.map_err(|_| RuntimeError::Transport("coordinator reactor panicked".into()))??;
    let mut metrics = coord_metrics;
    let mut final_sites = Vec::with_capacity(k);
    for slot in slots {
        let (site, site_metrics) = slot.expect("checked above")?;
        metrics.merge(&site_metrics);
        final_sites.push(site);
    }
    Ok(RunOutput {
        sites: final_sites,
        coordinator,
        metrics,
    })
}

/// Runs a two-level fan-in tree on the event-driven engine: all `g·k`
/// site connections share one listener and one coordinator-side reactor
/// (HELLO ids are global, `gi·k + i`), the site protocol steps run on the
/// `EPOLL_WORKERS` loop pool, and each group's aggregator drains its
/// own bounded up queue. The aggregator→root hop stays on the blocking
/// TCP substrate — `g` links is a fan-in the thread-per-link wiring
/// handles fine, and it keeps the root path byte-identical to
/// `run_tree_tcp`.
///
/// Semantics (shutdown ordering, sync cadence, metrics accounting, error
/// priority) match [`crate::tree::run_tree_nodes`] on the other
/// substrates; `feeds[gi][i]` is the nonblocking input partition for site
/// `i` of group `gi`.
#[allow(clippy::type_complexity)]
pub fn run_tree_epoll<S, A>(
    s: usize,
    topo: &TreeTopology,
    mut mk_site: impl FnMut(usize, usize) -> S,
    mut mk_aggregator: impl FnMut(usize) -> A,
    feeds: Vec<Vec<Box<dyn ItemFeed>>>,
    cfg: &RuntimeConfig,
) -> Result<TreeOutput, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource + Send,
{
    let (g, k) = (topo.groups, topo.k_per_group);
    assert!(g >= 1 && k >= 1, "need at least one site per group");
    assert_eq!(feeds.len(), g, "one feed block per group");
    // Same fail-fast as the TCP tree: the root hop is framed, so a sync
    // frame (9-byte batch header + 17-byte SyncMsg header + 24 bytes per
    // entry) must fit MAX_FRAME_LEN.
    let max_sync_payload = 9 + 17 + 24 * s;
    let frame_cap = dwrs_core::framed::MAX_FRAME_LEN as usize;
    if max_sync_payload > frame_cap {
        let max_s = (frame_cap - 9 - 17) / 24;
        return Err(RuntimeError::Transport(format!(
            "sample size {s} needs {max_sync_payload}-byte sync frames, over the \
             {frame_cap}-byte framed-transport cap; the epoll tree supports s <= {max_s}"
        )));
    }
    let batch_max = cfg.batch_max.max(1);
    let down_poll = cfg.down_poll_every.max(1);
    let _ = raise_nofile_limit();

    let bind = |what: &str| -> Result<(TcpListener, SocketAddr), RuntimeError> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))
            .map_err(|e| io_runtime_err(&format!("bind {what} listener"), &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        Ok((listener, addr))
    };
    let (site_listener, site_addr) = bind("site")?;
    let (site_streams, coord_streams) = wire_sites(&site_listener, site_addr, g * k)?;

    // One bounded up queue per aggregator; one reactor (and one waker)
    // multiplexing every group's connections.
    let (waker, wake_rx) = wake_pair().map_err(|e| io_runtime_err("creating reactor waker", &e))?;
    let mut up_txs = Vec::with_capacity(g);
    let mut up_rxs = Vec::with_capacity(g);
    for _ in 0..g {
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        up_txs.push(tx);
        up_rxs.push(rx);
    }
    let mut conns = Vec::with_capacity(g * k);
    let mut group_downs: Vec<Vec<Box<dyn DownSender<S::Down>>>> =
        (0..g).map(|_| Vec::with_capacity(k)).collect();
    for (global, stream) in coord_streams.into_iter().enumerate() {
        let (gi, i) = (global / k, global % k);
        let tx = ConnTx::new(Arc::clone(&waker));
        group_downs[gi].push(Box::new(EpollDownSender::<S::Down> {
            tx: Arc::clone(&tx),
            _marker: std::marker::PhantomData,
        }));
        conns.push(CoordConn {
            stream,
            site: i,
            queue: gi,
            recv: RecvBuf::new(),
            tx,
            up_done: false,
            write_shut: false,
            registered: false,
            reg_read: false,
            reg_write: false,
            dead: false,
        });
    }
    let agg_eps: Vec<CoordEndpoint<S::Up, S::Down>> = up_rxs
        .into_iter()
        .zip(group_downs)
        .map(|(rx, downs)| CoordEndpoint::new(rx, downs))
        .collect();

    let (root_listener, root_addr) = bind("root")?;
    let mut root_links = Vec::with_capacity(g);
    for gi in 0..g {
        root_links.push(
            connect_site::<SyncMsg, NoDown>(root_addr, gi).map_err(|e| {
                RuntimeError::Transport(format!("connect group {gi} root link: {e}"))
            })?,
        );
    }
    let root_ep = accept_sites::<SyncMsg, NoDown>(&root_listener, g, cfg.queue_capacity)?;

    let mut tasks = Vec::with_capacity(g * k);
    let mut site_iter = site_streams.into_iter();
    for (gi, group_feeds) in feeds.into_iter().enumerate() {
        assert_eq!(group_feeds.len(), k, "one feed per site");
        for (i, feed) in group_feeds.into_iter().enumerate() {
            let stream = site_iter.next().expect("wire_sites returned g*k streams");
            tasks.push(SiteTask::new(gi * k + i, mk_site(gi, i), feed, stream));
        }
    }

    type AggRes = Result<(Metrics, GroupStats), RuntimeError>;
    let (reactor_res, agg_res, root_res, site_res) = thread::scope(|scope| {
        let reactor = scope.spawn(move || coord_reactor::<S::Up>(conns, up_txs, wake_rx));
        let mut agg_handles: Vec<thread::ScopedJoinHandle<'_, AggRes>> = Vec::with_capacity(g);
        for (gi, (coord_ep, root_link)) in agg_eps.into_iter().zip(root_links).enumerate() {
            let mut aggregator = mk_aggregator(gi);
            let sync_every = topo.sync_every;
            agg_handles.push(scope.spawn(move || {
                aggregator_loop(&mut aggregator, coord_ep, root_link, gi, sync_every)
            }));
        }
        let root = scope.spawn(move || root_loop(root_ep));
        let site_res = run_site_pool(tasks, batch_max, down_poll);
        let agg_res: Vec<_> = agg_handles.into_iter().map(|h| h.join()).collect();
        (reactor.join(), agg_res, root.join(), site_res)
    });

    // Deterministic error priority, matching run_tree_on: panicking sites
    // by global index, then aggregators, then the root; then the reactor
    // (an FdExhausted there is the root cause of any downstream faults),
    // then transport errors tier by tier.
    let mut slots: Vec<Option<Result<(S, Metrics), RuntimeError>>> =
        (0..g * k).map(|_| None).collect();
    for (global, res) in site_res {
        slots[global] = Some(res);
    }
    for (i, slot) in slots.iter().enumerate() {
        if matches!(slot, None | Some(Err(RuntimeError::SitePanicked(_)))) {
            return Err(RuntimeError::SitePanicked(i));
        }
    }
    for (gi, res) in agg_res.iter().enumerate() {
        if res.is_err() {
            return Err(RuntimeError::AggregatorPanicked(gi));
        }
    }
    let root_out = root_res.map_err(|_| RuntimeError::RootPanicked)?;
    reactor_res.map_err(|_| RuntimeError::Transport("tree reactor panicked".into()))??;

    let mut metrics = Metrics::new();
    for slot in slots {
        let (_site, site_metrics) = slot.expect("checked above")?;
        metrics.merge(&site_metrics);
    }
    let mut group_stats = Vec::with_capacity(g);
    for res in agg_res {
        let (agg_metrics, stats) = res.expect("panics handled above")?;
        metrics.merge(&agg_metrics);
        group_stats.push(stats);
    }
    let (group_samples, sync_log) = root_out?;
    let parts: Vec<&[Keyed]> = group_samples.iter().map(Vec::as_slice).collect();
    let root_sample = merge_samples(&parts, s);
    Ok(TreeOutput {
        root_sample,
        group_samples,
        metrics,
        group_stats,
        sync_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::swor::wire::WireError;
    use dwrs_sim::{Meter, Outbox};

    /// The engine unit tests' toy protocol, given a wire encoding (u64 LE)
    /// so it can cross the framed transport: sites forward every item id;
    /// the coordinator broadcasts a counter every 3 receipts.
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Up(u64);
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Down(#[allow(dead_code)] u64);
    impl Meter for Up {
        fn kind(&self) -> &'static str {
            "up"
        }
    }
    impl Meter for Down {
        fn kind(&self) -> &'static str {
            "down"
        }
    }
    impl FrameCodec for Up {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
            let bytes: [u8; 8] = buf
                .get(..8)
                .ok_or(WireError::Truncated)?
                .try_into()
                .expect("8 bytes sliced");
            Ok((Up(u64::from_le_bytes(bytes)), 8))
        }
    }
    impl FrameCodec for Down {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
            let bytes: [u8; 8] = buf
                .get(..8)
                .ok_or(WireError::Truncated)?
                .try_into()
                .expect("8 bytes sliced");
            Ok((Down(u64::from_le_bytes(bytes)), 8))
        }
    }

    #[derive(Debug)]
    struct EchoSite {
        seen_down: u64,
    }
    impl SiteNode for EchoSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, item: Item, out: &mut Vec<Up>) {
            out.push(Up(item.id));
        }
        fn receive(&mut self, _msg: &Down) {
            self.seen_down += 1;
        }
    }
    #[derive(Debug)]
    struct EchoCoord {
        received: u64,
    }
    impl CoordinatorNode for EchoCoord {
        type Up = Up;
        type Down = Down;
        fn receive(&mut self, _from: usize, _msg: Up, out: &mut Outbox<Down>) {
            self.received += 1;
            if self.received.is_multiple_of(3) {
                out.broadcast(Down(self.received));
            }
        }
    }

    #[allow(deprecated)]
    fn feeds(n: u64, k: usize) -> Vec<Box<dyn ItemFeed>> {
        crate::engine::split_stream(k, (0..n).map(|i| ((i % k as u64) as usize, Item::unit(i))))
            .into_iter()
            .map(|part| Box::new(VecFeed::new(part)) as Box<dyn ItemFeed>)
            .collect()
    }

    fn echo_sites(k: usize) -> Vec<EchoSite> {
        (0..k).map(|_| EchoSite { seen_down: 0 }).collect()
    }

    #[test]
    fn echo_protocol_full_accounting() {
        // Same assertions as the threaded engine's unit test: exact
        // message counts and every broadcast drained before shutdown.
        let out = run_epoll(
            echo_sites(2),
            EchoCoord { received: 0 },
            feeds(9, 2),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.coordinator.received, 9);
        assert_eq!(out.metrics.up_total, 9);
        assert_eq!(out.metrics.down_total, 6, "3 broadcasts × 2 sites");
        assert_eq!(out.metrics.broadcast_events, 3);
        for s in &out.sites {
            assert_eq!(s.seen_down, 3);
        }
    }

    #[test]
    fn tiny_queue_and_batch_still_complete() {
        // queue_capacity 1 + batch_max 1 + down_poll_every 1 exercises the
        // reactor's blocking-send backpressure on every single message.
        let cfg = RuntimeConfig::new()
            .with_batch_max(1)
            .with_queue_capacity(1)
            .with_down_poll_every(1);
        let out = run_epoll(
            echo_sites(4),
            EchoCoord { received: 0 },
            feeds(1000, 4),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.coordinator.received, 1000);
        assert_eq!(out.metrics.up_total, 1000);
    }

    #[test]
    fn final_partial_batch_is_flushed() {
        let cfg = RuntimeConfig::new().with_batch_max(64);
        let out = run_epoll(echo_sites(1), EchoCoord { received: 0 }, feeds(7, 1), &cfg).unwrap();
        assert_eq!(out.coordinator.received, 7);
    }

    #[test]
    fn many_sites_multiplex_on_few_threads() {
        // More connections than event-loop threads by far: correctness of
        // the multiplexed scheduling, not throughput.
        let k = 64;
        let out = run_epoll(
            echo_sites(k),
            EchoCoord { received: 0 },
            feeds(6400, k),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.coordinator.received, 6400);
        assert_eq!(out.metrics.up_total, 6400);
    }

    /// Site whose entire output arrives at end-of-stream (the window
    /// sampler's shape): the closing burst must be chunked through the
    /// framed transport in batch-sized flushes.
    #[derive(Debug)]
    struct FinisherSite {
        burst: u64,
    }
    impl SiteNode for FinisherSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, _item: Item, _out: &mut Vec<Up>) {}
        fn receive(&mut self, _msg: &Down) {}
        fn finish(&mut self, out: &mut Vec<Up>) {
            out.extend((0..self.burst).map(Up));
        }
    }

    #[test]
    fn finish_burst_larger_than_batch_max_is_chunked_through() {
        let cfg = RuntimeConfig::new()
            .with_batch_max(8)
            .with_queue_capacity(2);
        let sites = vec![FinisherSite { burst: 100 }, FinisherSite { burst: 3 }];
        let out = run_epoll(sites, EchoCoord { received: 0 }, feeds(10, 2), &cfg).unwrap();
        assert_eq!(out.coordinator.received, 103);
        assert_eq!(out.metrics.up_total, 103);
    }

    #[derive(Debug)]
    struct PanickingSite;
    impl SiteNode for PanickingSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, item: Item, _out: &mut Vec<Up>) {
            if item.id == 3 {
                panic!("injected failure");
            }
        }
        fn receive(&mut self, _msg: &Down) {}
    }

    #[test]
    fn site_panic_reported_not_hung() {
        // Under the (i % k) partition only site 1 ever sees id 3; the
        // panic is caught per step, pinned to the right site, and the
        // run unwinds instead of hanging the other tasks.
        let sites = vec![PanickingSite, PanickingSite];
        let err = run_epoll(
            sites,
            EchoCoord { received: 0 },
            feeds(10, 2),
            &RuntimeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::SitePanicked(1)), "got {err:?}");
    }

    #[derive(Debug)]
    struct PanickingCoord;
    impl CoordinatorNode for PanickingCoord {
        type Up = Up;
        type Down = Down;
        fn receive(&mut self, _from: usize, msg: Up, _out: &mut Outbox<Down>) {
            if msg.0 >= 5 {
                panic!("injected coordinator failure");
            }
        }
    }

    #[test]
    fn coordinator_panic_reported_not_hung() {
        // The dying coordinator drops its queue receiver; the reactor's
        // orphaned-send path tears every connection down, releasing the
        // still-streaming site tasks.
        let err = run_epoll(
            echo_sites(2),
            PanickingCoord,
            feeds(100, 2),
            &RuntimeConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, RuntimeError::CoordinatorPanicked),
            "got {err:?}"
        );
    }

    #[test]
    fn feed_pending_is_not_end_of_stream() {
        // A feed that interleaves Pending between frames must stall the
        // task, not terminate it: every item still arrives, in order.
        struct Stutter {
            frames: Vec<Vec<Item>>,
            gap: bool,
        }
        impl ItemFeed for Stutter {
            fn poll(&mut self) -> Feed {
                if self.gap {
                    self.gap = false;
                    return Feed::Pending;
                }
                match self.frames.pop() {
                    Some(f) => {
                        self.gap = true;
                        Feed::Frame(f)
                    }
                    None => Feed::Done,
                }
            }
        }
        let frames = (0..10u64)
            .rev()
            .map(|f| (0..10).map(|i| Item::unit(f * 10 + i)).collect())
            .collect();
        let feeds = vec![Box::new(Stutter { frames, gap: false }) as Box<dyn ItemFeed>];
        let out = run_epoll(
            echo_sites(1),
            EchoCoord { received: 0 },
            feeds,
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.coordinator.received, 100);
        assert_eq!(out.metrics.up_total, 100);
    }
}
