//! Loopback-TCP transport: the same engine loops, but frames cross real
//! sockets using `dwrs_core::framed` length-prefixed encoding over the
//! `swor::wire` payload codec — so the bytes on the wire are exactly the
//! bytes the metrics meter.
//!
//! Socket protocol (all frames are `[u32 len][payload]`, payload starts
//! with one tag byte):
//!
//! | direction | tag | payload |
//! |---|---|---|
//! | site→coord | `HELLO` | `u32` site id (first frame on a connection) |
//! | site→coord | `BATCH` | `u64` item count, then concatenated `FrameCodec` up-messages |
//! | site→coord | `EOF` | empty — the site's stream is exhausted |
//! | site→coord | `FAULT` | UTF-8 diagnostic — the site hit a local failure |
//! | coord→site | `DOWN` | exactly one `FrameCodec` down-message |
//!
//! The `BATCH` item count is the sender's stream-progress watermark for the
//! flush window (items observed, not messages sent — the protocols are
//! message-sublinear); hierarchical aggregators key their root-sync cadence
//! off it.
//!
//! Shutdown is a half-close handshake: a site half-closes its write side
//! after `EOF`; the coordinator half-closes each down link once every site
//! reported `EOF`, which terminates the sites' drain loops.
//!
//! Dedicated reader threads bridge each socket onto the same `mpsc`
//! receivers the channel transport uses: per-connection readers on the
//! coordinator side feed the shared bounded up queue (so TCP inherits the
//! engine's backpressure: a slow coordinator fills the queue, the readers
//! block, the kernel socket buffers fill, and site writes stall), and one
//! reader per site drains down-messages eagerly (which keeps the
//! coordinator's down writes from ever blocking — the deadlock-freedom
//! invariant).

use std::io::{self, Read};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread;

use dwrs_core::framed::{decode_seq, encode_seq, FrameCodec, FramedReader, FramedWriter};
use dwrs_core::Item;
use dwrs_sim::{CoordinatorNode, Metrics, SiteNode};

use crate::config::RuntimeConfig;
use crate::engine::{coordinator_loop, site_loop, RunOutput, RuntimeError};
use crate::transport::{
    BatchSender, CoordEndpoint, DownSender, SiteEndpoint, TransportError, UpFrame,
};

pub(crate) const TAG_HELLO: u8 = 0x10;
pub(crate) const TAG_BATCH: u8 = 0x11;
pub(crate) const TAG_EOF: u8 = 0x12;
pub(crate) const TAG_FAULT: u8 = 0x13;
pub(crate) const TAG_DOWN: u8 = 0x21;

// ----------------------------------------------------------- site side

/// Conservative per-message wire-size bound used to pre-size batch frames:
/// every protocol message is O(1) machine words (the largest SWOR up frame
/// is 25 bytes), so `batch_max` messages fit this many bytes.
const MSG_SIZE_HINT: usize = 32;

/// Site-side up sender: encodes batches onto the socket. Frames are built
/// in the writer's reusable scratch (pre-sized from the engine's
/// `batch_max` via [`BatchSender::reserve_hint`]) and shipped with a
/// single `write_all` — no allocation, no copy, one syscall per flush.
struct TcpBatchSender<U> {
    writer: FramedWriter<TcpStream>,
    _marker: std::marker::PhantomData<fn(U)>,
}

/// Builds the site-side up sender over an already-connected socket
/// (shared with the daemon's attach client, whose handshake is a control
/// frame instead of `HELLO`).
pub(crate) fn tcp_batch_sender<U: FrameCodec + Send + 'static>(
    stream: TcpStream,
) -> Box<dyn BatchSender<U>> {
    Box::new(TcpBatchSender {
        writer: FramedWriter::new(stream),
        _marker: std::marker::PhantomData,
    })
}

impl<U: FrameCodec + Send> BatchSender<U> for TcpBatchSender<U> {
    fn send(&mut self, frame: UpFrame<U>) -> Result<(), TransportError> {
        match frame {
            UpFrame::Batch { mut msgs, items } => self.send_batch(&mut msgs, items),
            UpFrame::Eof => self
                .writer
                .write_frame_with(|buf| buf.push(TAG_EOF))
                .map_err(TransportError::Io),
            UpFrame::Fault(msg) => self
                .writer
                .write_frame_with(|buf| {
                    buf.push(TAG_FAULT);
                    buf.extend_from_slice(msg.as_bytes());
                })
                .map_err(TransportError::Io),
        }
    }

    fn send_batch(&mut self, batch: &mut Vec<U>, items: u64) -> Result<(), TransportError> {
        self.writer
            .write_frame_with(|buf| {
                buf.push(TAG_BATCH);
                buf.extend_from_slice(&items.to_le_bytes());
                encode_seq(batch, buf);
            })
            .map_err(TransportError::Io)?;
        // Keep the caller's allocation: the messages were serialized from
        // the borrow, nothing moved out.
        batch.clear();
        Ok(())
    }

    fn reserve_hint(&mut self, batch_max: usize) {
        self.writer
            .reserve_frame(9 + MSG_SIZE_HINT * batch_max.max(1));
    }

    fn abort(&mut self) {
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
    }

    fn close(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(Shutdown::Write);
    }
}

/// Connects one site to a coordinator at `addr`: performs the `HELLO`
/// handshake and spawns the down-reader thread.
pub fn connect_site<U, D>(
    addr: impl ToSocketAddrs,
    site_id: usize,
) -> io::Result<SiteEndpoint<U, D>>
where
    U: FrameCodec + Send + 'static,
    D: FrameCodec + Send + 'static,
{
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = FramedWriter::new(stream.try_clone()?);
    let mut hello = vec![TAG_HELLO];
    hello.extend_from_slice(&(site_id as u32).to_le_bytes());
    writer.write_blob(&hello)?;

    let (down_tx, down_rx) = mpsc::channel::<D>();
    let read_half = stream;
    thread::spawn(move || down_reader(read_half, down_tx));
    Ok(SiteEndpoint::new(
        site_id,
        Box::new(TcpBatchSender {
            writer,
            _marker: std::marker::PhantomData,
        }),
        down_rx,
    ))
}

/// Site-side reader: decodes `DOWN` frames into the in-process channel
/// until the coordinator half-closes. Runs on its own thread so the socket
/// is always drained (downs never back up into the coordinator). On any
/// exit — including a malformed frame — the socket is fully shut down so a
/// peer blocked writing to it fails fast instead of hanging on a full
/// kernel buffer.
pub(crate) fn down_reader<D: FrameCodec>(stream: TcpStream, tx: mpsc::Sender<D>) {
    let shutdown_handle = stream.try_clone().ok();
    let mut reader = FramedReader::new(stream);
    loop {
        let stop = match reader.read_blob() {
            Ok(Some(payload)) => match payload.split_first() {
                Some((&TAG_DOWN, body)) => match D::decode(body) {
                    Ok((msg, used)) if used == body.len() => tx.send(msg).is_err(),
                    _ => true, // malformed: stop draining, the site will finish
                },
                _ => true,
            },
            Ok(None) | Err(_) => true,
        };
        if stop {
            if let Some(s) = shutdown_handle.as_ref() {
                let _ = s.shutdown(Shutdown::Both);
            }
            return;
        }
    }
}

/// Runs one site endpoint to completion against a remote coordinator:
/// connect, stream `items` through the protocol with batching, `EOF`,
/// drain. Returns the final site state and its upstream [`Metrics`].
pub fn run_site<S, I>(
    addr: impl ToSocketAddrs,
    site_id: usize,
    mut site: S,
    items: I,
    cfg: &RuntimeConfig,
) -> Result<(S, Metrics), RuntimeError>
where
    S: SiteNode,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    I: IntoIterator<Item = Item>,
{
    let endpoint = connect_site(addr, site_id).map_err(TransportError::Io)?;
    let metrics = site_loop(
        &mut site,
        endpoint,
        items,
        cfg.batch_max.max(1),
        cfg.down_poll_every,
    )?;
    Ok((site, metrics))
}

// ---------------------------------------------------- coordinator side

/// Coordinator-side down sender for one site connection. Encodes each
/// message in the writer's reusable scratch: no allocation per send, one
/// syscall per message.
struct TcpDownSender<D> {
    writer: FramedWriter<TcpStream>,
    _marker: std::marker::PhantomData<fn(D)>,
}

/// Builds the coordinator-side down sender for one site connection
/// (shared with the daemon, which registers per-slot senders as sites
/// attach instead of accepting a fixed `k` up front).
pub(crate) fn tcp_down_sender<D: FrameCodec + Send + 'static>(
    stream: TcpStream,
) -> Box<dyn DownSender<D>> {
    Box::new(TcpDownSender {
        writer: FramedWriter::new(stream),
        _marker: std::marker::PhantomData,
    })
}

impl<D: FrameCodec + Send> DownSender<D> for TcpDownSender<D> {
    fn send(&mut self, msg: &D) -> Result<(), TransportError> {
        self.writer
            .write_frame_with(|buf| {
                buf.push(TAG_DOWN);
                msg.encode(buf);
            })
            .map_err(TransportError::Io)
    }

    fn close(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(Shutdown::Write);
    }
}

/// Coordinator-side reader for one site connection: decodes
/// `BATCH`/`EOF`/`FAULT` frames into the shared bounded up queue. Any
/// protocol violation or abrupt disconnect becomes an [`UpFrame::Fault`]
/// so the run terminates with a diagnostic instead of hanging. On exit the
/// socket is fully shut down, so a misbehaving peer that keeps streaming
/// fails fast on its next write instead of blocking forever once the
/// kernel buffer fills.
fn up_reader<U: FrameCodec>(
    stream: TcpStream,
    site: usize,
    tx: mpsc::SyncSender<(usize, UpFrame<U>)>,
) {
    let shutdown_handle = stream.try_clone().ok();
    let mut reader = FramedReader::new(stream);
    loop {
        let frame = match reader.read_blob() {
            Ok(Some(payload)) => match payload.split_first() {
                Some((&TAG_BATCH, body)) if body.len() >= 8 => {
                    let items = u64::from_le_bytes(body[..8].try_into().expect("8 bytes checked"));
                    match decode_seq::<U>(&body[8..]) {
                        Ok(msgs) => UpFrame::Batch { msgs, items },
                        Err(e) => UpFrame::Fault(format!("bad batch payload: {e}")),
                    }
                }
                Some((&TAG_BATCH, _)) => {
                    UpFrame::Fault("batch frame shorter than its item-count header".into())
                }
                Some((&TAG_EOF, _)) => UpFrame::Eof,
                Some((&TAG_FAULT, body)) => {
                    UpFrame::Fault(String::from_utf8_lossy(body).into_owned())
                }
                Some((&tag, _)) => UpFrame::Fault(format!("unexpected frame tag {tag:#x}")),
                None => UpFrame::Fault("empty frame".into()),
            },
            Ok(None) => UpFrame::Fault("connection closed before EOF frame".into()),
            Err(e) => UpFrame::Fault(format!("read error: {e}")),
        };
        let terminal = !matches!(frame, UpFrame::Batch { .. });
        // A fault means the session is broken: fully shut the socket so a
        // peer still streaming into it errors out promptly. A clean `Eof`
        // must leave the socket open — the coordinator's down link shares
        // it and still carries broadcasts until shutdown phase 2.
        let broken = matches!(frame, UpFrame::Fault(_));
        if tx.send((site, frame)).is_err() || terminal {
            if broken {
                if let Some(s) = shutdown_handle.as_ref() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
            return;
        }
    }
}

/// Accepts `k` site connections on `listener`, reads each `HELLO`, and
/// assembles the coordinator endpoint (spawning one up-reader thread per
/// connection).
pub fn accept_sites<U, D>(
    listener: &TcpListener,
    k: usize,
    queue_capacity: usize,
) -> Result<CoordEndpoint<U, D>, RuntimeError>
where
    U: FrameCodec + Send + 'static,
    D: FrameCodec + Send + 'static,
{
    assert!(k >= 1, "need at least one site");
    let (up_tx, up_rx) = mpsc::sync_channel(queue_capacity.max(1));
    let mut downs: Vec<Option<Box<dyn DownSender<D>>>> = (0..k).map(|_| None).collect();
    for _ in 0..k {
        let (stream, _peer) = listener.accept().map_err(TransportError::Io)?;
        stream.set_nodelay(true).map_err(TransportError::Io)?;
        let site = read_hello(&stream)?;
        if site >= k {
            return Err(RuntimeError::Transport(format!(
                "HELLO for site {site} but k = {k}"
            )));
        }
        if downs[site].is_some() {
            return Err(RuntimeError::Transport(format!(
                "duplicate HELLO for site {site}"
            )));
        }
        let writer = FramedWriter::new(stream.try_clone().map_err(TransportError::Io)?);
        downs[site] = Some(Box::new(TcpDownSender {
            writer,
            _marker: std::marker::PhantomData,
        }));
        let tx = up_tx.clone();
        thread::spawn(move || up_reader::<U>(stream, site, tx));
    }
    drop(up_tx);
    let downs = downs
        .into_iter()
        .map(|d| d.expect("all k slots filled above"))
        .collect();
    Ok(CoordEndpoint::new(up_rx, downs))
}

/// Reads and validates the `HELLO` frame that opens every site connection
/// (shared with the epoll engine's accept loop, which handshakes while
/// the socket is still in blocking mode).
pub(crate) fn read_hello(stream: &TcpStream) -> Result<usize, RuntimeError> {
    let mut len_bytes = [0u8; 4];
    let mut take = stream;
    take.read_exact(&mut len_bytes)
        .map_err(|e| RuntimeError::Transport(format!("reading HELLO length: {e}")))?;
    let len = u32::from_le_bytes(len_bytes);
    if len != 5 {
        return Err(RuntimeError::Transport(format!(
            "HELLO frame must be 5 bytes, got {len}"
        )));
    }
    let mut payload = [0u8; 5];
    take.read_exact(&mut payload)
        .map_err(|e| RuntimeError::Transport(format!("reading HELLO payload: {e}")))?;
    if payload[0] != TAG_HELLO {
        return Err(RuntimeError::Transport(format!(
            "expected HELLO tag, got {:#x}",
            payload[0]
        )));
    }
    Ok(u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize)
}

/// Runs a coordinator as a TCP server: accept `k` sites, drive the
/// protocol until every site reports `EOF`, half-close, and return the
/// final coordinator state, metrics, and the total stream-progress
/// watermark (items observed across all sites, from the batch frames).
///
/// Metrics here include upstream counts (metered from the decoded frames):
/// unlike the in-process engines, a standalone server cannot merge its
/// remote sites' thread-local meters.
///
/// This serves exactly one stream to completion and returns. For a
/// persistent multi-stream service with live queries, use
/// [`crate::daemon::Daemon`].
pub fn serve_coordinator<C>(
    listener: &TcpListener,
    k: usize,
    mut coordinator: C,
    cfg: &RuntimeConfig,
) -> Result<(C, Metrics, u64), RuntimeError>
where
    C: CoordinatorNode,
    C::Up: FrameCodec + Send + 'static,
    C::Down: FrameCodec + Send + 'static,
{
    let endpoint = accept_sites::<C::Up, C::Down>(listener, k, cfg.queue_capacity)?;
    let (metrics, items) = coordinator_loop(&mut coordinator, endpoint, true)?;
    Ok((coordinator, metrics, items))
}

// ------------------------------------------------------------- engine

/// Runs a full deployment over loopback TCP inside one process: binds an
/// ephemeral listener on 127.0.0.1, connects `k` site sockets, and drives
/// the same engine as [`crate::engine::run_threads`] with every protocol
/// byte crossing the kernel's TCP stack.
pub fn run_tcp<S, C, I>(
    sites: Vec<S>,
    coordinator: C,
    streams: Vec<I>,
    cfg: &RuntimeConfig,
) -> Result<RunOutput<S, C>, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    C: CoordinatorNode<Up = S::Up, Down = S::Down> + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let k = sites.len();
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))
        .map_err(|e| RuntimeError::Transport(format!("bind loopback listener: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| RuntimeError::Transport(e.to_string()))?;

    // Connect all k site sockets first (they complete against the listen
    // backlog without an accept loop running), then accept and handshake.
    let mut eps = Vec::with_capacity(k);
    for id in 0..k {
        eps.push(
            connect_site::<S::Up, S::Down>(addr, id)
                .map_err(|e| RuntimeError::Transport(format!("connect site {id}: {e}")))?,
        );
    }
    let coord_ep = accept_sites::<S::Up, S::Down>(&listener, k, cfg.queue_capacity)?;
    crate::engine::run_on((eps, coord_ep), sites, coordinator, streams, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::swor::{DownMsg, UpMsg};
    use std::io::Write;

    #[test]
    fn hello_rejects_out_of_range_site() {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let a = connect_site::<UpMsg, DownMsg>(addr, 7);
            drop(a);
        });
        let err = accept_sites::<UpMsg, DownMsg>(&listener, 2, 8).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Transport(ref m) if m.contains("site 7")),
            "got {err:?}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn site_sent_fault_round_trips_with_message() {
        // A Fault shipped through the site's BatchSender must arrive as a
        // Fault with its diagnostic intact — not be silently degraded to a
        // clean Eof.
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let mut ep = connect_site::<UpMsg, DownMsg>(addr, 0).unwrap();
            ep.up
                .send(UpFrame::Fault("site disk on fire".into()))
                .unwrap();
        });
        let ep = accept_sites::<UpMsg, DownMsg>(&listener, 1, 8).unwrap();
        let (site, frame) = ep.up.recv().unwrap();
        handle.join().unwrap();
        assert_eq!(site, 0);
        assert!(
            matches!(frame, UpFrame::Fault(ref m) if m == "site disk on fire"),
            "got {frame:?}"
        );
    }

    #[test]
    fn garbage_connection_surfaces_as_fault() {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Valid HELLO, then a garbage frame.
            s.write_all(&5u32.to_le_bytes()).unwrap();
            s.write_all(&[TAG_HELLO, 0, 0, 0, 0]).unwrap();
            s.write_all(&3u32.to_le_bytes()).unwrap();
            s.write_all(&[0xEE, 0xFF, 0x00]).unwrap();
        });
        let ep = accept_sites::<UpMsg, DownMsg>(&listener, 1, 8).unwrap();
        let mut frames = Vec::new();
        while let Ok(f) = ep.up.recv() {
            frames.push(f);
        }
        handle.join().unwrap();
        assert!(
            frames
                .iter()
                .any(|(site, f)| *site == 0 && matches!(f, UpFrame::Fault(_))),
            "got {frames:?}"
        );
    }
}
