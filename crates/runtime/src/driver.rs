//! The scenario driver: one declarative description, any engine, any
//! topology, O(batch × queue) memory.
//!
//! Before this layer existed every engine×topology combination was wired
//! up separately (CLI, benches, equivalence tests, …), and every run
//! pre-materialized the whole workload into `Vec<Vec<Item>>` — O(n)
//! resident memory before the first `observe`. The driver replaces both:
//!
//! * [`Workload`] + [`ItemSource`] — a streaming, seedable description of
//!   the input (synthetic generators, a CSV reader, or an in-memory vec
//!   adapter). Generators synthesize items on demand; nothing is
//!   materialized.
//! * a **bounded sharded dispatcher** — a thread that pulls items off the
//!   source, assigns each to a site via the scenario's
//!   [`Partition`], and pushes fixed-size frames into per-site bounded
//!   queues the engine's site threads consume. Peak buffered input is
//!   `shards × (queue + 1) × frame` items (see [`DispatcherStats`]),
//!   independent of stream length — O(batch × queue), not O(n).
//! * [`Scenario`] + [`run_scenario`] — the single entry point: protocol
//!   config, engine (lockstep | threads | tcp), topology (flat | tree),
//!   workload, seed and partition in one value; the result is a uniform
//!   [`RunReport`] (sample, per-tier metrics, invariant checks, wall
//!   clock, throughput, dispatcher stats, peak-RSS estimate) whatever the
//!   substrate.
//!
//! ```text
//!             ┌────────────┐   frames (≤ frame_items each)
//!   Workload ─► dispatcher ├──► shard 0 queue ─► site thread 0 ─┐
//!   (stream)  │  thread    ├──► shard 1 queue ─► site thread 1 ─┼─► engine
//!             │ Partition  ├──► …                               │
//!             └────────────┘      bounded: queue_frames each    ┘
//! ```
//!
//! The lockstep engine needs no dispatcher: the driver feeds the
//! simulator directly from the source in global arrival order, at O(1)
//! extra memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use dwrs_core::ctrl::{LiveQueryKind, LiveSnapshot};
use dwrs_core::framed::FrameCodec;
use dwrs_core::swor::{CoordStats, SworConfig};
use dwrs_core::{Item, Keyed};
use dwrs_sim::{CoordinatorNode, FanInTree, Metrics, Partition, Partitioner, Runner, SiteNode};
use dwrs_workloads::source::{
    lognormal_stream, pareto_stream, uniform_stream, unit_stream, zipf_stream, CsvSource,
    ItemSource,
};

use crate::adapters::EngineKind;
use crate::config::RuntimeConfig;
use crate::engine::{run_threads, RunOutput, RuntimeError};
use crate::epoll::{run_epoll, run_tree_epoll, Feed, ItemFeed};
use crate::query::{run_query_flat, run_query_tree, FlatOutcome, TreeOutcome};
use crate::tcp::run_tcp;
use crate::tree::{
    finish_lockstep_tree, run_tree_nodes, GroupStats, LockstepTree, SampleSource, TreeOutput,
    TreeTopology,
};

pub use crate::query::{Query, QueryAnswer};

// ----------------------------------------------------------- workloads

/// Declarative workload description — resolved into a streaming
/// [`ItemSource`] per run by [`Workload::source`].
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// `n` unit-weight items.
    Unit,
    /// Uniform weights in `[lo, hi)`.
    Uniform {
        /// Lower weight bound (exclusive of 0).
        lo: f64,
        /// Upper weight bound.
        hi: f64,
    },
    /// I.i.d. Zipf-by-rank weights `(n/r)^alpha` with each rank drawn
    /// uniformly at random (streaming, O(1) memory; see
    /// [`dwrs_workloads::zipf_stream`]). The CLI spells this `zipf_iid`.
    /// Same marginal weight distribution as [`Workload::ZipfRanked`], but
    /// ranks repeat — it is *not* the exact permutation.
    Zipf {
        /// Skew exponent.
        alpha: f64,
    },
    /// The exact Zipf rank permutation: every rank `1..=n` appears exactly
    /// once, shuffled (see [`dwrs_workloads::zipf_ranked`]). The CLI spells
    /// this `zipf`. The construction is global, so this variant
    /// **materializes** (O(n) memory) — `run` refuses it in streaming mode
    /// rather than silently switching distributions; pass
    /// `--materialize true` or use `zipf_iid` to stream.
    ZipfRanked {
        /// Skew exponent.
        alpha: f64,
    },
    /// I.i.d. Pareto(α) weights with scale `w_min`.
    Pareto {
        /// Tail exponent.
        alpha: f64,
        /// Scale (minimum weight).
        w_min: f64,
    },
    /// I.i.d. log-normal weights `exp(mu + sigma·Z)`.
    Lognormal {
        /// Location parameter.
        mu: f64,
        /// Shape parameter.
        sigma: f64,
    },
    /// The Theorem 4 residual-skew instance (`top` gigantic heads). The
    /// construction is global, so this variant materializes — use only at
    /// sizes where O(n) memory is acceptable.
    ResidualSkew {
        /// Number of gigantic head items.
        top: usize,
    },
    /// `id,weight` records streamed from a CSV file (the `dwrs workload`
    /// output format). `n` is ignored; the stream ends at EOF.
    Csv(
        /// Path to the CSV file.
        std::path::PathBuf,
    ),
    /// An in-memory stream — the vec-backed adapter (`n` is ignored).
    /// Useful for fixed test instances and for comparing materialized
    /// against streaming execution of the same input. The items are
    /// shared, not cloned: resolving the source per run costs O(1), so
    /// repeated runs (benches, trials) neither copy nor double the O(n)
    /// footprint. Build with [`Workload::items`].
    Items(std::sync::Arc<Vec<Item>>),
}

/// Iterates a shared in-memory workload by index — the allocation-free
/// source behind [`Workload::Items`].
#[derive(Debug)]
struct SharedItems {
    items: std::sync::Arc<Vec<Item>>,
    next: usize,
}

impl Iterator for SharedItems {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        let item = self.items.get(self.next).copied();
        self.next += 1;
        item
    }
}

impl Workload {
    /// Wraps an in-memory item vector as a shared workload (the
    /// [`Workload::Items`] adapter).
    pub fn items(items: Vec<Item>) -> Workload {
        Workload::Items(std::sync::Arc::new(items))
    }
    /// Parses a `kind[:params]` spec (the CLI `--workload` syntax):
    /// `unit`, `uniform:<lo>,<hi>`, `zipf:<alpha>` (exact rank permutation,
    /// materializes), `zipf_iid:<alpha>` (i.i.d. ranks, streams),
    /// `pareto:<alpha>`, `lognormal:<mu>,<sigma>`, `residual_skew:<top>`,
    /// `csv:<path>`.
    pub fn parse(spec: &str) -> Result<Workload, String> {
        let (name, params) = match spec.split_once(':') {
            Some((a, b)) => (a, b),
            None => (spec, ""),
        };
        if name == "csv" {
            if params.is_empty() {
                return Err("csv workload needs a path: csv:<path>".into());
            }
            return Ok(Workload::Csv(params.into()));
        }
        let nums: Vec<f64> = if params.is_empty() {
            Vec::new()
        } else {
            params
                .split(',')
                .map(|x| {
                    x.parse::<f64>()
                        .map_err(|_| format!("bad workload parameter '{x}'"))
                })
                .collect::<Result<_, _>>()?
        };
        let get = |i: usize, default: f64| nums.get(i).copied().unwrap_or(default);
        Ok(match name {
            "unit" => Workload::Unit,
            "uniform" => Workload::Uniform {
                lo: get(0, 1.0),
                hi: get(1, 10.0),
            },
            "zipf" => Workload::ZipfRanked { alpha: get(0, 1.2) },
            "zipf_iid" => Workload::Zipf { alpha: get(0, 1.2) },
            "pareto" => Workload::Pareto {
                alpha: get(0, 1.2),
                w_min: 1.0,
            },
            "lognormal" => Workload::Lognormal {
                mu: get(0, 1.0),
                sigma: get(1, 1.0),
            },
            "residual_skew" => Workload::ResidualSkew {
                top: get(0, 4.0).max(1.0) as usize,
            },
            other => return Err(format!("unknown workload kind '{other}'")),
        })
    }

    /// Validates the distribution parameters, returning a human-readable
    /// complaint instead of letting a generator assert mid-run (degenerate
    /// shapes like `uniform:5,2`, `zipf:-1` or `lognormal:0,nan` are
    /// rejected here, before any thread is spawned).
    pub fn validate(&self) -> Result<(), String> {
        let finite = |name: &str, x: f64| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(format!("workload parameter {name} = {x} must be finite"))
            }
        };
        match *self {
            Workload::Unit | Workload::Csv(_) | Workload::Items(_) => Ok(()),
            Workload::Uniform { lo, hi } => {
                finite("lo", lo)?;
                finite("hi", hi)?;
                if lo > 0.0 && hi > lo {
                    Ok(())
                } else {
                    Err(format!("uniform workload needs 0 < lo < hi, got {lo},{hi}"))
                }
            }
            Workload::Zipf { alpha } | Workload::ZipfRanked { alpha } => {
                finite("alpha", alpha)?;
                if alpha > 0.0 {
                    Ok(())
                } else {
                    Err(format!("zipf alpha must be positive, got {alpha}"))
                }
            }
            Workload::Pareto { alpha, w_min } => {
                finite("alpha", alpha)?;
                finite("w_min", w_min)?;
                if alpha > 0.0 && w_min > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "pareto workload needs alpha > 0 and w_min > 0, got {alpha},{w_min}"
                    ))
                }
            }
            Workload::Lognormal { mu, sigma } => {
                finite("mu", mu)?;
                finite("sigma", sigma)?;
                if sigma >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("lognormal sigma must be >= 0, got {sigma}"))
                }
            }
            Workload::ResidualSkew { top } => {
                if top >= 1 {
                    Ok(())
                } else {
                    Err("residual_skew needs at least one head item".into())
                }
            }
        }
    }

    /// Whether resolving this workload occupies O(n) memory (a global
    /// construction or an in-memory vec) rather than streaming at O(1).
    pub fn materializes(&self) -> bool {
        matches!(
            self,
            Workload::ZipfRanked { .. } | Workload::ResidualSkew { .. } | Workload::Items(_)
        )
    }

    /// Resolves the description into a streaming source of (up to) `n`
    /// items. Only the [`Workload::materializes`] variants occupy O(n)
    /// memory; every other variant is O(1). Invalid distribution
    /// parameters surface as `InvalidInput` errors rather than panics.
    pub fn source(&self, n: u64, seed: u64) -> std::io::Result<Box<dyn ItemSource>> {
        self.validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        Ok(match self {
            Workload::Unit => Box::new(unit_stream(n)),
            Workload::Uniform { lo, hi } => Box::new(uniform_stream(n, *lo, *hi, seed)),
            Workload::Zipf { alpha } => Box::new(zipf_stream(n, *alpha, seed)),
            Workload::ZipfRanked { alpha } => {
                Box::new(dwrs_workloads::zipf_ranked(n as usize, *alpha, seed).into_iter())
            }
            Workload::Pareto { alpha, w_min } => Box::new(pareto_stream(n, *alpha, *w_min, seed)),
            Workload::Lognormal { mu, sigma } => Box::new(lognormal_stream(n, *mu, *sigma, seed)),
            Workload::ResidualSkew { top } => {
                Box::new(dwrs_workloads::residual_skew(n as usize, *top, seed).into_iter())
            }
            Workload::Csv(path) => Box::new(CsvSource::open(path)?),
            Workload::Items(items) => Box::new(SharedItems {
                items: std::sync::Arc::clone(items),
                next: 0,
            }),
        })
    }
}

// ------------------------------------------------------------ scenario

/// Coordinator topology of a deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// `k` sites against one coordinator.
    Flat,
    /// `groups` aggregators of `k / groups` sites each, syncing keyed
    /// samples to a root merger every `sync_every` items.
    Tree {
        /// Number of groups (must divide the scenario's `k`).
        groups: usize,
        /// Aggregator→root sync period, in items per group.
        sync_every: u64,
    },
}

/// A complete, declarative description of one run: protocol, engine,
/// topology, workload, seed and partition. Build with [`Scenario::new`]
/// plus the `with_*` builders; execute with [`run_scenario`].
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Execution substrate.
    pub engine: EngineKind,
    /// Coordinator topology.
    pub topology: Topology,
    /// Total number of sites `k` (split across groups for trees).
    pub k: usize,
    /// Sample size `s`.
    pub s: usize,
    /// Stream length for synthetic workloads (CSV / in-memory sources set
    /// their own length).
    pub n: u64,
    /// Master seed; workload, partition, sites and coordinator all derive
    /// their independent streams from it.
    pub seed: u64,
    /// The input stream description.
    pub workload: Workload,
    /// How the globally ordered stream is split across sites.
    pub partition: Partition,
    /// Engine tuning (batching, queue bounds).
    pub runtime: RuntimeConfig,
    /// The paper's level-set mechanism (on by default). Disabling it makes
    /// every key site-drawn, which in turn makes the final sample a
    /// deterministic function of the scenario seed — identical across
    /// engines (the determinism property tests rely on this).
    pub level_sets: bool,
    /// Which application protocol the deployment runs (SWOR by default);
    /// see [`Query`].
    pub query: Query,
}

impl Scenario {
    /// A flat `k`-site scenario with sample size `s` and defaults
    /// mirroring the CLI (`n` = 1M, seed 42, `zipf:1.1`, round-robin).
    pub fn new(engine: EngineKind, k: usize, s: usize) -> Self {
        Self {
            engine,
            topology: Topology::Flat,
            k,
            s,
            n: 1_000_000,
            seed: 42,
            workload: Workload::Zipf { alpha: 1.1 },
            partition: Partition::RoundRobin,
            runtime: RuntimeConfig::default(),
            level_sets: true,
            query: Query::Swor,
        }
    }

    /// Sets the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the synthetic stream length.
    pub fn with_n(mut self, n: u64) -> Self {
        self.n = n;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the workload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the partition strategy.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the engine tuning knobs.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Enables or disables the level-set mechanism.
    pub fn with_level_sets(mut self, enabled: bool) -> Self {
        self.level_sets = enabled;
        self
    }

    /// Sets the application query the deployment runs.
    pub fn with_query(mut self, query: Query) -> Self {
        self.query = query;
        self
    }

    /// The seeded workload source this scenario reads (the derivation the
    /// CLI's distributed `serve`/`feed` halves share, so every process of
    /// a deployment reconstructs the identical global stream).
    pub fn source(&self) -> std::io::Result<Box<dyn ItemSource>> {
        self.workload.source(self.n, self.seed ^ 0xA5)
    }

    /// The seeded site assigner for this scenario's global stream (shared
    /// derivation; see [`Scenario::source`]).
    pub fn partitioner(&self) -> Partitioner {
        Partitioner::new(self.partition, self.k, self.seed ^ 0x17)
    }

    /// Validates shape parameters, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if self.s == 0 {
            return Err("sample size s must be at least 1".into());
        }
        self.workload.validate()?;
        self.query.validate()?;
        if let Topology::Tree { groups, sync_every } = self.topology {
            if groups == 0 {
                return Err("tree topology needs at least one group".into());
            }
            if sync_every == 0 {
                return Err("sync_every must be at least 1".into());
            }
            if !self.k.is_multiple_of(groups) {
                return Err(format!(
                    "groups {groups} must divide k {} (sites per group must be uniform)",
                    self.k
                ));
            }
        }
        Ok(())
    }

    /// The intra-deployment protocol configuration for a coordinator over
    /// `k` sites (the group size for trees, the full `k` for flat), with
    /// an explicit sample size (the query's effective `s`).
    pub(crate) fn swor_config_with(&self, s: usize, k: usize) -> SworConfig {
        let mut cfg = SworConfig::new(s, k);
        cfg.level_sets_enabled = self.level_sets;
        cfg
    }
}

// ---------------------------------------------------------- dispatcher

/// Items per dispatcher frame. Frames amortize the per-queue-operation
/// cost (one channel send wakes a site once per `FRAME_ITEMS` items) while
/// keeping each shard's resident window small: a frame is 64 KiB of items.
pub const FRAME_ITEMS: usize = 4096;

/// Per-shard dispatch queue bound, in frames. Deep enough to ride out
/// scheduling jitter between the feeder and a site thread, shallow enough
/// that the whole input-side window stays a few hundred KiB per shard —
/// the dispatcher's memory is `shards × (QUEUE_FRAMES + 2) × FRAME_ITEMS`
/// items whatever the stream length.
pub const QUEUE_FRAMES: usize = 4;

/// What the dispatcher measured while feeding a run — the evidence for the
/// bounded-memory invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DispatcherStats {
    /// Items pulled off the source and dispatched.
    pub items: u64,
    /// Total weight of the dispatched items (the exact `W` that query
    /// answers such as the L1 estimate are checked against).
    pub weight: f64,
    /// Frames shipped across all shards.
    pub frames: u64,
    /// Number of shard queues (`k`, or `g·k` for trees).
    pub shards: usize,
    /// Items per frame.
    pub frame_items: usize,
    /// Per-shard queue bound, in frames.
    pub queue_frames: usize,
    /// Largest number of frames resident in queues at any instant
    /// (tracked with relaxed atomics; at most [`Self::in_flight_bound`]).
    pub peak_in_flight_frames: u64,
    /// The engine dropped its receivers before the source was exhausted
    /// (it failed mid-run; the run's error reports why).
    pub receiver_gone: bool,
}

impl DispatcherStats {
    /// Upper bound on frames simultaneously buffered: `queue_frames` per
    /// shard plus one frame in flight per shard (accounting slack between
    /// a send completing and the counter update).
    pub fn in_flight_bound(&self) -> u64 {
        self.shards as u64 * (self.queue_frames as u64 + 1)
    }

    /// Upper bound on *items* resident in the dispatch pipeline: queued
    /// frames plus the partially filled frame per shard. This — not the
    /// stream length — is the driver's input-side memory footprint.
    pub fn buffered_items_bound(&self) -> u64 {
        (self.in_flight_bound() + self.shards as u64) * self.frame_items as u64
    }
}

/// The consuming end of one shard queue: a streaming per-site input the
/// engines drive their site loops from.
#[derive(Debug)]
pub struct ShardSource {
    rx: mpsc::Receiver<Vec<Item>>,
    cur: std::vec::IntoIter<Item>,
    in_flight: Arc<AtomicU64>,
    depth_gauge: Arc<dwrs_telemetry::Gauge>,
}

impl Iterator for ShardSource {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        loop {
            if let Some(item) = self.cur.next() {
                return Some(item);
            }
            match self.rx.recv() {
                Ok(frame) => {
                    // ordering: Relaxed — occupancy statistic; the channel
                    // recv already synchronized the frame handoff.
                    let now = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
                    self.depth_gauge.set(now as i64);
                    self.cur = frame.into_iter();
                }
                Err(mpsc::RecvError) => return None,
            }
        }
    }
}

/// The nonblocking view of the same shard queue, for the event-driven
/// engine: a site task must never park its event loop on the dispatcher
/// (the feeder may be waiting on queue slots that only drain when the
/// loop keeps servicing its *other* connections), so `poll` uses
/// `try_recv` and reports `Pending` instead of blocking.
impl ItemFeed for ShardSource {
    fn poll(&mut self) -> Feed {
        if self.cur.len() > 0 {
            return Feed::Frame(self.cur.by_ref().collect());
        }
        match self.rx.try_recv() {
            Ok(frame) => {
                // ordering: Relaxed — as in `next`: the queue synchronizes
                // the data, the counter is a metrics-only depth estimate.
                let now = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
                self.depth_gauge.set(now as i64);
                Feed::Frame(frame)
            }
            Err(mpsc::TryRecvError::Empty) => Feed::Pending,
            Err(mpsc::TryRecvError::Disconnected) => Feed::Done,
        }
    }
}

/// Feeding half of the dispatch pipeline: owns the source-side frame
/// buffers and the bounded senders.
struct Dispatcher {
    shards: Vec<(mpsc::SyncSender<Vec<Item>>, Vec<Item>)>,
    in_flight: Arc<AtomicU64>,
    stats: DispatcherStats,
    frames_counter: Arc<dwrs_telemetry::Counter>,
    depth_gauge: Arc<dwrs_telemetry::Gauge>,
}

impl Dispatcher {
    /// Builds `shards` bounded queues of [`QUEUE_FRAMES`] frames each,
    /// returning the feeder and the per-shard consuming ends.
    fn new(shards: usize) -> (Self, Vec<ShardSource>) {
        let queue_frames = QUEUE_FRAMES;
        let in_flight = Arc::new(AtomicU64::new(0));
        let (frames_counter, depth_gauge) = crate::obs::dispatch_handles();
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel(queue_frames.max(1));
            txs.push((tx, Vec::with_capacity(FRAME_ITEMS)));
            rxs.push(ShardSource {
                rx,
                cur: Vec::new().into_iter(),
                in_flight: Arc::clone(&in_flight),
                depth_gauge: Arc::clone(&depth_gauge),
            });
        }
        let stats = DispatcherStats {
            shards,
            frame_items: FRAME_ITEMS,
            queue_frames: queue_frames.max(1),
            ..DispatcherStats::default()
        };
        (
            Self {
                shards: txs,
                in_flight,
                stats,
                frames_counter,
                depth_gauge,
            },
            rxs,
        )
    }

    fn flush_shard(&mut self, shard: usize) {
        let (tx, buf) = &mut self.shards[shard];
        if buf.is_empty() {
            return;
        }
        let frame = std::mem::replace(buf, Vec::with_capacity(FRAME_ITEMS));
        // Count the frame *before* sending: the consumer can only decrement
        // after delivery, so the counter never underflows, and it
        // overcounts by at most the one frame this (single) feeder has in
        // flight — the slack `in_flight_bound` accounts for.
        // ordering: Relaxed — the bounded channel provides the handoff
        // ordering; this counter only feeds the depth gauge and peak stat.
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        if now > self.stats.peak_in_flight_frames {
            self.stats.peak_in_flight_frames = now;
        }
        self.depth_gauge.set(now as i64);
        // A send blocks when the shard queue is full — that bounded-queue
        // backpressure is exactly what caps resident memory.
        if tx.send(frame).is_err() {
            // ordering: Relaxed — undo of the optimistic count above; the
            // frame never entered the queue, no one observed it.
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.stats.receiver_gone = true;
            return;
        }
        self.stats.frames += 1;
        self.frames_counter.inc();
    }

    /// Drains the source into the shard queues until EOF or until every
    /// receiver is gone. Runs on its own thread, concurrent with the
    /// engine.
    fn run(mut self, source: Box<dyn ItemSource>, mut partitioner: Partitioner) -> DispatcherStats {
        for item in source {
            let shard = partitioner.next_site();
            self.stats.items += 1;
            self.stats.weight += item.weight;
            let (_, buf) = &mut self.shards[shard];
            buf.push(item);
            if buf.len() >= FRAME_ITEMS {
                self.flush_shard(shard);
                if self.stats.receiver_gone {
                    break;
                }
            }
        }
        for shard in 0..self.shards.len() {
            self.flush_shard(shard);
        }
        // Dropping the senders closes every shard queue: the engines' site
        // loops observe end-of-stream and begin the shutdown handshake.
        self.stats
    }
}

// ------------------------------------------------------------- report

/// Everything [`run_scenario`] hands back, uniform across engines and
/// topologies.
#[derive(Debug)]
pub struct RunReport {
    /// Substrate the run executed on.
    pub engine: EngineKind,
    /// Topology the run executed in.
    pub topology: Topology,
    /// The application query the run executed.
    pub query: Query,
    /// The query-specific answer (estimate, candidate set, …); the
    /// `sample` field is always the underlying keyed sample.
    pub answer: QueryAnswer,
    /// Total sites.
    pub k: usize,
    /// Effective sample size of the underlying protocol (the scenario's
    /// `s`, or the L1/residual-HH theorem-derived size).
    pub s: usize,
    /// Items actually streamed (synthetic workloads: the scenario's `n`;
    /// CSV / in-memory sources: their true length).
    pub items: u64,
    /// Exact total weight of the streamed items.
    pub total_weight: f64,
    /// Wall-clock time of the run (dispatch + protocol + shutdown; for
    /// streaming workloads, generation overlaps inside this window).
    pub elapsed: Duration,
    /// The final weighted sample — flat: the coordinator's; tree: the
    /// root's merged (exact at shutdown) sample.
    pub sample: Vec<Keyed>,
    /// Merged per-tier message/byte accounting (the paper's accounting
    /// exactly, as in every substrate).
    pub metrics: Metrics,
    /// Per-group cadence/staleness bookkeeping (tree runs; empty for
    /// flat).
    pub group_stats: Vec<GroupStats>,
    /// Root-side `(group, items_covered)` sync log (concurrent tree runs;
    /// empty otherwise).
    pub sync_log: Vec<(usize, u64)>,
    /// Dispatcher bookkeeping (`None` for lockstep runs, which stream
    /// directly without a dispatcher).
    pub dispatcher: Option<DispatcherStats>,
    /// Process peak-RSS *estimate* after the run (`VmHWM` from
    /// `/proc/self/status`; `None` where unavailable). An upper bound: the
    /// high-water mark is process-wide and monotone across runs.
    pub peak_rss_bytes: Option<u64>,
    /// Violated invariants (empty on a healthy run): sample size, the
    /// paper's exact per-kind byte decomposition, broadcast accounting,
    /// key-vs-threshold consistency, tree staleness bounds.
    pub violations: Vec<String>,
    /// The coordinator's final epoch (flat swor-family runs; `None` for
    /// tree runs, whose root holds merged samples rather than epochs).
    pub final_epoch: Option<i64>,
}

impl RunReport {
    /// Items per second over the whole run.
    pub fn items_per_s(&self) -> f64 {
        self.items as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Aggregator→root syncs across all groups (0 for flat runs).
    pub fn syncs(&self) -> u64 {
        self.group_stats.iter().map(|st| st.syncs).sum()
    }

    /// Whether every invariant check passed.
    pub fn invariants_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The report in the daemon's incremental-snapshot form: the
    /// [`LiveSnapshot`] a live query would have returned at the instant
    /// the run finished — items observed, epoch, and byte accounting at
    /// that instant — so batch runs and daemon streams serialize
    /// identically ([`LiveSnapshot::to_json`]).
    pub fn live_snapshot(&self) -> LiveSnapshot {
        use dwrs_apps::live;
        let ell = self.query.duplication().unwrap_or(1);
        let u = live::sth_largest_key(&self.sample, self.s);
        let weight: f64 = self.sample.iter().map(|kd| kd.item.weight).sum();
        let (kind, estimate) = match self.query {
            Query::L1 { .. } => (LiveQueryKind::L1Now, live::l1_estimate(self.s, ell, u)),
            Query::ResidualHh { .. } => (LiveQueryKind::RhhSoFar, weight),
            Query::SlidingWindow { .. } => (LiveQueryKind::WindowNow, weight),
            Query::Swor => (LiveQueryKind::CurrentSample, weight),
        };
        LiveSnapshot {
            kind,
            items: self.items,
            epoch: self.final_epoch,
            u,
            estimate,
            ell,
            sites_attached: 0,
            sites_eof: self.k as u32,
            up_msgs: self.metrics.up_total,
            down_msgs: self.metrics.down_total,
            up_bytes: self.metrics.up_bytes,
            down_bytes: self.metrics.down_bytes,
            broadcast_events: self.metrics.broadcast_events,
            sample: self.sample.clone(),
        }
    }
}

/// `VmHWM` (peak resident set) of this process, in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Per-query context for the invariant checks.
struct InvariantCtx<'a> {
    query: &'a Query,
    answer: &'a QueryAnswer,
    u: Option<f64>,
    /// Flat swor-family runs: the coordinator's final counters and epoch,
    /// for the unified down-path accounting check.
    coord_stats: Option<CoordStats>,
    final_epoch: Option<i64>,
}

/// Checks the run-level invariants shared by every substrate; returns the
/// violations (empty when healthy).
fn check_invariants(
    sample: &[Keyed],
    metrics: &Metrics,
    items: u64,
    s: usize,
    k_per_coordinator: usize,
    ctx: &InvariantCtx<'_>,
    tree: Option<(u64, &[GroupStats])>,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut expect = (s as u64).min(items);
    if let Query::SlidingWindow { window } = ctx.query {
        expect = expect.min(*window);
    }
    if let Some(ell) = ctx.query.duplication() {
        // L1 inserts up to ℓ keyed duplicates per item, and until the
        // sample fills nothing is filtered anywhere (every threshold is
        // still 0), so the sample holds min(s, items·ℓ) entries.
        expect = (s as u64).min(items.saturating_mul(ell));
    }
    if sample.len() as u64 != expect {
        violations.push(format!(
            "sample size {} != min(s, items·dups, window) = {expect}",
            sample.len()
        ));
    }
    let syncs = tree.map_or(0, |(_, stats)| stats.iter().map(|st| st.syncs).sum());
    let expect_up = 17 * metrics.kind("early")
        + 25 * metrics.kind("regular")
        + 25 * metrics.kind("window_cand")
        + 17 * syncs
        + 24 * metrics.kind("sync");
    if metrics.up_bytes != expect_up {
        violations.push(format!(
            "upstream bytes {} != exact frame decomposition {expect_up}",
            metrics.up_bytes
        ));
    }
    let expect_down = 5 * metrics.kind("level_saturated") + 9 * metrics.kind("update_epoch");
    if metrics.down_bytes != expect_down {
        violations.push(format!(
            "downstream bytes {} != exact frame decomposition {expect_down}",
            metrics.down_bytes
        ));
    }
    if metrics.down_total != metrics.broadcast_events * k_per_coordinator as u64 {
        violations.push(format!(
            "down_total {} != broadcast_events {} × k {k_per_coordinator}",
            metrics.down_total, metrics.broadcast_events
        ));
    }
    // Unified down-path accounting (flat swor-family runs): the broadcast
    // counts must be the deterministic function of the coordinator's final
    // state — one `level_saturated` per saturation, one `update_epoch` per
    // epoch in the span [first, final] — whatever the engine or delivery
    // timing (the 224-vs-232 metering-drift regression guard).
    if let Some(stats) = ctx.coord_stats {
        let k = k_per_coordinator as u64;
        if metrics.kind("level_saturated") != stats.saturations * k {
            violations.push(format!(
                "level_saturated count {} != saturations {} × k {k}",
                metrics.kind("level_saturated"),
                stats.saturations
            ));
        }
        if metrics.kind("update_epoch") != stats.epoch_broadcasts * k {
            violations.push(format!(
                "update_epoch count {} != epoch broadcasts {} × k {k}",
                metrics.kind("update_epoch"),
                stats.epoch_broadcasts
            ));
        }
        if let (Some(first), Some(last)) = (stats.first_epoch, ctx.final_epoch) {
            let span = (last - first + 1).max(0) as u64;
            if stats.epoch_broadcasts != span {
                violations.push(format!(
                    "epoch broadcasts {} != epoch span {span} (epochs {first}..={last})",
                    stats.epoch_broadcasts
                ));
            }
        }
    }
    if let Some(u) = ctx.u {
        if sample.iter().any(|kd| kd.key < u) {
            violations.push(format!("a sampled key fell below the threshold u = {u:e}"));
        }
    }
    match (ctx.query, ctx.answer) {
        (Query::SlidingWindow { window }, _) => {
            let cutoff = items.saturating_sub(*window);
            if let Some(stale) = sample.iter().find(|kd| kd.item.id < cutoff) {
                violations.push(format!(
                    "window sample contains expired item {} (cutoff {cutoff})",
                    stale.item.id
                ));
            }
        }
        // A loose accuracy guard: the theorem gives (1±ε) with prob. 1-δ;
        // 0.5 catches wiring bugs (wrong ℓ, wrong u) without flaking on
        // unlucky seeds.
        (
            Query::L1 { .. },
            QueryAnswer::L1 {
                estimate,
                true_weight,
                rel_error,
                ..
            },
        ) if items > 1_000 && *rel_error > 0.5 => {
            violations.push(format!(
                "L1 estimate {estimate:.3e} is off the exact weight \
                 {true_weight:.3e} by {rel_error:.2}"
            ));
        }
        _ => {}
    }
    if let Some((sync_every, stats)) = tree {
        let covered: u64 = stats.iter().map(|st| st.items).sum();
        if covered != items {
            violations.push(format!(
                "group watermarks cover {covered} items, stream had {items}"
            ));
        }
        for (gi, st) in stats.iter().enumerate() {
            if st.max_unsynced >= sync_every + st.max_frame_items.max(1) {
                violations.push(format!(
                    "group {gi}: staleness {} breaches bound {}",
                    st.max_unsynced,
                    sync_every + st.max_frame_items.max(1)
                ));
            }
        }
    }
    violations
}

// -------------------------------------------------------------- driver

/// Drains pre-sharded streams round-robin — one item per shard per round —
/// feeding each `(shard, item)` pair to `f`. The canonical interleaving
/// the legacy vec-based lockstep adapters use (any interleaving is a valid
/// adversarial arrival order in the paper's model).
pub fn interleave_shards<I>(shards: Vec<I>, mut f: impl FnMut(usize, Item))
where
    I: IntoIterator<Item = Item>,
{
    let mut iters: Vec<I::IntoIter> = shards.into_iter().map(IntoIterator::into_iter).collect();
    loop {
        let mut any = false;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(item) = it.next() {
                f(i, item);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
}

/// Executes a [`Scenario`] on its engine and topology, streaming the
/// workload at O(batch × queue) memory, and returns the uniform
/// [`RunReport`]. This is the single entry point every engine×topology
/// surface (CLI, benches, equivalence suites) routes through.
pub fn run_scenario(sc: &Scenario) -> Result<RunReport, RuntimeError> {
    sc.validate().map_err(RuntimeError::InvalidScenario)?;
    let source = sc
        .source()
        .map_err(|e| RuntimeError::InvalidScenario(format!("workload source: {e}")))?;
    match sc.topology {
        Topology::Flat => run_flat(sc, source),
        Topology::Tree { groups, sync_every } => run_tree(sc, source, groups, sync_every),
    }
}

/// What a generic engine drive hands back: items streamed, their total
/// weight, the protocol output, and dispatcher stats (concurrent engines
/// only).
pub(crate) type DriveResult<Out> = Result<(u64, f64, Out, Option<DispatcherStats>), RuntimeError>;

/// Drives a flat deployment of arbitrary protocol nodes on the scenario's
/// engine: the lockstep simulator consumes the stream directly (O(1)
/// extra memory, plus the end-of-stream [`SiteNode::finish`] pass); the
/// concurrent engines stream it through the bounded dispatcher.
pub(crate) fn drive_flat<S, C>(
    sc: &Scenario,
    source: Box<dyn ItemSource>,
    sites: Vec<S>,
    coordinator: C,
) -> DriveResult<RunOutput<S, C>>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Clone + Send + 'static,
    C: CoordinatorNode<Up = S::Up, Down = S::Down> + Send,
{
    match sc.engine {
        EngineKind::Lockstep => {
            let mut partitioner = sc.partitioner();
            let mut runner = Runner::new(coordinator, sites);
            let (mut items, mut weight) = (0u64, 0.0f64);
            for item in source {
                weight += item.weight;
                runner.step(partitioner.next_site(), item);
                items += 1;
            }
            runner.finish();
            let out = RunOutput {
                sites: runner.sites,
                coordinator: runner.coordinator,
                metrics: runner.metrics,
            };
            Ok((items, weight, out, None))
        }
        EngineKind::Threads | EngineKind::Tcp => {
            let (dispatcher, shards) = Dispatcher::new(sc.k);
            let partitioner = sc.partitioner();
            let feeder = thread::spawn(move || dispatcher.run(source, partitioner));
            let result = match sc.engine {
                EngineKind::Threads => run_threads(sites, coordinator, shards, &sc.runtime),
                _ => run_tcp(sites, coordinator, shards, &sc.runtime),
            };
            let dstats = join_feeder(feeder)?;
            let out = result?;
            Ok((dstats.items, dstats.weight, out, Some(dstats)))
        }
        EngineKind::Epoll => {
            // Same bounded dispatcher, but the shard queues feed the event
            // loops through their nonblocking [`ItemFeed`] face.
            let (dispatcher, shards) = Dispatcher::new(sc.k);
            let partitioner = sc.partitioner();
            let feeder = thread::spawn(move || dispatcher.run(source, partitioner));
            let feeds: Vec<Box<dyn ItemFeed>> = shards
                .into_iter()
                .map(|shard| Box::new(shard) as Box<dyn ItemFeed>)
                .collect();
            let result = run_epoll(sites, coordinator, feeds, &sc.runtime);
            let dstats = join_feeder(feeder)?;
            let out = result?;
            Ok((dstats.items, dstats.weight, out, Some(dstats)))
        }
    }
}

/// Drives a fan-in tree of arbitrary protocol nodes on the scenario's
/// engine. `swor_lockstep_cfg` selects the specialized [`FanInTree`] for
/// the lockstep arm (SWOR-family queries, byte-compatible with historical
/// runs); `None` uses the generic [`LockstepTree`] built from the same
/// factories the concurrent engines use.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_tree<S, A>(
    sc: &Scenario,
    source: Box<dyn ItemSource>,
    groups: usize,
    sync_every: u64,
    swor_lockstep_cfg: Option<&SworConfig>,
    mut mk_site: impl FnMut(usize, usize) -> S,
    mut mk_aggregator: impl FnMut(usize) -> A,
    s_eff: usize,
) -> DriveResult<TreeOutput>
where
    S: SiteNode + Send,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Clone + Send + 'static,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource + Send,
{
    let k_per_group = sc.k / groups;
    let topo = TreeTopology::new(groups, k_per_group, sync_every);
    match sc.engine {
        EngineKind::Lockstep => {
            // Direct feed, global arrival order: site `i` of the global
            // stream is site `i % k_per_group` of group `i / k_per_group`.
            let mut partitioner = sc.partitioner();
            let (mut items, mut weight) = (0u64, 0.0f64);
            let out = if let Some(cfg) = swor_lockstep_cfg {
                let mut tree = FanInTree::from_config(cfg.clone(), groups, sync_every, sc.seed);
                for item in source {
                    let site = partitioner.next_site();
                    weight += item.weight;
                    tree.observe(site / k_per_group, site % k_per_group, item);
                    items += 1;
                }
                finish_lockstep_tree(tree)
            } else {
                let runners = (0..groups)
                    .map(|gi| {
                        Runner::new(
                            mk_aggregator(gi),
                            (0..k_per_group).map(|i| mk_site(gi, i)).collect(),
                        )
                    })
                    .collect();
                let mut tree = LockstepTree::new(s_eff, sync_every, runners);
                for item in source {
                    let site = partitioner.next_site();
                    weight += item.weight;
                    tree.observe(site / k_per_group, site % k_per_group, item);
                    items += 1;
                }
                tree.finish()
            };
            Ok((items, weight, out, None))
        }
        EngineKind::Threads | EngineKind::Tcp => {
            let (dispatcher, shards) = Dispatcher::new(sc.k);
            let partitioner = sc.partitioner();
            let feeder = thread::spawn(move || dispatcher.run(source, partitioner));
            // Regroup the flat shard list into per-group blocks (shard
            // order is global site order, which is group-major).
            let mut it = shards.into_iter();
            let grouped: Vec<Vec<ShardSource>> = (0..groups)
                .map(|_| it.by_ref().take(k_per_group).collect())
                .collect();
            let result = run_tree_nodes(
                sc.engine,
                s_eff,
                &topo,
                mk_site,
                mk_aggregator,
                grouped,
                &sc.runtime,
            );
            let dstats = join_feeder(feeder)?;
            let out = result?;
            Ok((dstats.items, dstats.weight, out, Some(dstats)))
        }
        EngineKind::Epoll => {
            let (dispatcher, shards) = Dispatcher::new(sc.k);
            let partitioner = sc.partitioner();
            let feeder = thread::spawn(move || dispatcher.run(source, partitioner));
            // Group-major regroup as above, shard queues as nonblocking
            // feeds into the shared tree reactor.
            let mut it = shards.into_iter();
            let grouped: Vec<Vec<Box<dyn ItemFeed>>> = (0..groups)
                .map(|_| {
                    it.by_ref()
                        .take(k_per_group)
                        .map(|shard| Box::new(shard) as Box<dyn ItemFeed>)
                        .collect()
                })
                .collect();
            let result = run_tree_epoll(s_eff, &topo, mk_site, mk_aggregator, grouped, &sc.runtime);
            let dstats = join_feeder(feeder)?;
            let out = result?;
            Ok((dstats.items, dstats.weight, out, Some(dstats)))
        }
    }
}

fn run_flat(sc: &Scenario, source: Box<dyn ItemSource>) -> Result<RunReport, RuntimeError> {
    let FlatOutcome {
        items,
        weight,
        elapsed,
        sample,
        metrics,
        u,
        coord_stats,
        final_epoch,
        dispatcher,
        answer,
    } = run_query_flat(sc, source)?;
    let s_eff = sc.query.sample_size(sc.s);
    let ctx = InvariantCtx {
        query: &sc.query,
        answer: &answer,
        u,
        coord_stats,
        final_epoch,
    };
    let violations = check_invariants(&sample, &metrics, items, s_eff, sc.k, &ctx, None);
    Ok(RunReport {
        engine: sc.engine,
        topology: sc.topology,
        query: sc.query,
        answer,
        k: sc.k,
        s: s_eff,
        items,
        total_weight: weight,
        elapsed,
        sample,
        metrics,
        group_stats: Vec::new(),
        sync_log: Vec::new(),
        dispatcher,
        peak_rss_bytes: peak_rss_bytes(),
        violations,
        final_epoch,
    })
}

fn run_tree(
    sc: &Scenario,
    source: Box<dyn ItemSource>,
    groups: usize,
    sync_every: u64,
) -> Result<RunReport, RuntimeError> {
    let k_per_group = sc.k / groups;
    let TreeOutcome {
        items,
        weight,
        elapsed,
        out,
        dispatcher,
        answer,
    } = run_query_tree(sc, source, groups, sync_every)?;
    let s_eff = sc.query.sample_size(sc.s);
    let ctx = InvariantCtx {
        query: &sc.query,
        answer: &answer,
        u: None,
        coord_stats: None,
        final_epoch: None,
    };
    let violations = check_invariants(
        &out.root_sample,
        &out.metrics,
        items,
        s_eff,
        k_per_group,
        &ctx,
        Some((sync_every, &out.group_stats)),
    );
    Ok(RunReport {
        engine: sc.engine,
        topology: sc.topology,
        query: sc.query,
        answer,
        k: sc.k,
        s: s_eff,
        items,
        total_weight: weight,
        elapsed,
        sample: out.root_sample,
        metrics: out.metrics,
        group_stats: out.group_stats,
        sync_log: out.sync_log,
        dispatcher,
        peak_rss_bytes: peak_rss_bytes(),
        violations,
        final_epoch: None,
    })
}

/// Joins the dispatcher thread, converting a panicking source (e.g. a
/// malformed CSV record) into a run error instead of a silently truncated
/// stream.
fn join_feeder(
    feeder: thread::JoinHandle<DispatcherStats>,
) -> Result<DispatcherStats, RuntimeError> {
    feeder.join().map_err(|e| match e.downcast_ref::<String>() {
        Some(msg) => RuntimeError::Transport(format!("workload dispatcher failed: {msg}")),
        None => RuntimeError::Transport("workload dispatcher thread panicked".into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_bits(sample: &[Keyed]) -> Vec<(u64, u64)> {
        sample
            .iter()
            .map(|kd| (kd.item.id, kd.key.to_bits()))
            .collect()
    }

    #[test]
    fn workload_specs_parse() {
        assert_eq!(Workload::parse("unit").unwrap(), Workload::Unit);
        assert_eq!(
            Workload::parse("uniform:2,5").unwrap(),
            Workload::Uniform { lo: 2.0, hi: 5.0 }
        );
        assert_eq!(
            Workload::parse("zipf:1.3").unwrap(),
            Workload::ZipfRanked { alpha: 1.3 }
        );
        assert_eq!(
            Workload::parse("zipf_iid:1.3").unwrap(),
            Workload::Zipf { alpha: 1.3 }
        );
        assert!(Workload::parse("zipf_iid:1.3").unwrap().validate().is_ok());
        assert!(!Workload::parse("zipf_iid:1.3").unwrap().materializes());
        assert!(Workload::parse("zipf:1.3").unwrap().materializes());
        assert!(matches!(
            Workload::parse("csv:/tmp/x.csv").unwrap(),
            Workload::Csv(_)
        ));
        assert!(Workload::parse("nope").unwrap_err().contains("unknown"));
        assert!(Workload::parse("uniform:abc")
            .unwrap_err()
            .contains("bad workload parameter"));
        assert!(Workload::parse("csv").is_err());
    }

    #[test]
    fn degenerate_workload_params_are_typed_errors_not_panics() {
        // Generator asserts must never fire mid-run: validation rejects
        // the shapes up front, through both validate() and run_scenario().
        for bad in [
            Workload::Uniform { lo: 5.0, hi: 2.0 },
            Workload::Uniform { lo: 0.0, hi: 1.0 },
            Workload::Uniform {
                lo: 1.0,
                hi: f64::INFINITY,
            },
            Workload::Zipf { alpha: 0.0 },
            Workload::Zipf { alpha: -1.0 },
            Workload::ZipfRanked { alpha: f64::NAN },
            Workload::Pareto {
                alpha: -0.5,
                w_min: 1.0,
            },
            Workload::Pareto {
                alpha: 1.0,
                w_min: 0.0,
            },
            Workload::Lognormal {
                mu: 0.0,
                sigma: -1.0,
            },
            Workload::Lognormal {
                mu: f64::NAN,
                sigma: 1.0,
            },
            Workload::ResidualSkew { top: 0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
            assert!(bad.source(10, 1).is_err(), "{bad:?} source resolved");
            let sc = Scenario::new(EngineKind::Lockstep, 2, 4)
                .with_n(10)
                .with_workload(bad.clone());
            let err = run_scenario(&sc).unwrap_err();
            assert!(
                matches!(err, RuntimeError::InvalidScenario(_)),
                "{bad:?}: {err}"
            );
        }
        // n = 0 is a valid (empty) stream, not a panic.
        let sc = Scenario::new(EngineKind::Lockstep, 2, 4)
            .with_n(0)
            .with_workload(Workload::Zipf { alpha: 1.2 });
        let report = run_scenario(&sc).expect("empty stream runs");
        assert_eq!(report.items, 0);
        assert!(report.sample.is_empty());
    }

    #[test]
    fn zipf_ranked_workload_is_the_exact_permutation() {
        // The `zipf` spec resolves to the rank permutation: collected, its
        // weights are exactly the multiset {(n/r)^alpha : r = 1..=n}.
        let n = 64u64;
        let alpha = 1.2f64;
        let wl = Workload::parse("zipf:1.2").unwrap();
        let mut got: Vec<f64> = wl.source(n, 9).unwrap().map(|it| it.weight).collect();
        got.sort_by(f64::total_cmp);
        let mut want: Vec<f64> = (1..=n)
            .map(|r| (n as f64 / r as f64).powf(alpha).max(1.0))
            .collect();
        want.sort_by(f64::total_cmp);
        assert_eq!(got, want);
    }

    #[test]
    fn scenario_validation_catches_shape_errors() {
        let bad = Scenario::new(EngineKind::Threads, 0, 4);
        assert!(bad.validate().is_err());
        let bad = Scenario::new(EngineKind::Threads, 4, 0);
        assert!(bad.validate().is_err());
        let bad = Scenario::new(EngineKind::Threads, 8, 4).with_topology(Topology::Tree {
            groups: 3,
            sync_every: 100,
        });
        assert!(bad.validate().unwrap_err().contains("must divide"));
        let bad = Scenario::new(EngineKind::Threads, 8, 4).with_topology(Topology::Tree {
            groups: 2,
            sync_every: 0,
        });
        assert!(bad.validate().is_err());
        assert!(run_scenario(&bad).is_err());
    }

    #[test]
    fn flat_scenario_runs_on_every_engine() {
        for engine in [EngineKind::Lockstep, EngineKind::Threads, EngineKind::Tcp] {
            let sc = Scenario::new(engine, 4, 8)
                .with_n(20_000)
                .with_workload(Workload::Zipf { alpha: 1.2 });
            let report = run_scenario(&sc).expect("run");
            assert_eq!(report.items, 20_000, "engine {engine}");
            assert_eq!(report.sample.len(), 8, "engine {engine}");
            assert!(
                report.invariants_ok(),
                "engine {engine}: {:?}",
                report.violations
            );
            assert!(report.items_per_s() > 0.0);
            match engine {
                EngineKind::Lockstep => assert!(report.dispatcher.is_none()),
                _ => {
                    let d = report.dispatcher.expect("dispatcher stats");
                    assert_eq!(d.items, 20_000);
                    assert!(!d.receiver_gone);
                    assert!(d.peak_in_flight_frames <= d.in_flight_bound());
                }
            }
        }
    }

    #[test]
    fn tree_scenario_runs_on_every_engine() {
        for engine in [EngineKind::Lockstep, EngineKind::Threads, EngineKind::Tcp] {
            let sc = Scenario::new(engine, 4, 8)
                .with_n(20_000)
                .with_topology(Topology::Tree {
                    groups: 2,
                    sync_every: 1_000,
                });
            let report = run_scenario(&sc).expect("run");
            assert_eq!(report.sample.len(), 8, "engine {engine}");
            assert_eq!(report.group_stats.len(), 2, "engine {engine}");
            assert!(report.syncs() >= 2, "engine {engine}");
            assert!(
                report.invariants_ok(),
                "engine {engine}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn level_sets_off_makes_engines_bit_identical() {
        // With every key site-drawn, the sample is a deterministic
        // function of the scenario seed: lockstep and threads must agree
        // bit for bit (the cross-engine determinism the proptest suite
        // exercises at scale).
        let base = Scenario::new(EngineKind::Lockstep, 3, 6)
            .with_n(5_000)
            .with_workload(Workload::Uniform { lo: 1.0, hi: 9.0 })
            .with_level_sets(false)
            .with_seed(1234);
        let lockstep = run_scenario(&base).expect("lockstep");
        let mut threads_sc = base.clone();
        threads_sc.engine = EngineKind::Threads;
        let threads = run_scenario(&threads_sc).expect("threads");
        assert_eq!(key_bits(&lockstep.sample), key_bits(&threads.sample));
    }

    #[test]
    fn in_memory_workload_streams_through() {
        let items: Vec<Item> = (0..100u64)
            .map(|i| Item::new(i, 1.0 + (i % 7) as f64))
            .collect();
        let sc = Scenario::new(EngineKind::Threads, 2, 4)
            .with_workload(Workload::items(items))
            .with_n(0); // ignored by in-memory sources
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.items, 100);
        assert_eq!(report.sample.len(), 4);
    }

    #[test]
    fn dispatcher_bounds_are_small_and_respected() {
        let sc = Scenario::new(EngineKind::Threads, 4, 8)
            .with_n(300_000)
            .with_workload(Workload::Unit);
        let report = run_scenario(&sc).expect("run");
        let d = report.dispatcher.expect("stats");
        assert_eq!(d.items, 300_000);
        assert!(d.peak_in_flight_frames <= d.in_flight_bound());
        // The bounded window is a small constant fraction of the stream.
        assert!(
            d.buffered_items_bound() < 300_000,
            "buffer bound {} not < n",
            d.buffered_items_bound()
        );
    }

    #[test]
    fn csv_workload_errors_cleanly() {
        let sc = Scenario::new(EngineKind::Threads, 2, 4)
            .with_workload(Workload::Csv("/nonexistent/stream.csv".into()));
        let err = run_scenario(&sc).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidScenario(_)), "{err}");
    }

    #[test]
    fn every_query_runs_on_every_engine_and_topology() {
        for query in [
            Query::Swor,
            Query::L1 {
                eps: 0.25,
                delta: 0.25,
            },
            Query::ResidualHh {
                eps: 0.25,
                delta: 0.1,
            },
            Query::SlidingWindow { window: 5_000 },
        ] {
            for engine in [EngineKind::Lockstep, EngineKind::Threads, EngineKind::Tcp] {
                for topology in [
                    Topology::Flat,
                    Topology::Tree {
                        groups: 2,
                        sync_every: 2_000,
                    },
                ] {
                    let sc = Scenario::new(engine, 4, 16)
                        .with_n(20_000)
                        .with_workload(Workload::Zipf { alpha: 1.2 })
                        .with_topology(topology)
                        .with_query(query);
                    let report = run_scenario(&sc).unwrap_or_else(|e| {
                        panic!("{query:?} on {engine}/{topology:?} failed: {e}")
                    });
                    assert_eq!(report.items, 20_000, "{query:?} {engine} {topology:?}");
                    assert!(
                        report.invariants_ok(),
                        "{query:?} {engine} {topology:?}: {:?}",
                        report.violations
                    );
                    assert!(report.total_weight > 0.0);
                    match (&report.query, &report.answer) {
                        (Query::Swor, QueryAnswer::Swor) => {
                            assert_eq!(report.sample.len(), 16);
                        }
                        (Query::L1 { .. }, QueryAnswer::L1 { rel_error, .. }) => {
                            assert!(*rel_error < 0.5, "L1 rel error {rel_error}");
                        }
                        (
                            Query::ResidualHh { .. },
                            QueryAnswer::ResidualHh {
                                candidates, recall, ..
                            },
                        ) => {
                            assert!(!candidates.is_empty());
                            assert!(*recall >= 0.0);
                        }
                        (
                            Query::SlidingWindow { window },
                            QueryAnswer::SlidingWindow { window: w },
                        ) => {
                            assert_eq!(window, w);
                            let cutoff = 20_000u64 - window;
                            assert!(report.sample.iter().all(|kd| kd.item.id >= cutoff));
                            assert_eq!(report.sample.len(), 16);
                        }
                        other => panic!("mismatched query/answer: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn l1_query_with_stream_shorter_than_sample_size_is_healthy() {
        // Regression (review finding): L1 inserts ℓ keyed duplicates per
        // item, so the sample fills to min(s, items·ℓ) — a short stream
        // must not trip the one-key-per-item sample-size invariant.
        let sc = Scenario::new(EngineKind::Lockstep, 2, 4)
            .with_n(200)
            .with_workload(Workload::Unit)
            .with_query(Query::L1 {
                eps: 0.2,
                delta: 0.25,
            });
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.items, 200);
        assert!(report.items < report.s as u64, "test premise: n < s_eff");
        assert_eq!(report.sample.len(), report.s, "filled by duplicates");
        assert!(report.invariants_ok(), "{:?}", report.violations);
    }

    #[test]
    fn rhh_query_recovers_planted_hitters() {
        // The Theorem 4 instance: residual-skew stream, recall vs the
        // exact oracle must be 1.0 on the lockstep substrate.
        for engine in [EngineKind::Lockstep, EngineKind::Threads] {
            let sc = Scenario::new(engine, 4, 8)
                .with_n(30_000)
                .with_workload(Workload::ResidualSkew { top: 4 })
                .with_query(Query::ResidualHh {
                    eps: 0.2,
                    delta: 0.05,
                });
            let report = run_scenario(&sc).expect("run");
            match report.answer {
                QueryAnswer::ResidualHh {
                    required, recall, ..
                } => {
                    assert!(required > 0, "oracle found no required hitters");
                    assert!(
                        recall >= 0.99,
                        "engine {engine}: recall {recall} of {required} required"
                    );
                }
                other => panic!("wrong answer shape {other:?}"),
            }
        }
    }

    #[test]
    fn window_query_matches_min_of_window_and_stream() {
        // Window larger than the stream: the sample covers everything.
        let sc = Scenario::new(EngineKind::Threads, 2, 8)
            .with_n(1_000)
            .with_query(Query::SlidingWindow { window: 50_000 })
            .with_workload(Workload::Unit);
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.sample.len(), 8);
        assert!(report.invariants_ok(), "{:?}", report.violations);
        // Regression (review finding): s ≥ n ≤ window must sample every
        // item, including arrival index 0 — the saturating expiry cutoff
        // used to drop it.
        let sc = Scenario::new(EngineKind::Lockstep, 2, 64)
            .with_n(50)
            .with_query(Query::SlidingWindow { window: 100 })
            .with_workload(Workload::Unit);
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.sample.len(), 50, "{:?}", report.violations);
        assert!(report.invariants_ok(), "{:?}", report.violations);
        assert!(report.sample.iter().any(|kd| kd.item.id == 0));
        // Stream smaller than s: sample is the whole window.
        let sc = Scenario::new(EngineKind::Threads, 2, 64)
            .with_n(100)
            .with_query(Query::SlidingWindow { window: 10 })
            .with_workload(Workload::Unit);
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.sample.len(), 10, "window-limited sample");
        assert!(report.invariants_ok(), "{:?}", report.violations);
    }

    #[test]
    fn interleave_is_round_robin() {
        let shards = vec![vec![Item::unit(0), Item::unit(2)], vec![Item::unit(1)]];
        let mut seen = Vec::new();
        interleave_shards(shards, |shard, item| seen.push((shard, item.id)));
        assert_eq!(seen, vec![(0, 0), (1, 1), (0, 2)]);
    }
}
