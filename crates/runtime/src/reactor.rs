//! Readiness-driven I/O primitives for the event-driven engine.
//!
//! This module is the bottom layer of the `epoll` engine ([`crate::epoll`]):
//! a thin wrapper over the kernel's `epoll` facility plus the two buffer
//! types every registered connection carries. Nothing here knows about the
//! sampling protocols — it only moves bytes and frames:
//!
//! * `Poller` — registration/readiness abstraction over `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`, declared directly against the C ABI because
//!   the build environment is registry-less (no `libc` crate, no async
//!   runtime). The epoll descriptor is an [`OwnedFd`], so it closes on drop.
//! * `Waker` — cross-thread wakeup for a blocked `epoll_wait`, built on a
//!   [`UnixStream`] pair instead of `eventfd` to keep the FFI surface
//!   minimal.
//! * `RecvBuf` — partial-frame reassembly with `FramedReader` semantics:
//!   the same `[u32 len][payload]` framing, the same `MAX_FRAME_LEN` guard
//!   *before* buffering a payload, and mid-frame EOF detectable by the
//!   caller. A frame split at any byte boundary — including inside the
//!   4-byte length prefix — reassembles exactly.
//! * `SendBuf` — an append-only frame buffer flushed opportunistically on
//!   write readiness. The soft capacity is advisory: producers consult
//!   `SendBuf::over_cap` and stop generating (backpressure) rather than
//!   the buffer refusing writes, which preserves the engine invariant that
//!   down-path sends never block or fail.
//!
//! Also here: the `RLIMIT_NOFILE` helpers the engines and daemon call at
//! start-up so thousands of registered connections hit a raised soft limit
//! instead of `EMFILE` panics.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dwrs_core::framed::MAX_FRAME_LEN;

// ------------------------------------------------------------------ FFI

/// The slice of the C ABI the reactor needs, declared by hand: the build
/// environment has no registry access, so the `libc` crate is unavailable.
/// Constants and layouts are the Linux userspace ABI (stable by contract).
mod sys {
    /// `epoll_event.data` is a union in C; we only ever store the `u64`
    /// token. The kernel ABI packs the struct on x86-64 only (12 bytes);
    /// every other Linux arch uses natural alignment (16 bytes, 4 bytes of
    /// padding after `events`). Mirror that per-arch, and assert the size
    /// so a future arch with a third layout fails at compile time instead
    /// of letting `epoll_wait` scribble past the event array.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub token: u64,
    }

    const _: () = assert!(
        std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 },
        "EpollEvent layout does not match the kernel's struct epoll_event on this target"
    );

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or the peer half-closed: `EPOLLRDHUP`/`EPOLLHUP`
    /// are folded in, so the read path observes the EOF).
    pub readable: bool,
    /// The socket accepts writes again.
    pub writable: bool,
    /// The connection is dead (`EPOLLHUP`/`EPOLLERR`). These conditions are
    /// reported regardless of the interest mask, so a loop that has dropped
    /// read interest must still observe them and tear the connection down —
    /// level-triggered, they would otherwise re-fire every wait.
    pub hangup: bool,
}

/// Registration/readiness abstraction over an epoll instance.
///
/// Level-triggered (the epoll default): an event keeps firing while the
/// condition holds, so a loop that services *some* of a connection's bytes
/// per pass never loses the rest. Write interest is toggled on only while a
/// [`SendBuf`] holds unflushed bytes — level-triggered `EPOLLOUT` on an
/// idle socket would otherwise spin the loop.
#[derive(Debug)]
pub(crate) struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; the flags value is one
        // of the kernel-defined constants.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            // SAFETY: the syscall just returned `fd` (>= 0 checked above),
            // so it is a freshly opened descriptor this process owns and
            // nothing else will close; OwnedFd takes over that ownership.
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest_mask(readable, writable),
            token,
        };
        // SAFETY: `ev` is a live, properly initialized EpollEvent for the
        // duration of the call; the kernel only reads it during epoll_ctl.
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Replaces `fd`'s interest set.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Removes `fd` from the interest list.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: 0,
            token: 0,
        };
        // SAFETY: as in `ctl` — `ev` outlives the call. Pre-2.6.9 kernels
        // required a non-null event pointer even for DEL, so one is passed.
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks up to `timeout_ms` (`-1` = indefinitely) and appends ready
    /// events to `out`. Returns how many fired. `EINTR` reads as zero
    /// events rather than an error, so callers need no retry loop.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [sys::EpollEvent {
            events: 0,
            token: 0,
        }; MAX_EVENTS];
        // SAFETY: `raw` holds MAX_EVENTS initialized EpollEvents and
        // maxevents passes exactly that capacity, so the kernel writes
        // only within the array; the buffer outlives the call.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                MAX_EVENTS as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        for ev in &raw[..n as usize] {
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.token,
                // Error and hang-up conditions surface through the read
                // path (read() reports the EOF or error), so fold them in.
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR) != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(n as usize)
    }
}

fn interest_mask(readable: bool, writable: bool) -> u32 {
    let mut m = 0;
    if readable {
        // RDHUP only alongside read interest: once a loop stops reading
        // (site sent Eof, downs still flowing) a level-triggered RDHUP
        // would re-fire every wait until the write side closes too.
        m |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if writable {
        m |= sys::EPOLLOUT;
    }
    m
}

// ----------------------------------------------------------------- waker

/// Token reserved for the wake channel in every reactor loop.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a nonblocking
/// byte written into a socketpair the poller watches. Coalescing is
/// deliberate — once `pending` is set, further wakes are no-ops until the
/// loop drains, so broadcast storms cost one byte, not one per message.
#[derive(Debug)]
pub(crate) struct Waker {
    tx: UnixStream,
    pending: AtomicBool,
}

impl Waker {
    /// Makes the poller's next (or current) `wait` return promptly.
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return;
        }
        // A full pipe already guarantees a pending wakeup; ignore errors.
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The receive side a reactor loop registers under [`WAKE_TOKEN`].
#[derive(Debug)]
pub(crate) struct WakeRx {
    rx: UnixStream,
    waker: Arc<Waker>,
}

impl WakeRx {
    /// The fd to register for read interest.
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes all queued wake bytes and re-arms the coalescing flag.
    ///
    /// Ordering matters: the pipe is emptied *before* `pending` clears.
    /// A `wake()` racing this call either lands its byte before the read
    /// loop finishes — and its flag is cleared with the byte consumed, so
    /// the next wake re-fires — or lands after, leaving a byte in the
    /// pipe with `pending` false, which costs one spurious poll wakeup.
    /// Clearing `pending` first instead would let the read loop consume a
    /// racing wake's byte while its flag stayed set, permanently disarming
    /// the waker (every later `wake()` no-ops against an empty pipe).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
        self.waker.pending.store(false, Ordering::Release);
    }
}

/// Builds a connected waker pair (both ends nonblocking).
pub(crate) fn wake_pair() -> io::Result<(Arc<Waker>, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let waker = Arc::new(Waker {
        tx,
        pending: AtomicBool::new(false),
    });
    Ok((Arc::clone(&waker), WakeRx { rx, waker }))
}

// --------------------------------------------------------------- RecvBuf

/// Read size per [`RecvBuf::fill_from`] call: big enough to drain a full
/// kernel socket buffer in a few syscalls, small enough to keep per-
/// connection transient memory modest at thousands of connections.
const READ_CHUNK: usize = 16 * 1024;

/// Partial-frame reassembly buffer with [`FramedReader`]-equivalent
/// semantics (`[u32 LE len][payload]`, `MAX_FRAME_LEN` enforced before the
/// payload is buffered).
///
/// [`FramedReader`]: dwrs_core::framed::FramedReader
#[derive(Debug, Default)]
pub(crate) struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
}

impl RecvBuf {
    pub fn new() -> RecvBuf {
        RecvBuf::default()
    }

    /// Performs one `read` into the buffer. Returns the byte count (0 =
    /// peer EOF); `WouldBlock` and other errors pass through untouched.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Pops the next complete frame payload, or `None` if the buffered
    /// bytes end mid-frame (including mid-length-prefix). A length prefix
    /// over `MAX_FRAME_LEN` is `InvalidData`, checked before any payload
    /// accumulates — the same guard `FramedReader::read_blob` applies.
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes checked");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
            ));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let at = self.start + 4;
        self.start = at + len;
        Ok(Some(&self.buf[at..at + len]))
    }

    /// True when buffered bytes end inside a frame — a peer EOF now is a
    /// protocol violation (`FramedReader` reports `UnexpectedEof`).
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Reclaims consumed space. Cheap amortized: only copies when the
    /// consumed prefix dominates the buffer.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > READ_CHUNK {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

// --------------------------------------------------------------- SendBuf

/// Append-only frame buffer flushed on write readiness.
///
/// The capacity is a *soft* bound consulted by producers ([`SendBuf::
/// over_cap`]) — the up path stops pulling input while its buffer is over
/// cap (backpressure into the bounded dispatcher queues), and the down
/// path is allowed to run over (the coordinator must never block sending
/// down; sites drain eagerly, so the excess is transient).
#[derive(Debug)]
pub(crate) struct SendBuf {
    buf: Vec<u8>,
    start: usize,
    cap: usize,
}

impl SendBuf {
    /// A buffer whose producers throttle at `cap` pending bytes.
    pub fn with_cap(cap: usize) -> SendBuf {
        SendBuf {
            buf: Vec::new(),
            start: 0,
            cap: cap.max(1),
        }
    }

    /// Appends one `[u32 len][payload]` frame built by `fill`, enforcing
    /// the shared `MAX_FRAME_LEN` cap (same check as `FramedWriter`).
    pub fn frame_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        fill(&mut self.buf);
        let len = self.buf.len() - at - 4;
        if len > MAX_FRAME_LEN as usize {
            self.buf.truncate(at);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
            ));
        }
        self.buf[at..at + 4].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }

    /// Discards everything buffered (dead-connection teardown: the bytes
    /// have no destination anymore).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Unflushed bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// True once pending bytes reach the soft cap — producers should stop
    /// generating until a flush drains below it.
    pub fn over_cap(&self) -> bool {
        self.pending() >= self.cap
    }

    /// Writes as much as the socket accepts. `WouldBlock` is not an error
    /// — the remainder stays buffered for the next write-readiness event.
    /// Returns the bytes written this call.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut written = 0usize;
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > self.cap {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(written)
    }
}

// ---------------------------------------------------------------- rlimit

/// Raises the `RLIMIT_NOFILE` soft limit to the hard limit and returns the
/// resulting soft limit. Called at daemon and engine start so thousands of
/// registered connections do not trip the conservative default (often
/// 1024). Idempotent; a failed raise still returns the current limit.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live repr(C) Rlimit matching the kernel's struct
    // rlimit; getrlimit writes both fields and reads nothing else.
    let rc = unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = sys::Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` is fully initialized and only read by the kernel.
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } == 0 {
            lim.cur = lim.max;
        }
    }
    Ok(lim.cur)
}

/// The current `RLIMIT_NOFILE` soft limit, for diagnostics (0 if even the
/// query fails).
pub(crate) fn current_nofile_limit() -> u64 {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    // SAFETY: same contract as in `raise_nofile_limit` — `lim` is a live,
    // correctly laid out out-parameter for the syscall.
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } < 0 {
        return 0;
    }
    lim.cur
}

/// True when `e` is the process (`EMFILE`) or system (`ENFILE`) descriptor
/// table running out — the condition
/// [`RuntimeError::FdExhausted`](crate::RuntimeError::FdExhausted) types.
pub(crate) fn is_fd_exhausted(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields at most one byte per `read` call — the most
    /// hostile split pattern a TCP stream can legally produce.
    struct OneByte<R: Read>(R);
    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn reassembles_frames_from_one_byte_reads() {
        // Three frames — tiny, single-byte, and multi-hundred-byte — split
        // at every byte boundary, including inside each length prefix.
        let payloads: Vec<Vec<u8>> = vec![
            b"hello".to_vec(),
            vec![0x12],
            (0..300u32).map(|i| i as u8).collect(),
        ];
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }
        let mut src = OneByte(Cursor::new(wire));
        let mut rb = RecvBuf::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        loop {
            let n = rb.fill_from(&mut src).unwrap();
            while let Some(p) = rb.next_frame().unwrap() {
                got.push(p.to_vec());
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(got, payloads);
        assert!(!rb.mid_frame(), "stream ended at a frame boundary");
    }

    #[test]
    fn eof_mid_frame_is_detectable() {
        let mut wire = frame(b"complete");
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(b"truncated");
        let mut src = Cursor::new(wire);
        let mut rb = RecvBuf::new();
        while rb.fill_from(&mut src).unwrap() > 0 {}
        assert_eq!(rb.next_frame().unwrap(), Some(&b"complete"[..]));
        assert_eq!(rb.next_frame().unwrap(), None);
        assert!(rb.mid_frame(), "truncated frame must be observable");
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data_before_buffering() {
        let mut rb = RecvBuf::new();
        let mut src = Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        while rb.fill_from(&mut src).unwrap() > 0 {}
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn send_buf_frames_and_respects_frame_cap() {
        let mut sb = SendBuf::with_cap(1024);
        sb.frame_with(|b| b.extend_from_slice(b"abc")).unwrap();
        let err = sb
            .frame_with(|b| {
                let payload_at = b.len();
                b.resize(payload_at + MAX_FRAME_LEN as usize + 1, 0);
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The failed frame is rolled back; the good one is intact.
        let mut out = Vec::new();
        sb.flush_to(&mut out).unwrap();
        assert_eq!(out, frame(b"abc"));
        assert!(sb.is_empty());
    }

    #[test]
    fn send_buf_backpressure_rides_would_block_then_drains() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut sb = SendBuf::with_cap(8 * 1024);
        // Queue far more than a socketpair buffer holds.
        for _ in 0..64 {
            sb.frame_with(|buf| {
                let payload_at = buf.len();
                buf.resize(payload_at + 16 * 1024, 0x5A);
            })
            .unwrap();
        }
        assert!(sb.over_cap());
        let total = sb.pending();
        // First flush stops at WouldBlock with bytes still pending.
        sb.flush_to(&mut a).unwrap();
        assert!(!sb.is_empty(), "socketpair cannot hold {total} bytes");
        // Drain the peer until everything passes through.
        let mut received = 0usize;
        let mut chunk = vec![0u8; 32 * 1024];
        while received < total {
            received += b.read(&mut chunk).unwrap();
            sb.flush_to(&mut a).unwrap();
        }
        assert!(sb.is_empty());
        assert_eq!(received, total);
    }

    #[test]
    fn poller_reports_readiness_by_token() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "idle socket");
        a.write_all(b"x").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_unblocks_wait_and_coalesces() {
        let poller = Poller::new().unwrap();
        let (waker, mut wake_rx) = wake_pair().unwrap();
        poller
            .register(wake_rx.raw_fd(), WAKE_TOKEN, true, false)
            .unwrap();
        // Many wakes, one byte: the coalescing flag short-circuits.
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN && e.readable));
        wake_rx.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "drained");
        // Re-armed after drain: the next wake fires again.
        waker.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
    }

    #[test]
    fn waker_survives_concurrent_wake_drain_races() {
        // Regression: drain() once cleared `pending` before emptying the
        // pipe, so a wake racing the read loop could have its byte consumed
        // while the flag stayed set — permanently disarming the waker. A
        // hammered wake/drain interleaving must always leave the waker able
        // to fire again.
        let poller = Poller::new().unwrap();
        let (waker, mut wake_rx) = wake_pair().unwrap();
        poller
            .register(wake_rx.raw_fd(), WAKE_TOKEN, true, false)
            .unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    waker.wake();
                    std::hint::spin_loop();
                }
            });
            let mut events = Vec::new();
            for _ in 0..50_000 {
                events.clear();
                let _ = poller.wait(&mut events, 0);
                wake_rx.drain();
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Quiesce: no concurrent wakers left, so one drain empties the pipe
        // and re-arms the flag.
        wake_rx.drain();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "fully drained");
        // The waker must still be armed: a fresh wake unblocks the poller.
        waker.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert!(
            events.iter().any(|e| e.token == WAKE_TOKEN && e.readable),
            "wake after racing drains must still fire"
        );
    }

    #[test]
    fn nofile_limit_raises_soft_to_hard() {
        let raised = raise_nofile_limit().unwrap();
        assert!(raised > 0);
        // Idempotent: a second call reports the same limit.
        assert_eq!(raise_nofile_limit().unwrap(), raised);
        assert_eq!(current_nofile_limit(), raised);
    }

    #[test]
    fn fd_exhaustion_is_typed_on_errno() {
        assert!(is_fd_exhausted(&io::Error::from_raw_os_error(24)));
        assert!(is_fd_exhausted(&io::Error::from_raw_os_error(23)));
        assert!(!is_fd_exhausted(&io::Error::from_raw_os_error(111)));
    }
}
