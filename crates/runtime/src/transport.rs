//! The pluggable transport abstraction.
//!
//! A deployment is `k` site endpoints plus one coordinator endpoint. Only
//! the *sending* halves differ between transports (an in-process channel
//! sender vs. a framed socket writer), so those are trait objects; the
//! receiving halves are always `std::sync::mpsc` receivers — the TCP
//! transport bridges sockets onto channels with dedicated reader threads.
//!
//! Queue discipline (the deadlock-freedom invariant, see `crate::engine`):
//! the site→coordinator path is **bounded** (blocking `send` = backpressure)
//! while the coordinator→site path is **unbounded** and eagerly drained.

use std::sync::mpsc;

/// One site→coordinator transport frame.
#[derive(Clone, Debug, PartialEq)]
pub enum UpFrame<U> {
    /// A batch of upstream protocol messages, in site order.
    Batch {
        /// The protocol messages, in the order the site produced them.
        msgs: Vec<U>,
        /// Stream items the site observed since its previous frame. The
        /// protocols are message-sublinear, so this generally exceeds
        /// `msgs.len()`; hierarchical aggregators use it as the sync
        /// cadence watermark (flat coordinators may ignore it).
        items: u64,
    },
    /// The site has exhausted its stream; no further frames follow.
    Eof,
    /// A transport-level failure observed on this link (decode error,
    /// broken connection). Terminates the link like `Eof`, but the run
    /// reports it.
    Fault(String),
}

/// Transport failure surfaced to the engine.
#[derive(Debug)]
pub enum TransportError {
    /// The peer endpoint is gone (channel disconnected / socket closed).
    Closed,
    /// An I/O error on a socket-backed transport.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer endpoint closed"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Site-side sending half of the up path. `send` blocks when the bounded
/// queue is full — that is the backpressure mechanism.
pub trait BatchSender<U>: Send {
    /// Ships one frame; blocks under backpressure.
    fn send(&mut self, frame: UpFrame<U>) -> Result<(), TransportError>;

    /// Ships the accumulated batch, draining `batch` in place.
    ///
    /// The default moves the messages out (a channel transport must hand
    /// ownership across threads, so the vector's allocation travels with
    /// them); encoding transports override this to serialize straight from
    /// the borrowed batch and `clear()` it, keeping the caller's allocation
    /// alive across flushes — the allocation-free hot path.
    fn send_batch(&mut self, batch: &mut Vec<U>, items: u64) -> Result<(), TransportError> {
        let msgs = std::mem::take(batch);
        self.send(UpFrame::Batch { msgs, items })
    }

    /// Advisory: the sender will flush batches of up to `batch_max`
    /// messages. Encoding transports pre-size their frame scratch from it.
    fn reserve_hint(&mut self, _batch_max: usize) {}

    /// Severs the link immediately, discarding anything unflushed — the
    /// crash path. Socket transports tear the connection down in *both*
    /// directions (no flush, no close handshake) so the peer observes the
    /// death promptly; the default falls back to a clean `close`.
    fn abort(&mut self) {
        self.close();
    }

    /// Signals that no more frames follow (flush + half-close for sockets).
    fn close(&mut self) {}
}

/// Coordinator-side sending half of one site's down path. Must never block
/// indefinitely (unbounded channel / eagerly drained socket).
pub trait DownSender<D>: Send {
    /// Ships one downstream message. A closed link is not an error: the
    /// site may legitimately have finished and gone away.
    fn send(&mut self, msg: &D) -> Result<(), TransportError>;
    /// Half-closes the link so the site's drain loop terminates.
    fn close(&mut self) {}
}

/// A fully wired deployment: one endpoint per site plus the coordinator's.
pub type Wiring<U, D> = (Vec<SiteEndpoint<U, D>>, CoordEndpoint<U, D>);

/// A site's two half-links.
pub struct SiteEndpoint<U, D> {
    /// Site index in `0..k`.
    pub id: usize,
    pub(crate) up: Box<dyn BatchSender<U>>,
    pub(crate) down: mpsc::Receiver<D>,
}

impl<U, D> SiteEndpoint<U, D> {
    /// Assembles an endpoint from its halves.
    pub fn new(id: usize, up: Box<dyn BatchSender<U>>, down: mpsc::Receiver<D>) -> Self {
        Self { id, up, down }
    }
}

impl<U, D> std::fmt::Debug for SiteEndpoint<U, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SiteEndpoint(id {})", self.id)
    }
}

/// The coordinator's merged inbound queue plus one down link per site.
pub struct CoordEndpoint<U, D> {
    pub(crate) up: mpsc::Receiver<(usize, UpFrame<U>)>,
    pub(crate) downs: Vec<Box<dyn DownSender<D>>>,
}

impl<U, D> CoordEndpoint<U, D> {
    /// Assembles an endpoint from its halves.
    pub fn new(
        up: mpsc::Receiver<(usize, UpFrame<U>)>,
        downs: Vec<Box<dyn DownSender<D>>>,
    ) -> Self {
        Self { up, downs }
    }

    /// Number of connected sites.
    pub fn num_sites(&self) -> usize {
        self.downs.len()
    }
}

impl<U, D> std::fmt::Debug for CoordEndpoint<U, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoordEndpoint({} sites)", self.downs.len())
    }
}

// ------------------------------------------------------- channel transport

/// Up sender over a shared bounded channel.
struct ChannelBatchSender<U> {
    site: usize,
    tx: mpsc::SyncSender<(usize, UpFrame<U>)>,
}

impl<U: Send> BatchSender<U> for ChannelBatchSender<U> {
    fn send(&mut self, frame: UpFrame<U>) -> Result<(), TransportError> {
        self.tx
            .send((self.site, frame))
            .map_err(|_| TransportError::Closed)
    }
}

impl<U> std::fmt::Debug for ChannelBatchSender<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelBatchSender(site {})", self.site)
    }
}

/// Down sender over a per-site unbounded channel.
struct ChannelDownSender<D> {
    tx: Option<mpsc::Sender<D>>,
}

impl<D: Clone + Send> DownSender<D> for ChannelDownSender<D> {
    fn send(&mut self, msg: &D) -> Result<(), TransportError> {
        match &self.tx {
            Some(tx) => tx.send(msg.clone()).map_err(|_| TransportError::Closed),
            None => Err(TransportError::Closed),
        }
    }
    fn close(&mut self) {
        self.tx = None;
    }
}

impl<D> std::fmt::Debug for ChannelDownSender<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelDownSender")
    }
}

/// Builds a fully in-process deployment: one bounded up channel shared by
/// all sites, one unbounded down channel per site.
pub fn channel_wiring<U, D>(
    k: usize,
    queue_capacity: usize,
) -> (Vec<SiteEndpoint<U, D>>, CoordEndpoint<U, D>)
where
    U: Send + 'static,
    D: Clone + Send + 'static,
{
    assert!(k >= 1, "need at least one site");
    let (up_tx, up_rx) = mpsc::sync_channel(queue_capacity.max(1));
    let mut sites = Vec::with_capacity(k);
    let mut downs: Vec<Box<dyn DownSender<D>>> = Vec::with_capacity(k);
    for id in 0..k {
        let (down_tx, down_rx) = mpsc::channel();
        sites.push(SiteEndpoint::new(
            id,
            Box::new(ChannelBatchSender {
                site: id,
                tx: up_tx.clone(),
            }),
            down_rx,
        ));
        downs.push(Box::new(ChannelDownSender { tx: Some(down_tx) }));
    }
    drop(up_tx);
    (sites, CoordEndpoint::new(up_rx, downs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_wiring_routes_up_and_down() {
        let (mut sites, mut coord) = channel_wiring::<u32, u32>(2, 4);
        sites[1]
            .up
            .send(UpFrame::Batch {
                msgs: vec![7, 8],
                items: 5,
            })
            .unwrap();
        sites[0].up.send(UpFrame::Eof).unwrap();
        assert_eq!(
            coord.up.recv().unwrap(),
            (
                1,
                UpFrame::Batch {
                    msgs: vec![7u32, 8],
                    items: 5
                }
            )
        );
        assert_eq!(coord.up.recv().unwrap(), (0, UpFrame::Eof));
        coord.downs[0].send(&42).unwrap();
        assert_eq!(sites[0].down.recv().unwrap(), 42);
        // Closing the down link ends the site's drain loop.
        for d in &mut coord.downs {
            d.close();
        }
        assert!(sites[0].down.recv().is_err());
        assert!(sites[1].down.recv().is_err());
    }

    #[test]
    fn up_send_fails_after_coordinator_gone() {
        let (mut sites, coord) = channel_wiring::<u32, u32>(1, 4);
        drop(coord);
        assert!(matches!(
            sites[0].up.send(UpFrame::Eof),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn down_send_to_departed_site_reports_closed() {
        let (sites, mut coord) = channel_wiring::<u32, u32>(1, 4);
        drop(sites);
        assert!(matches!(
            coord.downs[0].send(&1),
            Err(TransportError::Closed)
        ));
    }
}
