//! Hierarchical fan-in topology on the concurrent substrate.
//!
//! The flat engine ([`crate::engine`]) runs `k` sites against one
//! coordinator. This module promotes the two-level tree of
//! `dwrs_sim::FanInTree` — `g` groups of `k` sites, each group running the
//! **full weighted SWOR protocol** against its own *aggregator*, and a
//! *root merger* holding the latest [`SyncMsg`] sample from every group —
//! from a lockstep-only simulation to a first-class runtime topology over
//! the same pluggable transports:
//!
//! ```text
//!   group 0: site threads ──►┐
//!                            ├─► aggregator 0 ──┐  SyncMsg every
//!   group 1: site threads ──►┤                  │  `sync_every` items
//!                            ├─► aggregator 1 ──┼─► root merger
//!        ...                 │       ...        │   (merge_samples)
//!   group g-1: sites ...   ──┴─► aggregator g-1─┘
//! ```
//!
//! Both hops reuse the existing transport layer: sites↔aggregator links
//! are ordinary [`crate::transport`] wirings (bounded in-process channels
//! or framed loopback TCP), and the aggregator→root hop is *the same
//! up-path abstraction* instantiated at `U = SyncMsg` — so the `HELLO`
//! handshake, batch framing, fault frames, and backpressure discipline all
//! carry over unchanged.
//!
//! # Deadlock freedom across two hops
//!
//! The invariant of the flat engine generalizes tier-wise. Site→aggregator
//! and aggregator→root queues are bounded (blocking sends = backpressure);
//! every down path is unbounded and eagerly drained. The root never sends,
//! so it always returns to draining its queue; hence a blocked
//! aggregator→root send always unblocks, hence the aggregator always
//! returns to draining its site queue, hence blocked site sends always
//! unblock. No cycle of blocking sends can form.
//!
//! # Shutdown ordering
//!
//! Deterministic two-tier drain, strictly ordered per group:
//!
//! 1. each site flushes its final partial batch (plus its residual item
//!    count) and sends `Eof`;
//! 2. once every site of a group reported `Eof`, the aggregator closes its
//!    down links, performs one **final sync** — making the root's view of
//!    that group exact — and sends its own `Eof` up;
//! 3. the root drains until every group reported `Eof`, then merges.
//!
//! # Bounded staleness
//!
//! An aggregator syncs as soon as its item watermark (the per-frame counts
//! shipped by the engine's site loop) has advanced `sync_every`
//! items since the previous sync. Watermarks move in frame granularity, so
//! the lag at a sync trigger is bounded by `sync_every - 1` plus the item
//! window of the frame that crossed the threshold — recorded per group in
//! [`GroupStats`] and asserted by the tree equivalence suite. After
//! shutdown the root is exact: the final sync covers every item.

use std::net::{TcpListener, ToSocketAddrs};
use std::sync::mpsc;
use std::thread;

use dwrs_core::merge::merge_samples;
use dwrs_core::swor::{SworConfig, SworCoordinator, SyncMsg};
use dwrs_core::{Item, Keyed};
use dwrs_sim::{
    swor_coordinator, swor_site, tree_group_seed, CoordinatorNode, FanInTree, Meter, Metrics,
    NoDown, Outbox, SiteNode,
};

use crate::adapters::EngineKind;
use crate::config::RuntimeConfig;
use crate::engine::{route, site_loop, RuntimeError};
use crate::obs::{record_thread_metrics, tree_syncs_counter};
use crate::tcp::{accept_sites, connect_site};
use crate::transport::{
    channel_wiring, CoordEndpoint, SiteEndpoint, TransportError, UpFrame, Wiring,
};

/// Shape of a two-level fan-in deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeTopology {
    /// Number of groups `g` (one aggregator each).
    pub groups: usize,
    /// Sites per group `k` (the intra-group protocol runs with this `k`).
    pub k_per_group: usize,
    /// An aggregator ships its sample to the root every `sync_every` items
    /// its group processes.
    pub sync_every: u64,
}

impl TreeTopology {
    /// A `groups × k_per_group` tree syncing every `sync_every` items.
    pub fn new(groups: usize, k_per_group: usize, sync_every: u64) -> Self {
        assert!(groups >= 1, "need at least one group");
        assert!(k_per_group >= 1, "need at least one site per group");
        assert!(sync_every >= 1, "sync period must be at least 1");
        Self {
            groups,
            k_per_group,
            sync_every,
        }
    }

    /// Total number of leaf sites `g · k`.
    pub fn total_sites(&self) -> usize {
        self.groups * self.k_per_group
    }
}

/// Per-group bookkeeping an aggregator hands back, used by the
/// bounded-staleness assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Items the group's sites reported (watermark at shutdown).
    pub items: u64,
    /// Aggregator→root syncs performed (including the final sync).
    pub syncs: u64,
    /// Largest item watermark lag reached before a sync fired. Bounded by
    /// `sync_every - 1 + max_frame_items` (see module docs).
    pub max_unsynced: u64,
    /// Largest single-frame item window received from a site.
    pub max_frame_items: u64,
}

/// Everything a completed tree run hands back.
#[derive(Debug)]
pub struct TreeOutput {
    /// The root's merged sample: an exact weighted SWOR of the full stream
    /// (every group's final sync covers its whole substream).
    pub root_sample: Vec<Keyed>,
    /// Each group's last-synced sample, in group order.
    pub group_samples: Vec<Vec<Keyed>>,
    /// All tiers' accounting merged into one paper-accounting total: site
    /// upstream traffic, aggregator downstream traffic, and one `"sync"`
    /// message per synced sample entry.
    pub metrics: Metrics,
    /// Per-group staleness/cadence bookkeeping, in group order. (Lockstep
    /// runs report `max_frame_items = 1`: watermarks advance per item.)
    pub group_stats: Vec<GroupStats>,
    /// Root-side log of `(group, items_covered)` per received sync, in
    /// arrival order. Empty for lockstep runs.
    pub sync_log: Vec<(usize, u64)>,
}

/// A coordinator that can expose its current keyed sample for a root sync
/// (implemented by the weighted-SWOR coordinator; any mergeable-sample
/// protocol can opt in).
pub trait SampleSource {
    /// The node's current keyed sample (its top-`s`).
    fn keyed_sample(&self) -> Vec<Keyed>;
}

impl SampleSource for SworCoordinator {
    fn keyed_sample(&self) -> Vec<Keyed> {
        self.sample()
    }
}

/// Largest candidate count a window aggregator syncs in one frame: what
/// fits a `MAX_FRAME_LEN` sync payload (17-byte header + 24 bytes per
/// entry, with slack for the batch wrapper). ~43k entries — far above the
/// expected `O(s·log(window/s))` retained-set size for any `s` the TCP
/// tree admits; only adversarially ordered keys (a near-monotone key
/// stream, whose undominated set is the whole window) ever reach it.
const MAX_WINDOW_SYNC_ENTRIES: usize = (dwrs_core::framed::MAX_FRAME_LEN as usize - 64) / 24;

impl SampleSource for dwrs_apps::WindowCoordinator {
    /// Aggregators sync their **un-truncated** in-window candidate set:
    /// the group's watermark lags the global one, so a premature local
    /// top-`s` cut could let globally-expired entries displace candidates
    /// the root still needs. The root applies the global window cutoff
    /// and the final top-`s` (`Query::SlidingWindow`'s tree answer).
    /// Only the frame-cap backstop `MAX_WINDOW_SYNC_ENTRIES` truncates
    /// (keeping the largest keys), so the sync always fits the framed
    /// transport.
    fn keyed_sample(&self) -> Vec<Keyed> {
        let mut entries = self.window_entries();
        if entries.len() > MAX_WINDOW_SYNC_ENTRIES {
            entries.sort_by(|a, b| b.key.total_cmp(&a.key));
            entries.truncate(MAX_WINDOW_SYNC_ENTRIES);
        }
        entries
    }
}

/// Ships one sync to the root, metering it as the paper accounts it (one
/// message per synced entry, exact wire bytes).
fn sync_to_root<C: SampleSource>(
    node: &C,
    root: &mut dyn crate::transport::BatchSender<SyncMsg>,
    group: usize,
    watermark: u64,
    window: u64,
    metrics: &mut Metrics,
) -> Result<(), TransportError> {
    let msg = SyncMsg {
        group: group as u32,
        items: watermark,
        sample: node.keyed_sample(),
    };
    metrics.count_up(Meter::kind(&msg), msg.units(), msg.wire_bytes());
    root.send(UpFrame::Batch {
        msgs: vec![msg],
        items: window,
    })
}

/// Drives one group's aggregator: the flat coordinator loop (receive site
/// batches, route broadcasts) plus the root-sync cadence and the
/// final-sync/`Eof` shutdown handshake. Returns the aggregator's metrics
/// (downstream routing + sync tier) and its [`GroupStats`].
pub(crate) fn aggregator_loop<C>(
    node: &mut C,
    endpoint: CoordEndpoint<C::Up, C::Down>,
    mut root: SiteEndpoint<SyncMsg, NoDown>,
    group: usize,
    sync_every: u64,
) -> Result<(Metrics, GroupStats), RuntimeError>
where
    C: CoordinatorNode + SampleSource,
{
    let CoordEndpoint { up, mut downs } = endpoint;
    let k = downs.len();
    let mut metrics = Metrics::new();
    let mut outbox = Outbox::new();
    let mut stats = GroupStats::default();
    // Resolved once; each sync is then a single relaxed atomic add.
    let syncs_counter = tree_syncs_counter();
    let mut pending = 0u64;
    let mut done = 0usize;
    let mut fault: Option<String> = None;
    while done < k {
        match up.recv() {
            Ok((site, UpFrame::Batch { msgs, items })) => {
                for msg in msgs {
                    node.receive(site, msg, &mut outbox);
                    route(&mut outbox, &mut downs, &mut metrics);
                }
                pending += items;
                stats.items += items;
                stats.max_frame_items = stats.max_frame_items.max(items);
                if pending >= sync_every {
                    stats.max_unsynced = stats.max_unsynced.max(pending);
                    let window = std::mem::take(&mut pending);
                    sync_to_root(
                        node,
                        &mut *root.up,
                        group,
                        stats.items,
                        window,
                        &mut metrics,
                    )?;
                    stats.syncs += 1;
                    syncs_counter.inc();
                }
            }
            Ok((_, UpFrame::Eof)) => done += 1,
            Ok((site, UpFrame::Fault(e))) => {
                fault.get_or_insert(format!("group {group}, site {site}: {e}"));
                done += 1;
            }
            // All site senders dropped before k Eofs: a site died without
            // its Eof; the engine's joins surface the precise cause.
            Err(mpsc::RecvError) => break,
        }
    }
    for d in &mut downs {
        d.close();
    }
    drop(downs);
    if let Some(e) = fault {
        // Propagate the failure up so the root terminates with a
        // diagnostic instead of waiting for a sync that never comes.
        let _ = root.up.send(UpFrame::Fault(e.clone()));
        root.up.close();
        return Err(RuntimeError::Transport(e));
    }
    // Final sync (shutdown phase 2): makes the root's view of this group
    // exact, then half-close the root link.
    stats.max_unsynced = stats.max_unsynced.max(pending);
    sync_to_root(
        node,
        &mut *root.up,
        group,
        stats.items,
        pending,
        &mut metrics,
    )?;
    stats.syncs += 1;
    syncs_counter.inc();
    root.up.send(UpFrame::Eof)?;
    root.up.close();
    drop(root.up);
    // Drain the (empty) root→aggregator path until the root closes it, so
    // shutdown stays ordered even if a future root gains a down path.
    while root.down.recv().is_ok() {}
    record_thread_metrics(&metrics);
    Ok((metrics, stats))
}

/// What the root merger hands back: each group's latest sample plus the
/// `(group, items_covered)` watermark log in arrival order.
type RootResult = Result<(Vec<Vec<Keyed>>, Vec<(usize, u64)>), RuntimeError>;

/// Drives the root merger: collects each group's latest sync until every
/// group reports `Eof`, recording the coverage watermark log. Syncs are
/// sender-metered (by the aggregators), so the root contributes no
/// metrics of its own.
pub(crate) fn root_loop(endpoint: CoordEndpoint<SyncMsg, NoDown>) -> RootResult {
    let CoordEndpoint { up, mut downs } = endpoint;
    let g = downs.len();
    let mut samples: Vec<Vec<Keyed>> = vec![Vec::new(); g];
    let mut log: Vec<(usize, u64)> = Vec::new();
    let mut done = 0usize;
    let mut fault: Option<String> = None;
    while done < g {
        match up.recv() {
            Ok((from, UpFrame::Batch { msgs, .. })) => {
                for msg in msgs {
                    let gi = msg.group as usize;
                    if gi != from || gi >= g {
                        fault.get_or_insert(format!(
                            "sync for group {gi} arrived on group {from}'s link"
                        ));
                        continue;
                    }
                    log.push((gi, msg.items));
                    samples[gi] = msg.sample;
                }
            }
            Ok((_, UpFrame::Eof)) => done += 1,
            Ok((from, UpFrame::Fault(e))) => {
                fault.get_or_insert(format!("group {from}: {e}"));
                done += 1;
            }
            Err(mpsc::RecvError) => break,
        }
    }
    for d in &mut downs {
        d.close();
    }
    drop(downs);
    match fault {
        Some(e) => Err(RuntimeError::Transport(e)),
        None => Ok((samples, log)),
    }
}

/// Splits a globally ordered `(global_site, item)` stream into per-group,
/// per-site partitions: global site `i` is site `i % k` of group `i / k`.
/// The tree analogue of [`crate::split_stream`].
///
/// This **materializes the whole stream** (O(n) memory), like its flat
/// sibling; it is kept only so old call sites keep compiling. New code
/// should describe the deployment as a [`crate::driver::Scenario`] with a
/// tree topology and let [`crate::driver::run_scenario`] stream the
/// workload through the bounded dispatcher at O(batch × queue) memory.
#[deprecated(
    since = "0.1.0",
    note = "materializes the whole stream (O(n) memory); describe the run as a \
            driver::Scenario with a tree topology and use driver::run_scenario, \
            which streams at O(batch × queue) memory"
)]
pub fn split_tree_stream<I>(topo: &TreeTopology, stream: I) -> Vec<Vec<Vec<Item>>>
where
    I: IntoIterator<Item = (usize, Item)>,
{
    let k = topo.k_per_group;
    let mut parts: Vec<Vec<Vec<Item>>> = (0..topo.groups)
        .map(|_| (0..k).map(|_| Vec::new()).collect())
        .collect();
    for (site, item) in stream {
        assert!(site < topo.total_sites(), "global site index out of range");
        parts[site / k][site % k].push(item);
    }
    parts
}

/// Runs a full fan-in tree over an already-built wiring: one
/// site/aggregator wiring per group plus the aggregator→root wiring.
/// Generic over the protocol — `mk_site(group, site)` and
/// `mk_aggregator(group)` build the group deployments (any
/// [`SiteNode`]/[`CoordinatorNode`]+[`SampleSource`] pair) — and the
/// engine behind both the threaded and TCP paths of [`run_tree_swor`] and
/// the query-generic [`run_tree_nodes`].
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_tree_on<S, A, I>(
    group_wirings: Vec<Wiring<S::Up, S::Down>>,
    root_wiring: Wiring<SyncMsg, NoDown>,
    s: usize,
    topo: &TreeTopology,
    mut mk_site: impl FnMut(usize, usize) -> S,
    mut mk_aggregator: impl FnMut(usize) -> A,
    streams: Vec<Vec<I>>,
    cfg: &RuntimeConfig,
) -> Result<TreeOutput, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: Send,
    S::Down: Send,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let (g, k) = (topo.groups, topo.k_per_group);
    let batch_max = cfg.batch_max.max(1);
    let down_poll_every = cfg.down_poll_every.max(1);
    let (root_links, root_ep) = root_wiring;
    assert_eq!(group_wirings.len(), g, "one wiring per group");
    assert_eq!(root_links.len(), g, "one root link per group");
    assert_eq!(streams.len(), g, "one stream block per group");

    type SiteRes = Result<Metrics, RuntimeError>;
    type AggRes = Result<(Metrics, GroupStats), RuntimeError>;
    let (root_res, agg_res, site_res) = thread::scope(|scope| {
        let mut site_handles: Vec<thread::ScopedJoinHandle<'_, SiteRes>> =
            Vec::with_capacity(g * k);
        let mut agg_handles: Vec<thread::ScopedJoinHandle<'_, AggRes>> = Vec::with_capacity(g);
        for (gi, (((site_eps, coord_ep), root_link), group_streams)) in group_wirings
            .into_iter()
            .zip(root_links)
            .zip(streams)
            .enumerate()
        {
            assert_eq!(site_eps.len(), k, "one endpoint per site");
            assert_eq!(group_streams.len(), k, "one stream partition per site");
            for ((i, ep), items) in site_eps.into_iter().enumerate().zip(group_streams) {
                let mut site = mk_site(gi, i);
                site_handles
                    .push(scope.spawn(move || {
                        site_loop(&mut site, ep, items, batch_max, down_poll_every)
                    }));
            }
            let mut aggregator = mk_aggregator(gi);
            let sync_every = topo.sync_every;
            agg_handles.push(scope.spawn(move || {
                aggregator_loop(&mut aggregator, coord_ep, root_link, gi, sync_every)
            }));
        }
        let root_handle = scope.spawn(move || root_loop(root_ep));
        let site_res: Vec<_> = site_handles.into_iter().map(|h| h.join()).collect();
        let agg_res: Vec<_> = agg_handles.into_iter().map(|h| h.join()).collect();
        (root_handle.join(), agg_res, site_res)
    });

    // Surface panics deterministically: sites (by global index), then
    // aggregators, then the root, then transport errors in the same order.
    for (i, res) in site_res.iter().enumerate() {
        if res.is_err() {
            return Err(RuntimeError::SitePanicked(i));
        }
    }
    for (gi, res) in agg_res.iter().enumerate() {
        if res.is_err() {
            return Err(RuntimeError::AggregatorPanicked(gi));
        }
    }
    let root_out = root_res.map_err(|_| RuntimeError::RootPanicked)?;

    let mut metrics = Metrics::new();
    for res in site_res {
        metrics.merge(&res.expect("panics handled above")?);
    }
    let mut group_stats = Vec::with_capacity(g);
    for res in agg_res {
        let (agg_metrics, stats) = res.expect("panics handled above")?;
        metrics.merge(&agg_metrics);
        group_stats.push(stats);
    }
    let (group_samples, sync_log) = root_out?;
    let parts: Vec<&[Keyed]> = group_samples.iter().map(Vec::as_slice).collect();
    let root_sample = merge_samples(&parts, s);
    Ok(TreeOutput {
        root_sample,
        group_samples,
        metrics,
        group_stats,
        sync_log,
    })
}

/// Finishes a lockstep fan-in tree run: final syncs (making the root
/// exact), then the uniform [`TreeOutput`] conversion. Shared by the
/// vec-based [`run_tree_swor`] lockstep arm and the streaming scenario
/// driver — the one place lockstep tree results are assembled.
pub(crate) fn finish_lockstep_tree(mut tree: FanInTree) -> TreeOutput {
    tree.sync_all();
    let g = tree.num_groups();
    let group_samples: Vec<Vec<Keyed>> = (0..g).map(|gi| tree.group_sample(gi).to_vec()).collect();
    let group_stats = (0..g)
        .map(|gi| GroupStats {
            items: tree.group_observed(gi),
            syncs: tree.group_syncs(gi),
            max_unsynced: tree.group_max_unsynced(gi),
            max_frame_items: 1,
        })
        .collect();
    TreeOutput {
        root_sample: tree.root_sample(),
        group_samples,
        metrics: tree.merged_metrics(),
        group_stats,
        sync_log: Vec::new(),
    }
}

/// Single-threaded fan-in tree over arbitrary protocol nodes: one lockstep
/// [`dwrs_sim::Runner`] per group plus the root's sync/merge bookkeeping —
/// the generic lockstep analogue of [`run_tree_nodes`], used by the
/// scenario driver for every non-SWOR [`crate::driver::Query`] (SWOR keeps
/// the specialized [`FanInTree`], with which identically-seeded runs are
/// byte-compatible).
pub struct LockstepTree<S, A>
where
    S: SiteNode,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource,
{
    groups: Vec<dwrs_sim::Runner<S, A>>,
    synced: Vec<Vec<Keyed>>,
    stats: Vec<GroupStats>,
    pending: Vec<u64>,
    sync_metrics: Metrics,
    sync_every: u64,
    s: usize,
}

impl<S, A> std::fmt::Debug for LockstepTree<S, A>
where
    S: SiteNode,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LockstepTree({} groups, sync_every {})",
            self.groups.len(),
            self.sync_every
        )
    }
}

impl<S, A> LockstepTree<S, A>
where
    S: SiteNode,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource,
{
    /// Builds the tree from per-group lockstep runners (each already
    /// holding its `k` sites and aggregator), syncing every group's keyed
    /// sample to the root after `sync_every` of its items.
    pub fn new(s: usize, sync_every: u64, groups: Vec<dwrs_sim::Runner<S, A>>) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        assert!(sync_every >= 1, "sync period must be at least 1");
        let g = groups.len();
        Self {
            groups,
            synced: vec![Vec::new(); g],
            stats: vec![GroupStats::default(); g],
            pending: vec![0; g],
            sync_metrics: Metrics::new(),
            sync_every,
            s,
        }
    }

    /// Feeds one item to site `site` of group `group`.
    pub fn observe(&mut self, group: usize, site: usize, item: Item) {
        self.groups[group].step(site, item);
        self.stats[group].items += 1;
        self.stats[group].max_frame_items = 1;
        self.pending[group] += 1;
        if self.pending[group] >= self.sync_every {
            self.sync_group(group);
        }
    }

    /// Ships group `group`'s current sample to the root, with the paper's
    /// sync-tier accounting (one message per synced entry, exact wire
    /// bytes) — identical to the concurrent aggregator's metering.
    fn sync_group(&mut self, group: usize) {
        let st = &mut self.stats[group];
        st.max_unsynced = st.max_unsynced.max(self.pending[group]);
        self.pending[group] = 0;
        let msg = SyncMsg {
            group: group as u32,
            items: st.items,
            sample: self.groups[group].coordinator.keyed_sample(),
        };
        self.sync_metrics
            .count_up(Meter::kind(&msg), msg.units(), msg.wire_bytes());
        st.syncs += 1;
        self.synced[group] = msg.sample;
    }

    /// Ends the stream: every site's `finish` messages route through its
    /// aggregator, each group performs its final (exact) sync, and the
    /// root merges. Mirrors the concurrent shutdown ordering.
    pub fn finish(mut self) -> TreeOutput {
        let g = self.groups.len();
        for gi in 0..g {
            self.groups[gi].finish();
            self.sync_group(gi);
        }
        let mut metrics = Metrics::new();
        for runner in &self.groups {
            metrics.merge(&runner.metrics);
        }
        metrics.merge(&self.sync_metrics);
        let parts: Vec<&[Keyed]> = self.synced.iter().map(Vec::as_slice).collect();
        let root_sample = merge_samples(&parts, self.s);
        TreeOutput {
            root_sample,
            group_samples: self.synced,
            metrics,
            group_stats: self.stats,
            sync_log: Vec::new(),
        }
    }
}

/// Builds the fan-in tree deployment — seeded exactly like
/// [`dwrs_sim::FanInTree`] via [`tree_group_seed`] — and runs it on the
/// chosen substrate. `group_cfg` is the intra-group protocol configuration
/// (its `num_sites` must equal `topo.k_per_group`).
///
/// `streams[gi][i]` is the partition of the stream for site `i` of group
/// `gi`, in that site's arrival order — any streaming iterators (the
/// scenario driver passes its bounded shard queues; the deprecated
/// [`split_tree_stream`] derives materialized O(n) blocks from a globally
/// ordered stream for legacy call sites).
///
/// With [`EngineKind::Lockstep`] the tree runs on the single-threaded
/// simulator over a round-robin interleaving of the partitions; the other
/// engines run `g·k` site threads, `g` aggregator threads, and one root
/// thread over in-process channels or loopback TCP.
pub fn run_tree_swor<I>(
    engine: EngineKind,
    group_cfg: &SworConfig,
    topo: &TreeTopology,
    seed: u64,
    streams: Vec<Vec<I>>,
    cfg: &RuntimeConfig,
) -> Result<TreeOutput, RuntimeError>
where
    I: IntoIterator<Item = Item> + Send,
{
    let (g, k) = (topo.groups, topo.k_per_group);
    assert_eq!(streams.len(), g, "one stream block per group");
    assert_eq!(
        group_cfg.num_sites, k,
        "group config must cover k_per_group sites"
    );
    match engine {
        EngineKind::Lockstep => {
            let mut tree = FanInTree::from_config(group_cfg.clone(), g, topo.sync_every, seed);
            // Flatten group-major and interleave round-robin: the same
            // one-item-per-site-per-round order as before.
            let flat: Vec<I> = streams.into_iter().flatten().collect();
            crate::driver::interleave_shards(flat, |shard, item| {
                tree.observe(shard / k, shard % k, item);
            });
            Ok(finish_lockstep_tree(tree))
        }
        EngineKind::Threads | EngineKind::Tcp | EngineKind::Epoll => {
            let group_seed = |gi: usize| tree_group_seed(seed, gi);
            run_tree_nodes(
                engine,
                group_cfg.sample_size,
                topo,
                |gi, i| swor_site(group_cfg, group_seed(gi), i),
                |gi| swor_coordinator(group_cfg.clone(), group_seed(gi)),
                streams,
                cfg,
            )
        }
    }
}

/// Runs a generic fan-in tree on the threaded or TCP substrate: `g` groups
/// of `k` sites built by `mk_site(group, site)` against per-group
/// aggregators built by `mk_aggregator(group)` (any
/// [`SiteNode`]/[`CoordinatorNode`]+[`SampleSource`] pair), with the
/// aggregator→root hop at `U = SyncMsg` and the root merging each group's
/// latest keyed sample into a top-`s`. This is the engine every
/// [`crate::driver::Query`] tree deployment routes through; the lockstep
/// analogue is the driver's generic group-runner loop.
pub fn run_tree_nodes<S, A, I>(
    engine: EngineKind,
    s: usize,
    topo: &TreeTopology,
    mk_site: impl FnMut(usize, usize) -> S,
    mk_aggregator: impl FnMut(usize) -> A,
    streams: Vec<Vec<I>>,
    cfg: &RuntimeConfig,
) -> Result<TreeOutput, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: dwrs_core::framed::FrameCodec + Send + 'static,
    S::Down: dwrs_core::framed::FrameCodec + Clone + Send + 'static,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let (g, k) = (topo.groups, topo.k_per_group);
    assert_eq!(streams.len(), g, "one stream block per group");
    match engine {
        EngineKind::Lockstep => Err(RuntimeError::InvalidScenario(
            "run_tree_nodes drives the concurrent substrates; lockstep trees run through \
             the scenario driver"
                .into(),
        )),
        EngineKind::Threads => {
            let group_wirings = (0..g)
                .map(|_| channel_wiring(k, cfg.queue_capacity))
                .collect();
            let root_wiring = channel_wiring(g, cfg.queue_capacity);
            run_tree_on(
                group_wirings,
                root_wiring,
                s,
                topo,
                mk_site,
                mk_aggregator,
                streams,
                cfg,
            )
        }
        EngineKind::Tcp => run_tree_tcp(s, topo, mk_site, mk_aggregator, streams, cfg),
        EngineKind::Epoll => {
            // This vec-based entry point materializes each partition into
            // a [`crate::epoll::VecFeed`]; streaming deployments (the
            // scenario driver) hand their bounded shard queues to
            // [`crate::epoll::run_tree_epoll`] directly as nonblocking
            // feeds, at O(batch × queue) memory.
            let feeds: Vec<Vec<Box<dyn crate::epoll::ItemFeed>>> = streams
                .into_iter()
                .map(|group| {
                    group
                        .into_iter()
                        .map(|items| {
                            Box::new(crate::epoll::VecFeed::new(items.into_iter().collect()))
                                as Box<dyn crate::epoll::ItemFeed>
                        })
                        .collect()
                })
                .collect();
            crate::epoll::run_tree_epoll(s, topo, mk_site, mk_aggregator, feeds, cfg)
        }
    }
}

/// Wires the whole tree over loopback TCP inside one process — one
/// listener per aggregator plus one for the root, every hop crossing the
/// kernel's TCP stack with framed wire encoding — then hands off
/// to the shared engine.
fn run_tree_tcp<S, A, I>(
    s: usize,
    topo: &TreeTopology,
    mk_site: impl FnMut(usize, usize) -> S,
    mk_aggregator: impl FnMut(usize) -> A,
    streams: Vec<Vec<I>>,
    cfg: &RuntimeConfig,
) -> Result<TreeOutput, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: dwrs_core::framed::FrameCodec + Send + 'static,
    S::Down: dwrs_core::framed::FrameCodec + Send + 'static,
    A: CoordinatorNode<Up = S::Up, Down = S::Down> + SampleSource + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let (g, k) = (topo.groups, topo.k_per_group);
    // Fail fast instead of mid-run: a sync frame carries the whole sample
    // (9-byte batch header + 17-byte SyncMsg header + 24 bytes per entry)
    // and the framed transport caps payloads at MAX_FRAME_LEN. The channel
    // engine has no such limit — only the framed hop does.
    let max_sync_payload = 9 + 17 + 24 * s;
    let frame_cap = dwrs_core::framed::MAX_FRAME_LEN as usize;
    if max_sync_payload > frame_cap {
        let max_s = (frame_cap - 9 - 17) / 24;
        return Err(RuntimeError::Transport(format!(
            "sample size {s} needs {max_sync_payload}-byte sync frames, over the \
             {frame_cap}-byte framed-transport cap; the TCP tree supports s <= {max_s}"
        )));
    }
    let bind = |what: &str| -> Result<(TcpListener, std::net::SocketAddr), RuntimeError> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))
            .map_err(|e| RuntimeError::Transport(format!("bind {what} listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        Ok((listener, addr))
    };
    let (root_listener, root_addr) = bind("root")?;
    let mut group_wirings = Vec::with_capacity(g);
    let mut root_links = Vec::with_capacity(g);
    for gi in 0..g {
        let (listener, addr) = bind("group")?;
        // Connect all k site sockets first (they complete against the
        // listen backlog), then accept and handshake — as in the flat
        // loopback engine.
        let mut eps = Vec::with_capacity(k);
        for i in 0..k {
            eps.push(tcp_connect(addr, i, &format!("group {gi} site {i}"))?);
        }
        let coord_ep = accept_sites(&listener, k, cfg.queue_capacity)?;
        group_wirings.push((eps, coord_ep));
        root_links.push(tcp_connect(
            root_addr,
            gi,
            &format!("group {gi} root link"),
        )?);
    }
    let root_ep = accept_sites::<SyncMsg, NoDown>(&root_listener, g, cfg.queue_capacity)?;
    run_tree_on(
        group_wirings,
        (root_links, root_ep),
        s,
        topo,
        mk_site,
        mk_aggregator,
        streams,
        cfg,
    )
}

/// [`connect_site`] with a contextualized transport error.
fn tcp_connect<U, D>(
    addr: impl ToSocketAddrs,
    id: usize,
    what: &str,
) -> Result<SiteEndpoint<U, D>, RuntimeError>
where
    U: dwrs_core::framed::FrameCodec + Send + 'static,
    D: dwrs_core::framed::FrameCodec + Send + 'static,
{
    connect_site(addr, id).map_err(|e| RuntimeError::Transport(format!("connect {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(deprecated)]
    fn tree_streams(topo: &TreeTopology, n: u64) -> Vec<Vec<Vec<Item>>> {
        let total = topo.total_sites() as u64;
        split_tree_stream(
            topo,
            (0..n).map(|i| ((i % total) as usize, Item::new(i, 1.0 + (i % 7) as f64))),
        )
    }

    #[test]
    #[allow(deprecated)]
    fn split_tree_stream_routes_by_group_and_site() {
        let topo = TreeTopology::new(2, 2, 10);
        let parts = split_tree_stream(
            &topo,
            vec![
                (0, Item::unit(0)),
                (3, Item::unit(1)),
                (2, Item::unit(2)),
                (3, Item::unit(3)),
            ],
        );
        let ids = |v: &Vec<Item>| v.iter().map(|i| i.id).collect::<Vec<_>>();
        assert_eq!(ids(&parts[0][0]), vec![0]);
        assert!(parts[0][1].is_empty());
        assert_eq!(ids(&parts[1][0]), vec![2]);
        assert_eq!(ids(&parts[1][1]), vec![1, 3]);
    }

    #[test]
    fn threads_tree_end_to_end() {
        let topo = TreeTopology::new(3, 2, 500);
        let n = 30_000u64;
        let out = run_tree_swor(
            EngineKind::Threads,
            &SworConfig::new(8, topo.k_per_group),
            &topo,
            42,
            tree_streams(&topo, n),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.root_sample.len(), 8);
        assert_eq!(out.group_samples.len(), 3);
        // Every group's final sync covered its whole substream.
        let items: u64 = out.group_stats.iter().map(|st| st.items).sum();
        assert_eq!(items, n);
        for (gi, st) in out.group_stats.iter().enumerate() {
            assert!(st.syncs >= 1, "group {gi} never synced");
            // Bounded staleness: lag at any sync trigger is under the
            // period plus one frame's item window.
            assert!(
                st.max_unsynced < topo.sync_every + st.max_frame_items,
                "group {gi}: max_unsynced {} vs bound {}",
                st.max_unsynced,
                topo.sync_every + st.max_frame_items
            );
            // The last sync in the log is the exact watermark.
            let last = out
                .sync_log
                .iter()
                .rev()
                .find(|&&(g, _)| g == gi)
                .expect("every group appears in the sync log");
            assert_eq!(last.1, st.items, "group {gi} final sync not exact");
        }
        // Sync traffic is metered into the merged totals.
        assert!(out.metrics.kind("sync") > 0);
        assert!(out.metrics.kind("regular") + out.metrics.kind("early") > 0);
    }

    #[test]
    fn tcp_tree_end_to_end() {
        let topo = TreeTopology::new(2, 2, 1_000);
        let n = 20_000u64;
        let out = run_tree_swor(
            EngineKind::Tcp,
            &SworConfig::new(8, topo.k_per_group),
            &topo,
            7,
            tree_streams(&topo, n),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.root_sample.len(), 8);
        let items: u64 = out.group_stats.iter().map(|st| st.items).sum();
        assert_eq!(items, n);
        assert!(out.metrics.kind("sync") > 0);
    }

    #[test]
    fn lockstep_tree_matches_fan_in_tree_exactly() {
        // The Lockstep engine is a thin driver over dwrs_sim::FanInTree;
        // identical seeds and streams must give byte-identical samples.
        let topo = TreeTopology::new(2, 2, 100);
        let n = 5_000u64;
        let out = run_tree_swor(
            EngineKind::Lockstep,
            &SworConfig::new(4, topo.k_per_group),
            &topo,
            11,
            tree_streams(&topo, n),
            &RuntimeConfig::default(),
        )
        .unwrap();
        let mut tree = FanInTree::new(4, 2, 2, 100, 11);
        // Reproduce the run_tree_swor round-robin interleaving: one item
        // per (group, site) per round, in group-major order.
        let streams = tree_streams(&topo, n);
        let mut iters: Vec<Vec<_>> = streams
            .into_iter()
            .map(|gr| gr.into_iter().map(Vec::into_iter).collect())
            .collect();
        loop {
            let mut any = false;
            for (gi, group_iters) in iters.iter_mut().enumerate() {
                for (si, it) in group_iters.iter_mut().enumerate() {
                    if let Some(item) = it.next() {
                        tree.observe(gi, si, item);
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }
        tree.sync_all();
        let ids = |v: &[Keyed]| {
            v.iter()
                .map(|kd| (kd.item.id, kd.key.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&out.root_sample), ids(&tree.root_sample()));
        assert_eq!(out.metrics.total(), tree.total_messages());
        assert_eq!(out.group_stats[0].items, tree.group_observed(0));
        assert_eq!(out.group_stats[1].syncs, tree.group_syncs(1));
    }

    #[test]
    fn tiny_queue_and_batch_tree_still_completes() {
        // Two-hop backpressure on every message: the deadlock-freedom
        // invariant must hold tier-wise.
        let topo = TreeTopology::new(2, 2, 7);
        let cfg = RuntimeConfig::new()
            .with_batch_max(1)
            .with_queue_capacity(1);
        let out = run_tree_swor(
            EngineKind::Threads,
            &SworConfig::new(4, topo.k_per_group),
            &topo,
            3,
            tree_streams(&topo, 4_000),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.root_sample.len(), 4);
        let items: u64 = out.group_stats.iter().map(|st| st.items).sum();
        assert_eq!(items, 4_000);
    }

    #[test]
    fn tcp_tree_rejects_sample_size_over_frame_cap() {
        // A sync frame must fit MAX_FRAME_LEN; the TCP engine fails fast
        // with a diagnostic instead of erroring mid-run (the channel
        // engine has no framing and accepts the same size).
        let topo = TreeTopology::new(1, 1, 1_000);
        let err = run_tree_swor(
            EngineKind::Tcp,
            &SworConfig::new(50_000, topo.k_per_group),
            &topo,
            1,
            vec![vec![Vec::new()]],
            &RuntimeConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Transport(ref m) if m.contains("sample size 50000")),
            "got {err:?}"
        );
    }

    #[test]
    fn topology_validates() {
        assert_eq!(TreeTopology::new(4, 8, 100).total_sites(), 32);
        let r = std::panic::catch_unwind(|| TreeTopology::new(0, 1, 1));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| TreeTopology::new(1, 1, 0));
        assert!(r.is_err());
    }
}
