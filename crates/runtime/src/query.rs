//! The multi-protocol query layer: which *application* a [`Scenario`]
//! runs.
//!
//! The paper's headline motivation for distributed weighted SWOR is the
//! applications it unlocks; this module promotes them from centralized
//! `crates/apps` simulations to first-class runtime protocols, each
//! running streamed on every engine (lockstep | threads | tcp) and
//! topology (flat | tree) with the same per-tier metrics, invariant
//! checks, and [`crate::driver::RunReport`] as plain SWOR:
//!
//! | query | paper | site node | coordinator | answer |
//! |---|---|---|---|---|
//! | [`Query::Swor`] | §3, Thm 1–3 | `SworSite` | `SworCoordinator` | the weighted sample |
//! | [`Query::L1`] | §5, Thm 6 | [`dwrs_apps::L1Site`] (duplication) | `SworCoordinator` | `W̃ = s·u/ℓ` |
//! | [`Query::ResidualHh`] | §4, Thm 4 | `SworSite` (s = 6·ln(1/εδ)/ε) | `SworCoordinator` | top `2/ε` by weight + oracle recall |
//! | [`Query::SlidingWindow`] | §7 (open problem) | [`dwrs_apps::WindowSite`] | [`dwrs_apps::WindowCoordinator`] | the window sample |
//!
//! The heavy-hitter recall is checked against the **exact** streaming
//! oracle ([`dwrs_apps::ResidualOracle`]) on a second pass over the
//! seeded source — O(1/ε) memory however long the stream.

use std::time::{Duration, Instant};

use dwrs_apps::l1::L1Config;
use dwrs_apps::residual_hh::{recall, ResidualHhConfig, ResidualOracle};
use dwrs_apps::{L1Site, WindowCoordinator, WindowSite};
use dwrs_core::rng::mix;
use dwrs_core::swor::CoordStats;
use dwrs_core::{Item, Keyed};
use dwrs_sim::{swor_coordinator, swor_site, tree_group_seed};
use dwrs_workloads::source::ItemSource;

use crate::driver::{drive_flat, drive_tree, DispatcherStats, Scenario};
use crate::engine::RuntimeError;
use crate::tree::TreeOutput;

/// Which application protocol a [`Scenario`] runs. Parse from the CLI
/// syntax with [`Query::parse`]; defaults are the paper's constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// Continuous distributed weighted sampling without replacement — the
    /// base protocol; the scenario's `s` is the sample size.
    Swor,
    /// L1 (total weight) tracking via duplication into weighted SWOR
    /// (Theorem 6): the coordinator continuously holds `W̃ = (1±ε)·W`.
    L1 {
        /// Relative accuracy `ε ∈ (0, 0.5)`.
        eps: f64,
        /// Per-time failure probability `δ ∈ (0, 1)`.
        delta: f64,
    },
    /// Heavy hitters with residual error (Theorem 4): every item with
    /// `w ≥ ε·‖x_tail(1/ε)‖₁` is returned among the top `2/ε` sample
    /// items by weight, with recall checked against the exact oracle.
    ResidualHh {
        /// Residual heaviness threshold `ε ∈ (0, 1)`.
        eps: f64,
        /// Failure probability `δ ∈ (0, 1)`.
        delta: f64,
    },
    /// Weighted SWOR over the last `window` arrivals (the sequence-based
    /// sliding window the paper's conclusion poses as an open problem).
    /// Requires item ids to be the global arrival order — true for every
    /// built-in generator and its CSV round trip.
    SlidingWindow {
        /// Window length, in arrivals.
        window: u64,
    },
}

impl Query {
    /// Parses a `kind[:params]` spec (the CLI `--query` syntax): `swor`,
    /// `l1[:eps[,delta]]`, `rhh[:eps[,delta]]`, `window[:len]`.
    pub fn parse(spec: &str) -> Result<Query, String> {
        let (name, params) = match spec.split_once(':') {
            Some((a, b)) => (a, b),
            None => (spec, ""),
        };
        let nums: Vec<f64> = if params.is_empty() {
            Vec::new()
        } else {
            params
                .split(',')
                .map(|x| {
                    x.parse::<f64>()
                        .map_err(|_| format!("bad query parameter '{x}'"))
                })
                .collect::<Result<_, _>>()?
        };
        let get = |i: usize, default: f64| nums.get(i).copied().unwrap_or(default);
        let q = match name {
            "swor" => Query::Swor,
            "l1" => Query::L1 {
                eps: get(0, 0.2),
                delta: get(1, 0.25),
            },
            "rhh" => Query::ResidualHh {
                eps: get(0, 0.2),
                delta: get(1, 0.05),
            },
            "window" => Query::SlidingWindow {
                window: get(0, 100_000.0) as u64,
            },
            other => {
                return Err(format!(
                    "unknown query '{other}' (expected swor | l1 | rhh | window)"
                ))
            }
        };
        q.validate()?;
        Ok(q)
    }

    /// Validates the query parameters (typed errors, never a mid-run
    /// panic).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Query::Swor => Ok(()),
            Query::L1 { eps, delta } => {
                if !(eps > 0.0 && eps < 0.5 && eps.is_finite()) {
                    return Err(format!("l1 eps must be in (0, 0.5), got {eps}"));
                }
                if !(delta > 0.0 && delta < 1.0) {
                    return Err(format!("l1 delta must be in (0, 1), got {delta}"));
                }
                Ok(())
            }
            Query::ResidualHh { eps, delta } => {
                if !(eps > 0.0 && eps < 1.0 && eps.is_finite()) {
                    return Err(format!("rhh eps must be in (0, 1), got {eps}"));
                }
                if !(delta > 0.0 && delta < 1.0) {
                    return Err(format!("rhh delta must be in (0, 1), got {delta}"));
                }
                Ok(())
            }
            Query::SlidingWindow { window } => {
                if window == 0 {
                    return Err("window length must be at least 1".into());
                }
                Ok(())
            }
        }
    }

    /// The query's short CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Query::Swor => "swor",
            Query::L1 { .. } => "l1",
            Query::ResidualHh { .. } => "rhh",
            Query::SlidingWindow { .. } => "window",
        }
    }

    /// The effective sample size of the underlying protocol: the
    /// scenario's `s` for SWOR and the window sampler, the theorems'
    /// derived sizes for L1 (`⌈10·ln(1/δ)/ε²⌉`) and residual heavy
    /// hitters (`⌈6·ln(1/(εδ))/ε⌉`).
    pub fn sample_size(&self, scenario_s: usize) -> usize {
        match *self {
            Query::Swor | Query::SlidingWindow { .. } => scenario_s,
            Query::L1 { eps, delta } => L1Config::new(eps, delta, 1).sample_size(),
            Query::ResidualHh { eps, delta } => ResidualHhConfig::new(eps, delta, 1).sample_size(),
        }
    }

    /// The duplication factor `ℓ` (L1 only).
    pub fn duplication(&self) -> Option<u64> {
        match *self {
            Query::L1 { eps, delta } => Some(L1Config::new(eps, delta, 1).duplication()),
            _ => None,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Query::Swor => write!(f, "swor"),
            Query::L1 { eps, delta } => write!(f, "l1:{eps},{delta}"),
            Query::ResidualHh { eps, delta } => write!(f, "rhh:{eps},{delta}"),
            Query::SlidingWindow { window } => write!(f, "window:{window}"),
        }
    }
}

/// The query-specific part of a [`crate::driver::RunReport`].
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// The sample itself is the answer.
    Swor,
    /// The L1 tracker's output `W̃ = s·u/ℓ`, checked against the exact
    /// stream weight.
    L1 {
        /// The estimate `W̃`.
        estimate: f64,
        /// The exact total weight of the stream.
        true_weight: f64,
        /// `|W̃ - W| / W`.
        rel_error: f64,
        /// The duplication factor `ℓ` in force.
        ell: u64,
    },
    /// The residual-heavy-hitter candidate set (top `2/ε` sample items by
    /// weight) with exact-oracle recall.
    ResidualHh {
        /// The candidate items, heaviest first.
        candidates: Vec<Item>,
        /// Size of the oracle's required set.
        required: usize,
        /// Fraction of the required set recovered (1.0 when empty).
        recall: f64,
    },
    /// The sliding-window sample (the report's `sample` field, filtered
    /// to the final window).
    SlidingWindow {
        /// Window length, in arrivals.
        window: u64,
    },
}

/// Everything a flat query execution hands back to the driver.
pub(crate) struct FlatOutcome {
    pub items: u64,
    pub weight: f64,
    /// Wall clock of the engine run alone (dispatch + protocol +
    /// shutdown) — answer post-processing such as the rhh oracle's
    /// second streaming pass is excluded, so reported throughput stays
    /// comparable across queries.
    pub elapsed: Duration,
    pub sample: Vec<Keyed>,
    pub metrics: dwrs_sim::Metrics,
    pub u: Option<f64>,
    pub coord_stats: Option<CoordStats>,
    pub final_epoch: Option<i64>,
    pub dispatcher: Option<DispatcherStats>,
    pub answer: QueryAnswer,
}

/// Canonical seed derivation for L1 sites (per deployment seed and site).
/// Public so daemon attach clients derive the same per-site keys as the
/// batch engines for a given deployment seed.
pub fn l1_site_seed(seed: u64, i: usize) -> u64 {
    mix(seed, 0x1151_0000 + i as u64)
}

/// Canonical seed derivation for window-sampler sites (see
/// [`l1_site_seed`]).
pub fn window_site_seed(seed: u64, i: usize) -> u64 {
    mix(seed, 0x3140_0000 + i as u64)
}

/// Executes a flat (single-coordinator) scenario for its query.
pub(crate) fn run_query_flat(
    sc: &Scenario,
    source: Box<dyn ItemSource>,
) -> Result<FlatOutcome, RuntimeError> {
    let t0 = Instant::now();
    let s_eff = sc.query.sample_size(sc.s);
    match sc.query {
        Query::Swor | Query::ResidualHh { .. } => {
            let cfg = sc.swor_config_with(s_eff, sc.k);
            let sites: Vec<_> = (0..sc.k).map(|i| swor_site(&cfg, sc.seed, i)).collect();
            let coordinator = swor_coordinator(cfg, sc.seed);
            let (items, weight, out, dispatcher) = drive_flat(sc, source, sites, coordinator)?;
            let elapsed = t0.elapsed();
            let sample = out.coordinator.sample();
            let answer = match sc.query {
                Query::ResidualHh { eps, delta } => residual_answer(sc, &sample, eps, delta)?,
                _ => QueryAnswer::Swor,
            };
            Ok(FlatOutcome {
                items,
                weight,
                elapsed,
                u: Some(out.coordinator.u()),
                coord_stats: Some(out.coordinator.stats),
                final_epoch: out.coordinator.epoch(),
                sample,
                metrics: out.metrics,
                dispatcher,
                answer,
            })
        }
        Query::L1 { .. } => {
            let ell = sc.query.duplication().expect("l1 has a duplication factor");
            let cfg = sc.swor_config_with(s_eff, sc.k);
            let sites: Vec<_> = (0..sc.k)
                .map(|i| L1Site::new(&cfg, ell, l1_site_seed(sc.seed, i)))
                .collect();
            let coordinator = swor_coordinator(cfg, sc.seed);
            let (items, weight, out, dispatcher) = drive_flat(sc, source, sites, coordinator)?;
            let elapsed = t0.elapsed();
            let sample = out.coordinator.sample();
            let answer = l1_answer(s_eff, ell, l1_u(&sample, s_eff), weight);
            Ok(FlatOutcome {
                items,
                weight,
                elapsed,
                u: Some(out.coordinator.u()),
                coord_stats: Some(out.coordinator.stats),
                final_epoch: out.coordinator.epoch(),
                sample,
                metrics: out.metrics,
                dispatcher,
                answer,
            })
        }
        Query::SlidingWindow { window } => {
            let sites: Vec<_> = (0..sc.k)
                .map(|i| WindowSite::new(s_eff, window, window_site_seed(sc.seed, i)))
                .collect();
            let coordinator = WindowCoordinator::new(s_eff, window);
            let (items, weight, out, dispatcher) = drive_flat(sc, source, sites, coordinator)?;
            let elapsed = t0.elapsed();
            Ok(FlatOutcome {
                items,
                weight,
                elapsed,
                sample: out.coordinator.sample(),
                metrics: out.metrics,
                u: None,
                coord_stats: None,
                final_epoch: None,
                dispatcher,
                answer: QueryAnswer::SlidingWindow { window },
            })
        }
    }
}

/// Everything a tree query execution hands back to the driver.
pub(crate) struct TreeOutcome {
    pub items: u64,
    pub weight: f64,
    /// Wall clock of the engine run alone (see [`FlatOutcome::elapsed`]).
    pub elapsed: Duration,
    pub out: TreeOutput,
    pub dispatcher: Option<DispatcherStats>,
    pub answer: QueryAnswer,
}

/// Executes a tree (groups + aggregators + root) scenario for its query.
pub(crate) fn run_query_tree(
    sc: &Scenario,
    source: Box<dyn ItemSource>,
    groups: usize,
    sync_every: u64,
) -> Result<TreeOutcome, RuntimeError> {
    let t0 = Instant::now();
    let s_eff = sc.query.sample_size(sc.s);
    let k_per_group = sc.k / groups;
    let group_cfg = sc.swor_config_with(s_eff, k_per_group);
    let (items, weight, mut out, dispatcher) = match sc.query {
        Query::Swor | Query::ResidualHh { .. } => drive_tree(
            sc,
            source,
            groups,
            sync_every,
            Some(&group_cfg),
            |gi, i| swor_site(&group_cfg, tree_group_seed(sc.seed, gi), i),
            |gi| swor_coordinator(group_cfg.clone(), tree_group_seed(sc.seed, gi)),
            s_eff,
        )?,
        Query::L1 { .. } => {
            let ell = sc.query.duplication().expect("l1 has a duplication factor");
            drive_tree(
                sc,
                source,
                groups,
                sync_every,
                None,
                |gi, i| {
                    L1Site::new(
                        &group_cfg,
                        ell,
                        l1_site_seed(tree_group_seed(sc.seed, gi), i),
                    )
                },
                |gi| swor_coordinator(group_cfg.clone(), tree_group_seed(sc.seed, gi)),
                s_eff,
            )?
        }
        Query::SlidingWindow { window } => drive_tree(
            sc,
            source,
            groups,
            sync_every,
            None,
            |gi, i| {
                WindowSite::new(
                    s_eff,
                    window,
                    window_site_seed(tree_group_seed(sc.seed, gi), i),
                )
            },
            |_| WindowCoordinator::new(s_eff, window),
            s_eff,
        )?,
    };
    let elapsed = t0.elapsed();
    let answer = match sc.query {
        Query::Swor => QueryAnswer::Swor,
        Query::ResidualHh { eps, delta } => residual_answer(sc, &out.root_sample, eps, delta)?,
        Query::L1 { .. } => {
            let ell = sc.query.duplication().expect("l1 has a duplication factor");
            l1_answer(s_eff, ell, l1_u(&out.root_sample, s_eff), weight)
        }
        Query::SlidingWindow { window } => {
            // Each group expired by its *own* watermark (≤ the global one);
            // re-filter the merged sample by the true global cutoff before
            // answering, so no globally-expired entry survives.
            let cutoff = items.saturating_sub(window);
            let mut merged: Vec<Keyed> = out
                .group_samples
                .iter()
                .flatten()
                .filter(|kd| kd.item.id >= cutoff)
                .copied()
                .collect();
            // No dedup needed: groups partition the sites, so no item id
            // can appear in two group samples.
            merged.sort_by(|a, b| b.key.total_cmp(&a.key));
            merged.truncate(s_eff);
            out.root_sample = merged;
            QueryAnswer::SlidingWindow { window }
        }
    };
    Ok(TreeOutcome {
        items,
        weight,
        elapsed,
        out,
        dispatcher,
        answer,
    })
}

/// Algorithm 1's output statistic: the s-th largest key of the *query*
/// set (sample ∪ withheld, which `SworCoordinator::sample` and the tree's
/// root merge both return sorted descending) — not of the released set
/// alone, since withheld heavy levels carry the largest keys. Zero until
/// the sample fills (no estimate yet).
fn l1_u(sample: &[Keyed], s: usize) -> f64 {
    dwrs_apps::live::sth_largest_key(sample, s)
}

/// Assembles the L1 answer from the s-th-largest key statistic.
fn l1_answer(s: usize, ell: u64, u: f64, true_weight: f64) -> QueryAnswer {
    let estimate = dwrs_apps::live::l1_estimate(s, ell, u);
    let rel_error = if true_weight > 0.0 {
        (estimate - true_weight).abs() / true_weight
    } else {
        0.0
    };
    QueryAnswer::L1 {
        estimate,
        true_weight,
        rel_error,
        ell,
    }
}

/// Assembles the residual-heavy-hitter answer: top `2/ε` sample items by
/// weight, with recall measured against the exact oracle on a second
/// streaming pass over the scenario's seeded source.
fn residual_answer(
    sc: &Scenario,
    sample: &[Keyed],
    eps: f64,
    delta: f64,
) -> Result<QueryAnswer, RuntimeError> {
    let cfg = ResidualHhConfig::new(eps, delta, sc.k.max(1));
    let candidates: Vec<Item> = dwrs_apps::live::rhh_candidates(sample, cfg.output_size())
        .into_iter()
        .map(|kd| kd.item)
        .collect();
    // Second pass: the exact oracle over the identical stream (sources are
    // seeded and deterministic, CSVs reopen).
    let mut oracle = ResidualOracle::new(eps);
    let source = sc
        .source()
        .map_err(|e| RuntimeError::InvalidScenario(format!("oracle pass: {e}")))?;
    for item in source {
        oracle.observe(item);
    }
    let required = oracle.required();
    let r = recall(&required, &candidates);
    Ok(QueryAnswer::ResidualHh {
        candidates,
        required: required.len(),
        recall: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_specs_parse() {
        assert_eq!(Query::parse("swor").unwrap(), Query::Swor);
        assert_eq!(
            Query::parse("l1:0.1,0.05").unwrap(),
            Query::L1 {
                eps: 0.1,
                delta: 0.05
            }
        );
        assert_eq!(
            Query::parse("l1").unwrap(),
            Query::L1 {
                eps: 0.2,
                delta: 0.25
            }
        );
        assert_eq!(
            Query::parse("rhh:0.25").unwrap(),
            Query::ResidualHh {
                eps: 0.25,
                delta: 0.05
            }
        );
        assert_eq!(
            Query::parse("window:5000").unwrap(),
            Query::SlidingWindow { window: 5_000 }
        );
        assert!(Query::parse("nope").unwrap_err().contains("unknown query"));
        assert!(Query::parse("l1:abc").is_err());
        assert!(Query::parse("l1:0.9").is_err(), "eps out of range");
        assert!(Query::parse("rhh:0.2,1.5").is_err(), "delta out of range");
        assert!(Query::parse("window:0").is_err());
        assert_eq!(
            Query::parse("l1:0.1,0.05").unwrap().to_string(),
            "l1:0.1,0.05"
        );
    }

    #[test]
    fn derived_sample_sizes_match_the_theorems() {
        // rhh: ceil(6·ln(1/(0.1·0.05))/0.1) = 318 (Theorem 4).
        assert_eq!(
            Query::ResidualHh {
                eps: 0.1,
                delta: 0.05
            }
            .sample_size(64),
            318
        );
        // l1: ceil(10·ln(20)/0.01) = 2996 (Proposition 8).
        assert_eq!(
            Query::L1 {
                eps: 0.1,
                delta: 0.05
            }
            .sample_size(64),
            2996
        );
        // swor/window: the scenario's s.
        assert_eq!(Query::Swor.sample_size(64), 64);
        assert_eq!(Query::SlidingWindow { window: 10 }.sample_size(64), 64);
        assert!(Query::Swor.duplication().is_none());
        assert!(Query::L1 {
            eps: 0.2,
            delta: 0.25
        }
        .duplication()
        .is_some());
    }
}
