//! The long-lived sampling daemon: a persistent, connection-accepting
//! coordinator process hosting many concurrent **named streams**.
//!
//! The one-shot [`crate::tcp::serve_coordinator`] server runs exactly one
//! stream for exactly `k` sites and exits at the final drain. The paper's
//! model, however, is *continuous monitoring*: the coordinator must hold a
//! valid weighted SWOR — and answer the application queries derived from
//! it — **at every time step**, not only at the end. [`Daemon`] is that
//! model as a process:
//!
//! * **Multi-tenant**: each stream is created by name
//!   ([`CtrlMsg::Create`]) with its own `k`, `s`, and application query,
//!   and runs an independent stock [`SworCoordinator`] on its own
//!   processor thread.
//! * **Attach / detach / reconnect**: sites join mid-run
//!   ([`CtrlMsg::Attach`]), may disconnect (a clean socket close at a
//!   frame boundary detaches the slot without faulting the stream — the
//!   deliberate difference from the one-shot server, where a close before
//!   `Eof` is a fault), and may reattach later to resume. Reattached
//!   links are **replayed** the coordinator's current broadcast state
//!   (saturated levels, the epoch threshold) so a reconnecting site
//!   filters exactly as a continuously-connected one would.
//! * **Live queries while streams run** ([`CtrlMsg::Query`]): the
//!   per-stream processor serializes query commands into the same queue
//!   as data frames, so every [`LiveSnapshot`] is taken at a well-defined
//!   instant of the stream — Theorem 3's "valid SWOR at every step" made
//!   observable.
//! * **Graceful shutdown**: [`Daemon::shutdown`] (or a
//!   [`CtrlMsg::Shutdown`] control frame) drains every stream with the
//!   same flush → `Eof` → drain discipline as the engines, returning each
//!   stream's final snapshot.
//!
//! Wire protocol: control frames are [`CtrlMsg`] / [`CtrlResp`] over the
//! standard `[u32 LE length][payload]` framing; after a successful attach
//! the same connection switches to the data-plane framing
//! (`TAG_BATCH`/`TAG_EOF` upstream, `TAG_DOWN` downstream) shared with
//! the one-shot TCP transport. See `docs/DAEMON.md` for the operator
//! guide and byte-level layouts.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dwrs_core::ctrl::{
    CtrlMsg, CtrlResp, LiveQueryKind, LiveSnapshot, MetricsReport, StreamMetrics, TAG_ATTACH,
    TAG_CREATE, TAG_DRAIN, TAG_METRICS, TAG_QUERY, TAG_SHUTDOWN,
};
use dwrs_core::framed::{decode_seq, FrameCodec, FramedReader, FramedWriter};
use dwrs_core::swor::levels::epoch_threshold;
use dwrs_core::swor::{DownMsg, SworConfig, SworCoordinator, UpMsg};
use dwrs_core::{Item, Keyed};
use dwrs_sim::{swor_coordinator, CoordinatorNode, Meter, Metrics, Outbox, SiteNode};
use dwrs_stats::QuantileSketch;
use dwrs_telemetry::{
    global, summarize, Counter, Gauge, Histogram, TraceKind, TraceRing, DEFAULT_RING_CAPACITY,
    METRIC_BROADCAST_EVENTS_TOTAL, METRIC_CONNECTIONS_TOTAL, METRIC_CTRL_ERRORS_TOTAL,
    METRIC_DOWN_MESSAGES_TOTAL, METRIC_ITEMS_TOTAL, METRIC_LIVE_QUERIES_TOTAL,
    METRIC_QUERY_LATENCY_NS, METRIC_SCRAPES_TOTAL, METRIC_SITES_ATTACHED, METRIC_STREAMS_ACTIVE,
    METRIC_UP_MESSAGES_TOTAL, METRIC_WIRE_BYTES_TOTAL,
};

use crate::config::RuntimeConfig;
use crate::engine::flush;
use crate::query::Query;
use crate::tcp::{down_reader, tcp_batch_sender, tcp_down_sender, TAG_BATCH, TAG_EOF};
use crate::transport::{BatchSender, UpFrame};
use crate::RuntimeError;

/// Daemon-wide configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Base seed; each stream's coordinator seed is derived from it and
    /// the stream name, so restarting the daemon reproduces a run.
    pub seed: u64,
    /// Bound (in commands) of each stream processor's queue — the same
    /// backpressure role as [`RuntimeConfig::queue_capacity`].
    pub queue_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            queue_capacity: 128,
        }
    }
}

/// Derives a stream's coordinator seed from the daemon seed and the
/// stream name (FNV-1a over the name, xor-folded with the base seed).
fn stream_seed(seed: u64, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in name.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- stream side

/// Lifecycle of one site slot within a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Never attached.
    Empty,
    /// A connection currently owns the slot.
    Attached,
    /// The connection went away without `Eof`; the slot may be resumed.
    Detached,
    /// The slot sent `Eof`; it is finished for good.
    Finished,
}

/// Commands serialized into a stream processor's queue. Data frames and
/// queries share the queue, so a query's answer reflects exactly the
/// frames that preceded it.
enum StreamCmd {
    /// Phase 1 of attach: validate and claim the slot. The connection
    /// handler writes the `Attached` response on the socket *before*
    /// registering the down link (phase 2), so the processor can never
    /// race a broadcast onto the socket mid-response.
    Reserve {
        site: usize,
        reply: mpsc::SyncSender<Result<(bool, u64), String>>,
    },
    /// Phase 2 of attach: register the slot's down link and replay the
    /// coordinator's current broadcast state onto it.
    Link {
        site: usize,
        down: Box<dyn crate::transport::DownSender<DownMsg>>,
    },
    /// One decoded upstream batch with its stream-progress watermark.
    Up {
        site: usize,
        msgs: Vec<UpMsg>,
        items: u64,
    },
    /// The site finished its stream.
    Eof { site: usize },
    /// The connection went away without `Eof`; the slot may reattach.
    Detach { site: usize },
    /// A live query against the current state.
    Query {
        kind: LiveQueryKind,
        arg: u64,
        reply: mpsc::SyncSender<Result<LiveSnapshot, String>>,
    },
    /// Finish once no slot is attached; reply with the final snapshot.
    Drain {
        reply: mpsc::SyncSender<LiveSnapshot>,
    },
    /// A telemetry scrape section for this stream, answered from the
    /// processor loop — the same command-queue consistency as live
    /// queries, so the scraped counters reflect exactly the frames that
    /// preceded the scrape.
    Metrics {
        /// How many trailing trace events to include.
        events: u32,
        reply: mpsc::SyncSender<StreamMetrics>,
    },
}

/// A stream's command sender plus a shared depth counter, so telemetry
/// can report each processor queue's instantaneous occupancy. The
/// counter is incremented on every successful send and decremented by
/// the processor as it dequeues — cheap relaxed atomics on both sides.
#[derive(Clone)]
struct CmdSender {
    tx: mpsc::SyncSender<StreamCmd>,
    depth: Arc<AtomicU64>,
}

impl CmdSender {
    fn send(&self, cmd: StreamCmd) -> Result<(), mpsc::SendError<StreamCmd>> {
        // ordering: Relaxed — `depth` is a statistics-only occupancy gauge;
        // nothing is published through it (the channel itself synchronizes
        // the command), and a momentarily stale reading is fine.
        self.depth.fetch_add(1, Ordering::Relaxed);
        let res = self.tx.send(cmd);
        if res.is_err() {
            // ordering: Relaxed — undo of the optimistic add above; the
            // command never entered the queue.
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        res
    }
}

/// Global-registry handles a stream processor updates, resolved once at
/// stream creation so the hot loop never touches the registry lock.
struct StreamCtrs {
    items: Arc<Counter>,
    up_msgs: Arc<Counter>,
    down_msgs: Arc<Counter>,
    wire_bytes: Arc<Counter>,
    broadcasts: Arc<Counter>,
    live_queries: Arc<Counter>,
    sites_attached: Arc<Gauge>,
    streams_active: Arc<Gauge>,
    latency: Arc<Histogram>,
}

impl StreamCtrs {
    fn new() -> Self {
        let reg = &global().registry;
        Self {
            items: reg.counter(METRIC_ITEMS_TOTAL),
            up_msgs: reg.counter(METRIC_UP_MESSAGES_TOTAL),
            down_msgs: reg.counter(METRIC_DOWN_MESSAGES_TOTAL),
            wire_bytes: reg.counter(METRIC_WIRE_BYTES_TOTAL),
            broadcasts: reg.counter(METRIC_BROADCAST_EVENTS_TOTAL),
            live_queries: reg.counter(METRIC_LIVE_QUERIES_TOTAL),
            sites_attached: reg.gauge(METRIC_SITES_ATTACHED),
            streams_active: reg.gauge(METRIC_STREAMS_ACTIVE),
            latency: reg.histogram(METRIC_QUERY_LATENCY_NS),
        }
    }
}

/// One named stream's processor-side state.
struct StreamState {
    name: String,
    query: Query,
    /// Effective sample size (the query may inflate the scenario `s`).
    s_eff: usize,
    /// L1 duplication factor ℓ (1 for non-L1 streams).
    ell: u64,
    /// Output size for `rhh-so-far` (top candidates by weight).
    rhh_output: usize,
    /// The stream's own window length, when it is a sliding-window query.
    window_default: Option<u64>,
    coordinator: SworCoordinator,
    downs: Vec<Option<Box<dyn crate::transport::DownSender<DownMsg>>>>,
    slots: Vec<SlotState>,
    /// Per-slot stream-progress watermark (items observed, survives
    /// detach so a resumed slot keeps accumulating).
    slot_items: Vec<u64>,
    metrics: Metrics,
    /// This stream's structured-event ring (lifecycle, epochs,
    /// saturations), sharing the process-wide epoch so event timestamps
    /// are comparable across streams.
    trace: TraceRing,
    /// Per-stream live-query service latencies (nanoseconds).
    latency: QuantileSketch,
    /// Live queries answered so far.
    queries: u64,
    /// Bound of the processor's command queue.
    queue_capacity: u32,
    /// Shared occupancy counter for the command queue (see [`CmdSender`]).
    depth: Arc<AtomicU64>,
    /// Cached global-registry handles.
    ctrs: StreamCtrs,
}

impl StreamState {
    fn drain_complete(&self) -> bool {
        !self.slots.contains(&SlotState::Attached)
    }

    fn close_down(&mut self, site: usize) {
        if let Some(mut d) = self.downs[site].take() {
            d.close();
        }
    }

    /// The live-query kind that answers this stream's *own* query —
    /// the kind the final drain snapshot is reported as, so an L1
    /// stream drains to its weight estimate, a window stream to its
    /// window survivors, and so on.
    fn natural_kind(&self) -> LiveQueryKind {
        match self.query {
            Query::Swor => LiveQueryKind::CurrentSample,
            Query::L1 { .. } => LiveQueryKind::L1Now,
            Query::ResidualHh { .. } => LiveQueryKind::RhhSoFar,
            Query::SlidingWindow { .. } => LiveQueryKind::WindowNow,
        }
    }

    /// Builds the live answer at this instant. `arg` is the window length
    /// for `window-now` (0 = the stream's own window).
    fn live_snapshot(&self, kind: LiveQueryKind, arg: u64) -> Result<LiveSnapshot, String> {
        use dwrs_apps::live;
        let full = self.coordinator.sample();
        let items: u64 = self.slot_items.iter().sum();
        let u = live::sth_largest_key(&full, self.s_eff);
        let (estimate, sample) = match kind {
            LiveQueryKind::CurrentSample => (weight_sum(&full), full),
            LiveQueryKind::L1Now => (live::l1_estimate(self.s_eff, self.ell, u), full),
            LiveQueryKind::RhhSoFar => {
                let cands = live::rhh_candidates(&full, self.rhh_output);
                (weight_sum(&cands), cands)
            }
            LiveQueryKind::WindowNow => {
                let window = if arg > 0 {
                    arg
                } else {
                    self.window_default.ok_or_else(|| {
                        format!(
                            "window-now on a '{}' stream needs an explicit window length",
                            self.query.name()
                        )
                    })?
                };
                let survivors = live::window_survivors(&full, items, window);
                (weight_sum(&survivors), survivors)
            }
            LiveQueryKind::Stats => (0.0, Vec::new()),
        };
        Ok(LiveSnapshot {
            kind,
            items,
            epoch: self.coordinator.epoch(),
            u,
            estimate,
            ell: self.ell,
            sites_attached: count_state(&self.slots, SlotState::Attached),
            sites_eof: count_state(&self.slots, SlotState::Finished),
            up_msgs: self.metrics.up_total,
            down_msgs: self.metrics.down_total,
            up_bytes: self.metrics.up_bytes,
            down_bytes: self.metrics.down_bytes,
            broadcast_events: self.metrics.broadcast_events,
            sample,
        })
    }
}

fn weight_sum(sample: &[Keyed]) -> f64 {
    sample.iter().map(|kd| kd.item.weight).sum()
}

fn count_state(slots: &[SlotState], want: SlotState) -> u32 {
    slots.iter().filter(|s| **s == want).count() as u32
}

/// Routes one round's coordinator responses over the daemon's *optional*
/// down links. Metering follows the paper exactly as [`crate::engine`]'s
/// router: a unicast costs 1 message, a broadcast costs the configured
/// `k` — whether or not every slot currently has a live link (a detached
/// site would have been sent the message; it will be replayed the
/// resulting state on reattach).
fn route_live(
    outbox: &mut Outbox<DownMsg>,
    downs: &mut [Option<Box<dyn crate::transport::DownSender<DownMsg>>>],
    metrics: &mut Metrics,
    trace: &TraceRing,
) {
    let k = downs.len();
    let (unicasts, broadcasts) = outbox.take();
    for (to, msg) in unicasts {
        metrics.count_unicast(msg.kind(), msg.units(), msg.wire_bytes());
        if let Some(d) = downs[to].as_mut() {
            let _ = d.send(&msg);
        }
    }
    for msg in broadcasts {
        match &msg {
            DownMsg::UpdateEpoch { threshold } => {
                trace.record(TraceKind::EpochBroadcast, threshold.to_bits(), 0);
            }
            DownMsg::LevelSaturated { level } => {
                trace.record(TraceKind::Saturation, u64::from(*level), 0);
            }
        }
        metrics.count_broadcast(msg.kind(), msg.units(), msg.wire_bytes(), k);
        for d in downs.iter_mut().flatten() {
            let _ = d.send(&msg);
        }
    }
}

/// The per-stream processor loop: owns the coordinator, consumes the
/// serialized command queue, exits after a completed drain (or when the
/// daemon is torn down and every command sender is gone).
fn stream_processor(mut st: StreamState, rx: mpsc::Receiver<StreamCmd>) {
    let mut outbox = Outbox::new();
    let mut drain_reply: Option<mpsc::SyncSender<LiveSnapshot>> = None;
    loop {
        let Ok(cmd) = rx.recv() else {
            break;
        };
        // ordering: Relaxed — metrics-only occupancy gauge; the `recv`
        // above already synchronized with the matching send.
        st.depth.fetch_sub(1, Ordering::Relaxed);
        match cmd {
            StreamCmd::Reserve { site, reply } => {
                let result = if site >= st.slots.len() {
                    Err(format!(
                        "site {site} out of range (stream has {} slots)",
                        st.slots.len()
                    ))
                } else {
                    match st.slots[site] {
                        SlotState::Attached => Err(format!("site {site} is already attached")),
                        SlotState::Finished => Err(format!("site {site} already sent Eof")),
                        prev => {
                            st.slots[site] = SlotState::Attached;
                            let resumed = prev == SlotState::Detached;
                            let kind = if resumed {
                                TraceKind::Reconnect
                            } else {
                                TraceKind::Attach
                            };
                            st.trace.record(kind, site as u64, st.slot_items[site]);
                            st.ctrs.sites_attached.add(1);
                            Ok((resumed, st.slot_items[site]))
                        }
                    }
                };
                let _ = reply.send(result);
            }
            StreamCmd::Link { site, down } => {
                st.downs[site] = Some(down);
                // Replay the coordinator's broadcast state so the fresh
                // link filters exactly as a continuously-connected site:
                // one LevelSaturated per saturated level, plus the current
                // epoch threshold. Metered as unicasts — they go to one
                // site, not all k.
                let mut replayed: Vec<DownMsg> = st
                    .coordinator
                    .snapshot()
                    .levels
                    .iter()
                    .filter(|l| l.saturated)
                    .map(|l| DownMsg::LevelSaturated { level: l.level })
                    .collect();
                if let Some(j) = st.coordinator.epoch() {
                    replayed.push(DownMsg::UpdateEpoch {
                        threshold: epoch_threshold(j, st.coordinator.config().r()),
                    });
                }
                for msg in replayed {
                    st.metrics
                        .count_unicast(msg.kind(), msg.units(), msg.wire_bytes());
                    if let Some(d) = st.downs[site].as_mut() {
                        let _ = d.send(&msg);
                    }
                }
            }
            StreamCmd::Up { site, msgs, items } => {
                st.slot_items[site] += items;
                // Global counters are frame-granular: one snapshot of the
                // per-stream Metrics before the frame, deltas added after.
                let before = (
                    st.metrics.up_total,
                    st.metrics.down_total,
                    st.metrics.up_bytes + st.metrics.down_bytes,
                    st.metrics.broadcast_events,
                );
                for msg in msgs {
                    st.metrics
                        .count_up(msg.kind(), msg.units(), msg.wire_bytes());
                    CoordinatorNode::receive(&mut st.coordinator, site, msg, &mut outbox);
                    route_live(&mut outbox, &mut st.downs, &mut st.metrics, &st.trace);
                }
                st.ctrs.items.add(items);
                st.ctrs.up_msgs.add(st.metrics.up_total - before.0);
                st.ctrs.down_msgs.add(st.metrics.down_total - before.1);
                st.ctrs
                    .wire_bytes
                    .add(st.metrics.up_bytes + st.metrics.down_bytes - before.2);
                st.ctrs
                    .broadcasts
                    .add(st.metrics.broadcast_events - before.3);
            }
            StreamCmd::Eof { site } => {
                if st.slots[site] == SlotState::Attached {
                    st.ctrs.sites_attached.add(-1);
                }
                st.slots[site] = SlotState::Finished;
                st.trace
                    .record(TraceKind::Eof, site as u64, st.slot_items[site]);
                // Close this slot's down link now (the one-shot engine
                // closes all links at the end of the run; a daemon stream
                // has no end, so the per-site drain loop must terminate
                // here for the client's finish() to return).
                st.close_down(site);
            }
            StreamCmd::Detach { site } => {
                if st.slots[site] == SlotState::Attached {
                    st.slots[site] = SlotState::Detached;
                    st.ctrs.sites_attached.add(-1);
                    st.trace
                        .record(TraceKind::Detach, site as u64, st.slot_items[site]);
                }
                st.close_down(site);
            }
            StreamCmd::Query { kind, arg, reply } => {
                let t0 = Instant::now();
                let _ = reply.send(st.live_snapshot(kind, arg));
                let nanos = t0.elapsed().as_nanos() as f64;
                st.latency.observe(nanos);
                st.ctrs.latency.observe(nanos);
                st.ctrs.live_queries.inc();
                st.queries += 1;
            }
            StreamCmd::Drain { reply } => {
                drain_reply = Some(reply);
            }
            StreamCmd::Metrics { events, reply } => {
                let _ = reply.send(StreamMetrics {
                    stream: st.name.clone(),
                    query: st.query.name().to_string(),
                    items: st.slot_items.iter().sum(),
                    sites_attached: count_state(&st.slots, SlotState::Attached),
                    sites_eof: count_state(&st.slots, SlotState::Finished),
                    // ordering: Relaxed — instantaneous gauge snapshot for
                    // a metrics report; no ordering relationship is needed.
                    queue_depth: st.depth.load(Ordering::Relaxed) as u32,
                    queue_capacity: st.queue_capacity,
                    queries: st.queries,
                    latency: summarize(&mut st.latency),
                    events: st.trace.snapshot(events as usize),
                });
            }
        }
        if let Some(reply) = drain_reply.take() {
            if st.drain_complete() {
                for site in 0..st.downs.len() {
                    st.close_down(site);
                }
                let snap = st.live_snapshot(st.natural_kind(), 0).unwrap_or_else(|_| {
                    // The natural kind never fails (a window stream
                    // has a default window); defensive fallback.
                    st.live_snapshot(LiveQueryKind::Stats, 0).unwrap()
                });
                let items: u64 = st.slot_items.iter().sum();
                st.trace.record(TraceKind::Drain, 0, items);
                global().trace.record(TraceKind::Drain, 0, items);
                st.ctrs.streams_active.add(-1);
                let _ = reply.send(snap);
                return;
            }
            drain_reply = Some(reply);
        }
    }
    // Every command sender is gone without a drain (daemon teardown
    // mid-stream): the stream is no longer live.
    st.ctrs.streams_active.add(-1);
}

// ------------------------------------------------------------- daemon side

/// A handle to one stream's processor.
struct StreamHandle {
    cmd: CmdSender,
    join: JoinHandle<()>,
}

/// State shared between the listener, connection handlers, and the
/// [`Daemon`] handle.
struct Shared {
    cfg: DaemonConfig,
    accepting: AtomicBool,
    streams: Mutex<HashMap<String, StreamHandle>>,
    /// Final snapshots of drained streams, in drain order — the daemon's
    /// run report.
    drained: Mutex<Vec<(String, LiveSnapshot)>>,
    /// Total streams ever created (drained streams stay counted).
    streams_created: AtomicU64,
    /// When the daemon bound its listener, for scrape uptime.
    started: Instant,
}

/// A running sampling daemon.
///
/// Binds a listener, then serves control connections until
/// [`Daemon::shutdown`] is called (from any thread — the handle is
/// `Sync`) or a [`CtrlMsg::Shutdown`] control frame arrives.
///
/// # Example
///
/// ```
/// use dwrs_core::ctrl::LiveQueryKind;
/// use dwrs_core::swor::SworConfig;
/// use dwrs_core::Item;
/// use dwrs_runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig};
/// use dwrs_runtime::RuntimeConfig;
/// use dwrs_sim::swor_site;
///
/// let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).unwrap();
/// let addr = daemon.local_addr();
///
/// // Create a stream and attach one site.
/// let mut ctrl = CtrlClient::connect(addr).unwrap();
/// ctrl.create("demo", 1, 8, "swor").unwrap();
/// let site = swor_site(&SworConfig::new(8, 1), 42, 0);
/// let mut client =
///     AttachClient::attach(addr, "demo", 0, site, &RuntimeConfig::default()).unwrap();
///
/// // Feed items, then query the live sample mid-run.
/// client.feed((0..1000).map(Item::unit)).unwrap();
/// client.finish().unwrap();
/// let snap = ctrl.snapshot("demo", LiveQueryKind::CurrentSample, 0).unwrap();
/// assert_eq!(snap.items, 1000);
/// assert_eq!(snap.sample.len(), 8);
///
/// let final_snap = ctrl.drain_stream("demo").unwrap();
/// assert_eq!(final_snap.sites_eof, 1);
/// daemon.shutdown();
/// ```
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_join: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Daemon({})", self.addr)
    }
}

impl Daemon {
    /// Binds `addr` and starts accepting control connections.
    ///
    /// Raises `RLIMIT_NOFILE` soft → hard first (best effort): a daemon
    /// hosting thousands of attached sites holds one fd per data-plane
    /// connection, and the conservative default soft limit (often 1024)
    /// would otherwise cap the fleet long before memory does.
    pub fn bind(addr: impl ToSocketAddrs, cfg: DaemonConfig) -> io::Result<Daemon> {
        let _ = crate::reactor::raise_nofile_limit();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            accepting: AtomicBool::new(true),
            streams: Mutex::new(HashMap::new()),
            drained: Mutex::new(Vec::new()),
            streams_created: AtomicU64::new(0),
            started: Instant::now(),
        });
        let join = thread::spawn({
            let shared = Arc::clone(&shared);
            move || listener_loop(listener, shared, local)
        });
        Ok(Daemon {
            addr: local,
            shared,
            listener_join: Mutex::new(Some(join)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every stream (flush → `Eof` → drain
    /// discipline on each), and returns the final snapshots in drain
    /// order. Idempotent; safe to call from a signal-watcher thread while
    /// another thread blocks in [`Daemon::join`].
    pub fn shutdown(&self) -> Vec<(String, LiveSnapshot)> {
        let snaps = shutdown_impl(&self.shared, self.addr);
        let join = self.listener_join.lock().unwrap().take();
        if let Some(j) = join {
            let _ = j.join();
        }
        snaps
    }

    /// Blocks until the listener exits — i.e. until [`Daemon::shutdown`]
    /// is called from another thread or a [`CtrlMsg::Shutdown`] control
    /// frame arrives.
    pub fn join(&self) {
        let join = self.listener_join.lock().unwrap().take();
        if let Some(j) = join {
            let _ = j.join();
        }
    }

    /// Final snapshots of every stream drained so far (by control frame
    /// or shutdown), in drain order.
    pub fn drained(&self) -> Vec<(String, LiveSnapshot)> {
        self.shared.drained.lock().unwrap().clone()
    }
}

/// The shutdown path shared by [`Daemon::shutdown`] and the
/// [`CtrlMsg::Shutdown`] handler (which runs on a connection thread and
/// has no `Daemon` handle).
fn shutdown_impl(shared: &Shared, addr: SocketAddr) -> Vec<(String, LiveSnapshot)> {
    // ordering: AcqRel — the swap makes exactly one shutdown caller see
    // `true` and run the drain; Release publishes everything before the
    // shutdown decision to the admission-path Acquire loads, and Acquire
    // pairs with any prior swap. SeqCst would buy nothing: admission
    // correctness rests on the `streams` mutex, not this flag.
    let was_accepting = shared.accepting.swap(false, Ordering::AcqRel);
    if was_accepting {
        let streams_left = shared.streams.lock().unwrap().len() as u64;
        global().trace.record(TraceKind::Shutdown, streams_left, 0);
    }
    let handles: Vec<(String, StreamHandle)> = {
        let mut streams = shared.streams.lock().unwrap();
        streams.drain().collect()
    };
    let mut snaps = Vec::new();
    for (name, handle) in handles {
        let (tx, rx) = mpsc::sync_channel(1);
        if handle.cmd.send(StreamCmd::Drain { reply: tx }).is_ok() {
            if let Ok(snap) = rx.recv() {
                snaps.push((name, snap));
            }
        }
        let _ = handle.join.join();
    }
    shared.drained.lock().unwrap().extend(snaps.iter().cloned());
    if was_accepting {
        // Wake the listener's blocking accept so it can observe the flag.
        let _ = TcpStream::connect(addr);
    }
    snaps
}

fn listener_loop(listener: TcpListener, shared: Arc<Shared>, addr: SocketAddr) {
    for conn in listener.incoming() {
        // ordering: Acquire — pairs with the AcqRel swap in shutdown_impl;
        // seeing `false` here must also see the drained stream map.
        if !shared.accepting.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(e) => {
                // Accept-side fd exhaustion (EMFILE/ENFILE) is transient:
                // clients finishing or detaching free fds. Panicking here
                // would kill every stream; spinning would starve the
                // threads that could free capacity. Record it and back
                // off briefly, then keep serving.
                if crate::reactor::is_fd_exhausted(&e) {
                    let limit = crate::reactor::current_nofile_limit();
                    global().trace.record(TraceKind::FdExhausted, limit, 0);
                    thread::sleep(Duration::from_millis(50));
                }
                continue;
            }
        };
        let shared = Arc::clone(&shared);
        thread::spawn(move || handle_connection(shared, addr, stream));
    }
}

/// Creates a stream (idempotent). Returns the ack detail.
fn create_stream(
    shared: &Shared,
    name: &str,
    k: u32,
    s: u32,
    spec: &str,
) -> Result<&'static str, String> {
    let query = Query::parse(spec)?;
    query.validate()?;
    // ordering: Acquire — pairs with the AcqRel swap in shutdown_impl. The
    // check is advisory (the race against a concurrent shutdown is closed
    // by the `streams` mutex both paths take), so Acquire is enough.
    if !shared.accepting.load(Ordering::Acquire) {
        return Err("daemon is shutting down".to_string());
    }
    let mut streams = shared.streams.lock().unwrap();
    if streams.contains_key(name) {
        return Ok("exists");
    }
    let k_us = k as usize;
    let s_eff = query.sample_size(s as usize);
    let ell = query.duplication().unwrap_or(1);
    let rhh_output = match query {
        Query::ResidualHh { eps, delta } => {
            dwrs_apps::ResidualHhConfig::new(eps, delta, k_us).output_size()
        }
        // Non-rhh streams still answer rhh-so-far best-effort with the
        // default ε = 0.2 output size.
        _ => dwrs_apps::ResidualHhConfig::new(0.2, 0.05, k_us).output_size(),
    };
    let window_default = match query {
        Query::SlidingWindow { window } => Some(window),
        _ => None,
    };
    let coordinator = swor_coordinator(
        SworConfig::new(s_eff, k_us),
        stream_seed(shared.cfg.seed, name),
    );
    let queue_capacity = shared.cfg.queue_capacity.max(1);
    let depth = Arc::new(AtomicU64::new(0));
    let trace = TraceRing::with_epoch(DEFAULT_RING_CAPACITY, global().epoch());
    trace.record(TraceKind::Create, k.into(), s_eff as u64);
    let ctrs = StreamCtrs::new();
    ctrs.streams_active.add(1);
    // ordering: Relaxed — lifetime counter read only by metrics reports;
    // fetch_add atomicity alone keeps the count exact.
    shared.streams_created.fetch_add(1, Ordering::Relaxed);
    let st = StreamState {
        name: name.to_string(),
        query,
        s_eff,
        ell,
        rhh_output,
        window_default,
        coordinator,
        downs: (0..k_us).map(|_| None).collect(),
        slots: vec![SlotState::Empty; k_us],
        slot_items: vec![0; k_us],
        metrics: Metrics::new(),
        trace,
        latency: Histogram::local_sketch(),
        queries: 0,
        queue_capacity: queue_capacity as u32,
        depth: Arc::clone(&depth),
        ctrs,
    };
    let (tx, rx) = mpsc::sync_channel(queue_capacity);
    let join = thread::spawn(move || stream_processor(st, rx));
    streams.insert(
        name.to_string(),
        StreamHandle {
            cmd: CmdSender { tx, depth },
            join,
        },
    );
    Ok("created")
}

/// Looks up a stream's command sender.
fn stream_cmd(shared: &Shared, name: &str) -> Option<CmdSender> {
    shared
        .streams
        .lock()
        .unwrap()
        .get(name)
        .map(|h| h.cmd.clone())
}

/// The wire tag a control request travels under — recorded as the
/// payload of `ctrl-error` trace events so an operator can see *which*
/// request kind was refused.
fn ctrl_tag(msg: &CtrlMsg) -> u8 {
    match msg {
        CtrlMsg::Create { .. } => TAG_CREATE,
        CtrlMsg::Attach { .. } => TAG_ATTACH,
        CtrlMsg::Query { .. } => TAG_QUERY,
        CtrlMsg::Drain { .. } => TAG_DRAIN,
        CtrlMsg::Shutdown => TAG_SHUTDOWN,
        CtrlMsg::Metrics { .. } => TAG_METRICS,
    }
}

/// Counts one refused control request and drops a breadcrumb in the
/// daemon-level trace ring with the request's wire tag.
fn note_ctrl_error(tag: u8) {
    let t = global();
    t.registry.counter(METRIC_CTRL_ERRORS_TOTAL).inc();
    t.trace.record(TraceKind::CtrlError, u64::from(tag), 0);
}

/// Assembles one [`MetricsReport`]: the global registry snapshot and
/// daemon-level trace tail, plus one per-stream section answered through
/// each stream's own command queue — the same serialization as live
/// queries, so every section is consistent with the frames that preceded
/// it. Streams mid-drain are skipped (their processor no longer serves
/// the queue).
fn scrape(shared: &Shared, events: u32) -> MetricsReport {
    let t = global();
    t.registry.counter(METRIC_SCRAPES_TOTAL).inc();
    let senders: Vec<CmdSender> = shared
        .streams
        .lock()
        .unwrap()
        .values()
        .map(|h| h.cmd.clone())
        .collect();
    let mut streams = Vec::with_capacity(senders.len());
    for cmd in senders {
        let (rtx, rrx) = mpsc::sync_channel(1);
        if cmd.send(StreamCmd::Metrics { events, reply: rtx }).is_ok() {
            if let Ok(section) = rrx.recv() {
                streams.push(section);
            }
        }
    }
    streams.sort_by(|a, b| a.stream.cmp(&b.stream));
    MetricsReport {
        now_nanos: t.now_nanos(),
        uptime_nanos: shared.started.elapsed().as_nanos() as u64,
        // ordering: Relaxed — statistics snapshot; a report racing a
        // concurrent create may miss it, which is inherent to scraping.
        streams_created: shared.streams_created.load(Ordering::Relaxed),
        samples: t.registry.snapshot(),
        events: t.trace.snapshot(events as usize),
        streams,
    }
}

/// One control connection: a loop of control frames, until the client
/// goes away or the connection becomes a site's data link.
fn handle_connection(shared: Arc<Shared>, addr: SocketAddr, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    {
        let t = global();
        let conns = t.registry.counter(METRIC_CONNECTIONS_TOTAL);
        conns.inc();
        t.trace.record(TraceKind::Connection, conns.get(), 0);
    }
    // The down half is split off up front: once an attach succeeds, the
    // processor writes broadcasts on it while this thread keeps reading
    // data frames from the original.
    let Ok(down_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = FramedWriter::new(write_half);
    let mut reader = FramedReader::new(stream);
    loop {
        let msg = match reader.read_msg::<CtrlMsg>() {
            Ok(Some(m)) => m,
            // Clean close or garbage: drop the connection. Control
            // connections carry no stream state, so nothing to unwind.
            Ok(None) | Err(_) => return,
        };
        let req_tag = ctrl_tag(&msg);
        let resp = match msg {
            CtrlMsg::Create {
                stream: name,
                k,
                s,
                query,
            } => match create_stream(&shared, &name, k, s, &query) {
                Ok(info) => CtrlResp::Ok { info: info.into() },
                Err(msg) => CtrlResp::Err { msg },
            },
            CtrlMsg::Attach { stream: name, site } => {
                let site = site as usize;
                let Some(cmd) = stream_cmd(&shared, &name) else {
                    note_ctrl_error(req_tag);
                    if writer
                        .write_msg(&CtrlResp::Err {
                            msg: format!("no such stream {name:?}"),
                        })
                        .is_err()
                    {
                        return;
                    }
                    continue;
                };
                let (rtx, rrx) = mpsc::sync_channel(1);
                if cmd.send(StreamCmd::Reserve { site, reply: rtx }).is_err() {
                    note_ctrl_error(req_tag);
                    if writer
                        .write_msg(&CtrlResp::Err {
                            msg: format!("stream {name:?} is draining"),
                        })
                        .is_err()
                    {
                        return;
                    }
                    continue;
                }
                match rrx.recv() {
                    Ok(Ok((resumed, items))) => {
                        let ack = CtrlResp::Attached {
                            site: site as u32,
                            resumed,
                            items,
                        };
                        if writer.write_msg(&ack).is_err() {
                            // The slot is reserved but the client is gone;
                            // release it.
                            let _ = cmd.send(StreamCmd::Detach { site });
                            return;
                        }
                        // Response written: now it is safe to hand the
                        // processor the down link (two-phase attach — see
                        // StreamCmd::Reserve).
                        let down = tcp_down_sender::<DownMsg>(down_half);
                        if cmd.send(StreamCmd::Link { site, down }).is_err() {
                            return;
                        }
                        site_data_loop(&mut reader, site, &cmd);
                        return;
                    }
                    Ok(Err(msg)) => CtrlResp::Err { msg },
                    Err(_) => CtrlResp::Err {
                        msg: format!("stream {name:?} is draining"),
                    },
                }
            }
            CtrlMsg::Query {
                stream: name,
                kind,
                arg,
            } => match stream_cmd(&shared, &name) {
                None => CtrlResp::Err {
                    msg: format!("no such stream {name:?}"),
                },
                Some(cmd) => {
                    let (rtx, rrx) = mpsc::sync_channel(1);
                    let sent = cmd
                        .send(StreamCmd::Query {
                            kind,
                            arg,
                            reply: rtx,
                        })
                        .is_ok();
                    match (sent, sent.then(|| rrx.recv())) {
                        (true, Some(Ok(Ok(snapshot)))) => CtrlResp::Answer { snapshot },
                        (true, Some(Ok(Err(msg)))) => CtrlResp::Err { msg },
                        _ => CtrlResp::Err {
                            msg: format!("stream {name:?} is draining"),
                        },
                    }
                }
            },
            CtrlMsg::Drain { stream: name } => {
                // Remove the handle first so no new attach can race the
                // drain; connections already attached keep their cloned
                // senders and finish normally.
                let handle = shared.streams.lock().unwrap().remove(&name);
                match handle {
                    None => CtrlResp::Err {
                        msg: format!("no such stream {name:?}"),
                    },
                    Some(handle) => {
                        let (rtx, rrx) = mpsc::sync_channel(1);
                        let _ = handle.cmd.send(StreamCmd::Drain { reply: rtx });
                        match rrx.recv() {
                            Ok(snapshot) => {
                                let _ = handle.join.join();
                                shared
                                    .drained
                                    .lock()
                                    .unwrap()
                                    .push((name, snapshot.clone()));
                                CtrlResp::Answer { snapshot }
                            }
                            Err(_) => CtrlResp::Err {
                                msg: format!("stream {name:?} already drained"),
                            },
                        }
                    }
                }
            }
            CtrlMsg::Metrics { events } => CtrlResp::Metrics {
                report: scrape(&shared, events),
            },
            CtrlMsg::Shutdown => {
                let snaps = shutdown_impl(&shared, addr);
                let _ = writer.write_msg(&CtrlResp::Ok {
                    info: format!("drained {} stream(s)", snaps.len()),
                });
                return;
            }
        };
        if matches!(resp, CtrlResp::Err { .. }) {
            note_ctrl_error(req_tag);
        }
        if writer.write_msg(&resp).is_err() {
            return;
        }
    }
}

/// After a successful attach, the connection is the slot's data link:
/// decode `TAG_BATCH`/`TAG_EOF` frames into processor commands. A clean
/// close at a frame boundary is a **detach** (the slot may reattach
/// later) — deliberately unlike the one-shot server's reader, which
/// treats it as a fault.
fn site_data_loop(reader: &mut FramedReader<TcpStream>, site: usize, cmd: &CmdSender) {
    loop {
        match reader.read_blob() {
            Ok(Some(payload)) => match payload.split_first() {
                Some((&TAG_BATCH, body)) if body.len() >= 8 => {
                    let items = u64::from_le_bytes(body[..8].try_into().unwrap());
                    match decode_seq::<UpMsg>(&body[8..]) {
                        Ok(msgs) => {
                            if cmd.send(StreamCmd::Up { site, msgs, items }).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            let _ = cmd.send(StreamCmd::Detach { site });
                            return;
                        }
                    }
                }
                Some((&TAG_EOF, _)) => {
                    let _ = cmd.send(StreamCmd::Eof { site });
                    return;
                }
                // TAG_FAULT, or any unrecognised frame: the slot is gone
                // but resumable, same as a clean detach.
                _ => {
                    let _ = cmd.send(StreamCmd::Detach { site });
                    return;
                }
            },
            Ok(None) | Err(_) => {
                let _ = cmd.send(StreamCmd::Detach { site });
                return;
            }
        }
    }
}

// ------------------------------------------------------------- client side

/// A framed control connection to a daemon.
pub struct CtrlClient {
    reader: FramedReader<TcpStream>,
    writer: FramedWriter<TcpStream>,
}

impl std::fmt::Debug for CtrlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CtrlClient")
    }
}

impl CtrlClient {
    /// Connects to a daemon's control port.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<CtrlClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(CtrlClient {
            writer: FramedWriter::new(stream.try_clone()?),
            reader: FramedReader::new(stream),
        })
    }

    /// Sends one control request and reads its response.
    pub fn request(&mut self, msg: &CtrlMsg) -> io::Result<CtrlResp> {
        self.writer.write_msg(msg)?;
        match self.reader.read_msg::<CtrlResp>()? {
            Some(resp) => Ok(resp),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the control connection",
            )),
        }
    }

    /// Creates stream `stream` (idempotent — an existing stream keeps its
    /// original configuration).
    pub fn create(&mut self, stream: &str, k: u32, s: u32, query: &str) -> io::Result<CtrlResp> {
        self.request(&CtrlMsg::Create {
            stream: stream.to_string(),
            k,
            s,
            query: query.to_string(),
        })
    }

    /// Issues a live query and returns the snapshot (daemon-side refusals
    /// surface as [`RuntimeError::Transport`]).
    pub fn snapshot(
        &mut self,
        stream: &str,
        kind: LiveQueryKind,
        arg: u64,
    ) -> Result<LiveSnapshot, RuntimeError> {
        let resp = self
            .request(&CtrlMsg::Query {
                stream: stream.to_string(),
                kind,
                arg,
            })
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        expect_answer(resp)
    }

    /// Drains `stream` (waits for every attached site to finish or
    /// detach) and returns its final snapshot.
    pub fn drain_stream(&mut self, stream: &str) -> Result<LiveSnapshot, RuntimeError> {
        let resp = self
            .request(&CtrlMsg::Drain {
                stream: stream.to_string(),
            })
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        expect_answer(resp)
    }

    /// Asks the daemon to drain every stream and stop.
    pub fn shutdown(&mut self) -> io::Result<CtrlResp> {
        self.request(&CtrlMsg::Shutdown)
    }

    /// Scrapes the daemon's telemetry: the metrics-registry snapshot, the
    /// trailing `events` daemon-level trace events, and one per-stream
    /// section answered with the same command-queue consistency as live
    /// queries.
    pub fn metrics(&mut self, events: u32) -> Result<MetricsReport, RuntimeError> {
        let resp = self
            .request(&CtrlMsg::Metrics { events })
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        match resp {
            CtrlResp::Metrics { report } => Ok(report),
            CtrlResp::Err { msg } => Err(RuntimeError::Transport(msg)),
            other => Err(RuntimeError::Transport(format!(
                "unexpected control response {other:?}"
            ))),
        }
    }
}

fn expect_answer(resp: CtrlResp) -> Result<LiveSnapshot, RuntimeError> {
    match resp {
        CtrlResp::Answer { snapshot } => Ok(snapshot),
        CtrlResp::Err { msg } => Err(RuntimeError::Transport(msg)),
        other => Err(RuntimeError::Transport(format!(
            "unexpected control response {other:?}"
        ))),
    }
}

/// The live halves of a claimed site slot, before the site state is
/// married in (see `AttachClient::open_slot`).
struct SlotLink<S: SiteNode> {
    up: Box<dyn BatchSender<S::Up>>,
    down: mpsc::Receiver<S::Down>,
    resumed: bool,
    prior_items: u64,
}

/// Bounded, deterministic retry-with-backoff for
/// [`AttachClient::attach_with_retry`].
///
/// Attempt `i` (0-based) that fails is followed by a sleep of
/// `min(cap_ms, base_ms · 2^i)` milliseconds, shortened by a
/// deterministic jitter of up to half the delay derived from
/// `jitter_seed` — so concurrently restarting sites do not reconnect in
/// lockstep, yet a given seed always produces the identical schedule
/// (chaos runs stay reproducible).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attach attempts before giving up (≥ 1; a value of 1 means
    /// no retry).
    pub attempts: u32,
    /// First backoff delay in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 8 attempts, 10 ms doubling to a 500 ms cap: rides out the
    /// ~100 ms-scale window in which a daemon still considers a crashed
    /// slot attached, without stalling a genuinely refused attach for
    /// more than ~2 s total.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base_ms: 10,
            cap_ms: 500,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep after failed attempt `attempt` (0-based): exponential
    /// backoff with the documented cap and deterministic jitter. Pure —
    /// the same policy and attempt always yield the same delay.
    pub fn delay(&self, attempt: u32) -> Duration {
        let full = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms)
            .max(1);
        // Deterministic jitter in [0, full/2], derived SplitMix-style
        // from (seed, attempt).
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Duration::from_millis(full - z % (full / 2 + 1))
    }
}

/// A site attached to a daemon stream: the client half of the data plane.
///
/// Wraps any [`SiteNode`] whose messages are wire-codable and drives it
/// with the engine's own discipline — upstream batching with
/// [`RuntimeConfig::batch_max`], downstream broadcasts polled every
/// [`RuntimeConfig::down_poll_every`] items, flush → `Eof` → drain on
/// [`AttachClient::finish`]. [`AttachClient::detach`] leaves the slot
/// resumable instead, so a later attach continues the same stream
/// (validity is preserved: the daemon replays threshold state on
/// reattach, and the key-space filter is monotone).
pub struct AttachClient<S: SiteNode> {
    site: S,
    up: Box<dyn BatchSender<S::Up>>,
    down: mpsc::Receiver<S::Down>,
    batch: Vec<S::Up>,
    items_pending: u64,
    until_poll: u32,
    down_poll_every: u32,
    batch_max: usize,
    metrics: Metrics,
    resumed: bool,
    prior_items: u64,
}

impl<S: SiteNode> std::fmt::Debug for AttachClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AttachClient(resumed {})", self.resumed)
    }
}

impl<S> AttachClient<S>
where
    S: SiteNode,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
{
    /// Connects to `addr`, attaches as site `site_id` of stream `stream`,
    /// and returns the ready-to-feed client. Fails if the slot is taken,
    /// finished, out of range, or the stream does not exist.
    pub fn attach(
        addr: impl ToSocketAddrs,
        stream: &str,
        site_id: usize,
        site: S,
        cfg: &RuntimeConfig,
    ) -> Result<AttachClient<S>, RuntimeError> {
        let link = Self::open_slot(addr, stream, site_id, cfg)?;
        Ok(Self::assemble(site, link, cfg))
    }

    /// Like [`AttachClient::attach`], but retries the connect/handshake
    /// with bounded exponential backoff when the daemon refuses or the
    /// connection drops mid-handshake — the failover path, where a
    /// restarting site races the daemon noticing the old link died. The
    /// site state is only consumed on success, so every retry resumes
    /// from the identical state. Returns the client and the number of
    /// *failed* attempts that preceded it (0 = first try succeeded).
    ///
    /// When every attempt fails the error is
    /// [`RuntimeError::ReattachExhausted`] carrying the final attempt's
    /// failure.
    pub fn attach_with_retry(
        addr: impl ToSocketAddrs + Clone,
        stream: &str,
        site_id: usize,
        site: S,
        cfg: &RuntimeConfig,
        policy: &RetryPolicy,
    ) -> Result<(AttachClient<S>, u32), RuntimeError> {
        let attempts = policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match Self::open_slot(addr.clone(), stream, site_id, cfg) {
                Ok(link) => return Ok((Self::assemble(site, link, cfg), attempt)),
                Err(e) => last = e.to_string(),
            }
            if attempt + 1 < attempts {
                thread::sleep(policy.delay(attempt));
            }
        }
        Err(RuntimeError::ReattachExhausted { attempts, last })
    }

    /// The connect + handshake half of an attach: claims the slot and
    /// returns the live link halves. Does not touch the site state, so a
    /// failed handshake loses nothing — the caller can retry.
    fn open_slot(
        addr: impl ToSocketAddrs,
        stream: &str,
        site_id: usize,
        cfg: &RuntimeConfig,
    ) -> Result<SlotLink<S>, RuntimeError> {
        let sock = TcpStream::connect(addr).map_err(io_transport)?;
        sock.set_nodelay(true).map_err(io_transport)?;
        let mut writer = FramedWriter::new(sock.try_clone().map_err(io_transport)?);
        let mut ctrl_reader = FramedReader::new(sock);
        writer
            .write_msg(&CtrlMsg::Attach {
                stream: stream.to_string(),
                site: site_id as u32,
            })
            .map_err(io_transport)?;
        let resp = ctrl_reader
            .read_msg::<CtrlResp>()
            .map_err(io_transport)?
            .ok_or_else(|| {
                RuntimeError::Transport("daemon closed the connection during attach".into())
            })?;
        let (resumed, prior_items) = match resp {
            CtrlResp::Attached { resumed, items, .. } => (resumed, items),
            CtrlResp::Err { msg } => {
                return Err(RuntimeError::Transport(format!("attach refused: {msg}")))
            }
            other => {
                return Err(RuntimeError::Transport(format!(
                    "unexpected attach response {other:?}"
                )))
            }
        };
        // The reader consumed exactly the response frame (FramedReader
        // never over-reads); the socket's read side now carries TAG_DOWN
        // data frames — hand it to a dedicated down-reader thread.
        let (down_tx, down_rx) = mpsc::channel();
        let read_half = ctrl_reader.into_inner();
        thread::spawn(move || down_reader::<S::Down>(read_half, down_tx));
        let mut up = tcp_batch_sender::<S::Up>(writer.into_inner());
        up.reserve_hint(cfg.batch_max);
        Ok(SlotLink {
            up,
            down: down_rx,
            resumed,
            prior_items,
        })
    }

    /// Marries the site state to a claimed slot link.
    fn assemble(site: S, link: SlotLink<S>, cfg: &RuntimeConfig) -> AttachClient<S> {
        AttachClient {
            site,
            up: link.up,
            down: link.down,
            batch: Vec::with_capacity(cfg.batch_max),
            items_pending: 0,
            until_poll: 0,
            down_poll_every: cfg.down_poll_every.max(1),
            batch_max: cfg.batch_max,
            metrics: Metrics::new(),
            resumed: link.resumed,
            prior_items: link.prior_items,
        }
    }

    /// Whether this attach resumed a previously detached slot.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Items this slot had contributed before this attach.
    pub fn prior_items(&self) -> u64 {
        self.prior_items
    }

    /// Observes a run of stream items, applying coordinator broadcasts as
    /// they arrive and flushing upstream batches at `batch_max` — the
    /// engine's site loop, incrementally.
    pub fn feed(&mut self, items: impl IntoIterator<Item = Item>) -> Result<(), RuntimeError> {
        for item in items {
            if self.until_poll == 0 {
                self.until_poll = self.down_poll_every;
                while let Ok(msg) = self.down.try_recv() {
                    self.site.receive(&msg);
                }
            }
            self.until_poll -= 1;
            self.site.observe(item, &mut self.batch);
            self.items_pending += 1;
            if self.batch.len() >= self.batch_max {
                flush(
                    &mut *self.up,
                    &mut self.batch,
                    &mut self.items_pending,
                    self.batch_max,
                    &mut self.metrics,
                )?;
            }
        }
        Ok(())
    }

    /// Finishes the slot for good: site finish-burst → flush → `Eof` →
    /// close → drain remaining broadcasts. Returns the site and this
    /// client's metrics. The slot cannot be reattached afterwards.
    pub fn finish(self) -> Result<(S, Metrics), RuntimeError> {
        let AttachClient {
            mut site,
            mut up,
            down,
            mut batch,
            mut items_pending,
            batch_max,
            mut metrics,
            ..
        } = self;
        // The closing burst can exceed batch_max (it is not item-driven):
        // ship it in batch-sized chunks, as the engine's site loop does.
        site.finish(&mut batch);
        while batch.len() > batch_max {
            let rest = batch.split_off(batch_max);
            flush(
                &mut *up,
                &mut batch,
                &mut items_pending,
                batch_max,
                &mut metrics,
            )?;
            batch = rest;
        }
        flush(
            &mut *up,
            &mut batch,
            &mut items_pending,
            batch_max,
            &mut metrics,
        )?;
        if items_pending > 0 {
            // Residual watermark: items observed since the last flush that
            // produced no messages still advance the stream's progress.
            up.send(UpFrame::Batch {
                msgs: Vec::new(),
                items: items_pending,
            })
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        }
        up.send(UpFrame::Eof)
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        up.close();
        drop(up);
        // The daemon closes this slot's down link on Eof; drain to it.
        while let Ok(msg) = down.recv() {
            site.receive(&msg);
        }
        Ok((site, metrics))
    }

    /// Kills the link the way a crashing site process would: the socket
    /// is torn down in both directions with no flush and no close
    /// handshake, so anything batched but not yet shipped is lost and no
    /// down-drain is attempted. The daemon observes the dead connection
    /// and marks the slot detached (resumable); a replacement incarnation
    /// can then reattach. Returns the site state as of the crash —
    /// callers simulating a real crash usually discard it.
    ///
    /// Prefer this over merely dropping the client for crash simulation:
    /// the down-reader thread holds its own handle to the socket, so a
    /// plain drop sends no FIN and leaves the daemon considering the slot
    /// attached until it next pushes a broadcast down the dead link.
    pub fn abort(self) -> S {
        let AttachClient { site, mut up, .. } = self;
        up.abort();
        site
    }

    /// Detaches, leaving the slot resumable: flush → residual watermark →
    /// close **without** `Eof`. The daemon sees the clean close at a
    /// frame boundary and marks the slot detached; a later
    /// [`AttachClient::attach`] on the same slot resumes it.
    pub fn detach(self) -> Result<(S, Metrics), RuntimeError> {
        let AttachClient {
            mut site,
            mut up,
            down,
            mut batch,
            mut items_pending,
            batch_max,
            mut metrics,
            ..
        } = self;
        flush(
            &mut *up,
            &mut batch,
            &mut items_pending,
            batch_max,
            &mut metrics,
        )?;
        if items_pending > 0 {
            up.send(UpFrame::Batch {
                msgs: Vec::new(),
                items: items_pending,
            })
            .map_err(|e| RuntimeError::Transport(e.to_string()))?;
        }
        up.close();
        drop(up);
        // The daemon closes the down link on detach; drain to it.
        while let Ok(msg) = down.recv() {
            site.receive(&msg);
        }
        Ok((site, metrics))
    }
}

fn io_transport(e: io::Error) -> RuntimeError {
    RuntimeError::Transport(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_sim::swor_site;

    fn daemon() -> Daemon {
        Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind")
    }

    #[test]
    fn create_is_idempotent_and_validated() {
        let d = daemon();
        let mut ctrl = CtrlClient::connect(d.local_addr()).unwrap();
        assert_eq!(
            ctrl.create("s1", 2, 8, "swor").unwrap(),
            CtrlResp::Ok {
                info: "created".into()
            }
        );
        assert_eq!(
            ctrl.create("s1", 4, 16, "swor").unwrap(),
            CtrlResp::Ok {
                info: "exists".into()
            }
        );
        // A bad query spec is refused without creating anything.
        assert!(matches!(
            ctrl.create("s2", 2, 8, "l1:9.0,0.5").unwrap(),
            CtrlResp::Err { .. }
        ));
        assert!(matches!(
            ctrl.request(&CtrlMsg::Query {
                stream: "s2".into(),
                kind: LiveQueryKind::Stats,
                arg: 0
            })
            .unwrap(),
            CtrlResp::Err { .. }
        ));
        d.shutdown();
    }

    #[test]
    fn attach_feed_query_drain_round_trip() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("s", 2, 8, "swor").unwrap();
        let cfg = SworConfig::new(8, 2);
        let rcfg = RuntimeConfig::default();
        let mut clients: Vec<AttachClient<_>> = (0..2)
            .map(|i| {
                AttachClient::attach(addr, "s", i, swor_site(&cfg, 7, i), &rcfg).expect("attach")
            })
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert!(!c.resumed());
            c.feed((0..500u64).map(|t| Item::new(2 * t + i as u64, 1.0 + (t % 5) as f64)))
                .unwrap();
        }
        for c in clients {
            c.finish().unwrap();
        }
        let snap = ctrl.snapshot("s", LiveQueryKind::CurrentSample, 0).unwrap();
        assert_eq!(snap.items, 1000);
        assert_eq!(snap.sites_eof, 2);
        assert_eq!(snap.sample.len(), 8);
        assert!(snap.sample.iter().all(|kd| kd.key >= snap.u));
        let fin = ctrl.drain_stream("s").unwrap();
        assert_eq!(fin.items, 1000);
        // Drained: the stream is gone.
        assert!(ctrl.snapshot("s", LiveQueryKind::Stats, 0).is_err());
        assert_eq!(d.shutdown().len(), 0);
        assert_eq!(d.drained().len(), 1);
    }

    #[test]
    fn attach_conflicts_are_refused() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("s", 1, 4, "swor").unwrap();
        let cfg = SworConfig::new(4, 1);
        let rcfg = RuntimeConfig::default();
        let held = AttachClient::attach(addr, "s", 0, swor_site(&cfg, 1, 0), &rcfg).unwrap();
        // Same slot while held → refused; out-of-range slot → refused.
        assert!(AttachClient::attach(addr, "s", 0, swor_site(&cfg, 1, 0), &rcfg).is_err());
        assert!(AttachClient::attach(addr, "s", 9, swor_site(&cfg, 1, 0), &rcfg).is_err());
        held.finish().unwrap();
        // Finished slot → refused (Eof is final).
        assert!(AttachClient::attach(addr, "s", 0, swor_site(&cfg, 1, 0), &rcfg).is_err());
        d.shutdown();
    }

    #[test]
    fn detach_then_reattach_resumes_the_slot() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("s", 1, 4, "swor").unwrap();
        let cfg = SworConfig::new(4, 1);
        let rcfg = RuntimeConfig::default();
        let mut c = AttachClient::attach(addr, "s", 0, swor_site(&cfg, 3, 0), &rcfg).unwrap();
        c.feed((0..300).map(Item::unit)).unwrap();
        let (site, _) = c.detach().unwrap();
        // The watermark survives the detach.
        let snap = ctrl.snapshot("s", LiveQueryKind::Stats, 0).unwrap();
        assert_eq!(snap.items, 300);
        assert_eq!(snap.sites_attached, 0);
        let mut c = AttachClient::attach(addr, "s", 0, site, &rcfg).unwrap();
        assert!(c.resumed());
        assert_eq!(c.prior_items(), 300);
        c.feed((300..700).map(Item::unit)).unwrap();
        c.finish().unwrap();
        let fin = ctrl.drain_stream("s").unwrap();
        assert_eq!(fin.items, 700);
        assert_eq!(fin.sample.len(), 4);
        d.shutdown();
    }

    #[test]
    fn shutdown_drains_every_stream() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("a", 1, 4, "swor").unwrap();
        ctrl.create("b", 1, 4, "window:100").unwrap();
        let rcfg = RuntimeConfig::default();
        let cfg = SworConfig::new(4, 1);
        let c = AttachClient::attach(addr, "a", 0, swor_site(&cfg, 5, 0), &rcfg).unwrap();
        c.finish().unwrap();
        let mut snaps = d.shutdown();
        snaps.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "a");
        assert_eq!(snaps[1].0, "b");
        // Idempotent.
        assert!(d.shutdown().is_empty());
        // New control connections are no longer served.
        assert!(CtrlClient::connect(addr)
            .and_then(|mut c| c.create("late", 1, 4, "swor"))
            .is_err());
    }

    #[test]
    fn shutdown_control_frame_stops_the_daemon() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("s", 1, 4, "swor").unwrap();
        let resp = ctrl.shutdown().unwrap();
        assert!(matches!(resp, CtrlResp::Ok { .. }));
        d.join(); // returns because the control frame stopped the listener
        assert_eq!(d.drained().len(), 1);
    }

    #[test]
    fn window_now_needs_a_window() {
        let d = daemon();
        let addr = d.local_addr();
        let mut ctrl = CtrlClient::connect(addr).unwrap();
        ctrl.create("plain", 1, 4, "swor").unwrap();
        ctrl.create("win", 1, 4, "window:50").unwrap();
        // Explicit arg works on any stream; arg 0 only on window streams.
        assert!(ctrl.snapshot("plain", LiveQueryKind::WindowNow, 10).is_ok());
        assert!(ctrl.snapshot("plain", LiveQueryKind::WindowNow, 0).is_err());
        assert!(ctrl.snapshot("win", LiveQueryKind::WindowNow, 0).is_ok());
        d.shutdown();
    }
}
