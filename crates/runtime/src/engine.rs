//! The threaded execution engine.
//!
//! Each site runs its partition of the stream on its own OS thread; the
//! coordinator runs on another. Threads communicate only through a
//! [`crate::transport`] wiring, so the same loops drive in-process channels
//! and loopback TCP.
//!
//! # Deadlock freedom
//!
//! The up path is bounded and blocking (backpressure); the down path is
//! unbounded and drained eagerly by sites (between items) and continuously
//! by the TCP reader threads. Because the coordinator never blocks sending
//! down, it always returns to draining the up queue, so blocked site
//! `send`s always unblock. A cycle of blocking sends — the classic
//! site⇄coordinator deadlock — cannot form.
//!
//! # Graceful shutdown
//!
//! Deterministic three-phase drain:
//!
//! 1. a site exhausts its input, flushes its final partial batch, sends
//!    `Eof`, and **drops its up sender** (so a stuck sibling cannot wedge
//!    the coordinator's queue);
//! 2. the coordinator processes frames until every site has reported `Eof`
//!    (or every up sender is gone), then closes all down links;
//! 3. sites drain remaining downstream messages until their link closes,
//!    then return their final state and per-thread [`Metrics`].
//!
//! The engine then joins every thread — converting panics into
//! [`RuntimeError`]s instead of hangs — extracts the final weighted sample
//! state (the returned coordinator), and merges the per-thread metrics into
//! one [`Metrics`] whose totals follow the paper's accounting exactly as
//! the lockstep simulator's do.

use std::sync::mpsc;
use std::thread;

use dwrs_core::Item;
use dwrs_sim::{CoordinatorNode, Meter, Metrics, Outbox, SiteNode};

use crate::config::RuntimeConfig;
use crate::obs::{record_thread_metrics, FlushMeter};
use crate::transport::{
    channel_wiring, CoordEndpoint, DownSender, SiteEndpoint, TransportError, UpFrame,
};

/// Why a runtime run failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// A site thread panicked.
    SitePanicked(usize),
    /// The coordinator thread panicked.
    CoordinatorPanicked,
    /// A group-aggregator thread panicked (hierarchical topology).
    AggregatorPanicked(usize),
    /// The root-merger thread panicked (hierarchical topology).
    RootPanicked,
    /// A transport link failed (I/O error, malformed frame, premature
    /// disconnect).
    Transport(String),
    /// A [`crate::driver::Scenario`] failed validation (bad shape
    /// parameters, unresolvable workload source).
    InvalidScenario(String),
    /// The process (`EMFILE`) or system (`ENFILE`) file-descriptor table
    /// ran out while wiring or accepting connections. The engines raise
    /// the soft `RLIMIT_NOFILE` to the hard limit at start
    /// ([`crate::reactor::raise_nofile_limit`]); hitting this anyway
    /// means the hard limit itself is too low for the deployment's `k`.
    FdExhausted {
        /// What the engine was doing when the table ran out.
        what: String,
        /// The `RLIMIT_NOFILE` soft limit in effect at the failure.
        limit: u64,
    },
    /// Every attempt of a bounded
    /// [`crate::daemon::AttachClient::attach_with_retry`] failed; the
    /// slot could not be (re)claimed.
    ReattachExhausted {
        /// Attach attempts made before giving up.
        attempts: u32,
        /// The last attempt's failure, verbatim.
        last: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::SitePanicked(i) => write!(f, "site thread {i} panicked"),
            RuntimeError::CoordinatorPanicked => write!(f, "coordinator thread panicked"),
            RuntimeError::AggregatorPanicked(g) => {
                write!(f, "aggregator thread for group {g} panicked")
            }
            RuntimeError::RootPanicked => write!(f, "root merger thread panicked"),
            RuntimeError::Transport(e) => write!(f, "transport failure: {e}"),
            RuntimeError::InvalidScenario(e) => write!(f, "invalid scenario: {e}"),
            RuntimeError::FdExhausted { what, limit } => {
                write!(
                    f,
                    "file descriptors exhausted while {what} (RLIMIT_NOFILE soft limit = {limit})"
                )
            }
            RuntimeError::ReattachExhausted { attempts, last } => {
                write!(f, "reattach exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<TransportError> for RuntimeError {
    fn from(e: TransportError) -> Self {
        RuntimeError::Transport(e.to_string())
    }
}

/// Everything a completed run hands back.
#[derive(Debug)]
pub struct RunOutput<S, C> {
    /// Final site states, in site order (each has seen every broadcast).
    pub sites: Vec<S>,
    /// Final coordinator state; query it for the weighted sample.
    pub coordinator: C,
    /// Merged per-thread metrics (coordinator first, then sites 0..k).
    pub metrics: Metrics,
}

/// Drives one site over its endpoint: returns the final site state and the
/// thread-local upstream metrics.
///
/// Downstream messages are applied in windows of `down_poll_every` items
/// ahead of `observe`, mirroring the lockstep runner's delayed-delivery
/// mode: the protocols tolerate stale thresholds by design (correctness is
/// unaffected; only message counts may inflate).
pub(crate) fn site_loop<S, I>(
    site: &mut S,
    endpoint: SiteEndpoint<S::Up, S::Down>,
    items: I,
    batch_max: usize,
    down_poll_every: u32,
) -> Result<Metrics, RuntimeError>
where
    S: SiteNode,
    I: IntoIterator<Item = Item>,
{
    let SiteEndpoint { mut up, down, .. } = endpoint;
    up.reserve_hint(batch_max);
    let down_poll_every = down_poll_every.max(1);
    let mut metrics = Metrics::new();
    // Telemetry is flush-granular: zero work per item, a few relaxed
    // atomics plus two local-sketch pushes per flush (see crate::obs).
    let mut meter = FlushMeter::new();
    let mut batch: Vec<S::Up> = Vec::with_capacity(batch_max);
    let mut items_pending = 0u64;
    let mut until_poll = 0u32;
    for item in items {
        if until_poll == 0 {
            until_poll = down_poll_every;
            while let Ok(msg) = down.try_recv() {
                site.receive(&msg);
            }
        }
        until_poll -= 1;
        site.observe(item, &mut batch);
        items_pending += 1;
        if batch.len() >= batch_max {
            meter.on_flush(batch.len(), items_pending);
            flush(
                &mut *up,
                &mut batch,
                &mut items_pending,
                batch_max,
                &mut metrics,
            )?;
        }
    }
    // End-of-stream protocols assemble their closing messages here (e.g.
    // the sliding-window site ships its retained candidate set); per-item
    // protocols leave the batch untouched. The closing burst can exceed
    // `batch_max` (it is not item-driven), so ship it in batch-sized
    // chunks — a single oversized flush would overflow the framed
    // transport's MAX_FRAME_LEN cap.
    site.finish(&mut batch);
    while batch.len() > batch_max {
        let rest = batch.split_off(batch_max);
        meter.on_flush(batch.len(), items_pending);
        flush(
            &mut *up,
            &mut batch,
            &mut items_pending,
            batch_max,
            &mut metrics,
        )?;
        batch = rest;
    }
    if !batch.is_empty() {
        meter.on_flush(batch.len(), items_pending);
    }
    flush(
        &mut *up,
        &mut batch,
        &mut items_pending,
        batch_max,
        &mut metrics,
    )?;
    // The tail of the stream may have produced no messages; ship the
    // residual item count anyway so downstream watermarks (hierarchical
    // sync cadence) cover the whole stream before `Eof`.
    if items_pending > 0 {
        meter.on_items(items_pending);
        up.send(UpFrame::Batch {
            msgs: Vec::new(),
            items: items_pending,
        })?;
    }
    up.send(UpFrame::Eof)?;
    up.close();
    // Phase 1 complete: release the up sender so the coordinator's queue
    // disconnects even if a sibling site is stuck, then drain the down link
    // until the coordinator closes it (phase 3).
    drop(up);
    while let Ok(msg) = down.recv() {
        site.receive(&msg);
    }
    meter.finish();
    record_thread_metrics(&metrics);
    Ok(metrics)
}

/// Ships the accumulated batch together with the item count of its flush
/// window, metering each message by the paper's accounting (`units` wire
/// messages, exact `wire_bytes`). The batch vector is drained in place:
/// encoding transports keep its allocation alive across flushes; channel
/// transports move the storage with the messages, so capacity is restored
/// here for the next window.
pub(crate) fn flush<U: Meter>(
    up: &mut dyn crate::transport::BatchSender<U>,
    batch: &mut Vec<U>,
    items_pending: &mut u64,
    batch_max: usize,
    metrics: &mut Metrics,
) -> Result<(), TransportError> {
    if batch.is_empty() {
        return Ok(());
    }
    for msg in batch.iter() {
        metrics.count_up(msg.kind(), msg.units(), msg.wire_bytes());
    }
    let items = std::mem::take(items_pending);
    up.send_batch(batch, items)?;
    if batch.capacity() < batch_max {
        batch.reserve(batch_max - batch.len());
    }
    Ok(())
}

/// Drives the coordinator until every site reached `Eof` (or disconnected),
/// then closes the down links. Returns the thread-local downstream metrics
/// (plus upstream metrics when `count_ups` — used by the standalone TCP
/// server, whose remote sites cannot contribute their own meters) together
/// with the total stream-progress watermark (items observed, summed over
/// every batch frame — the incremental-snapshot accounting the daemon and
/// `serve` report).
pub(crate) fn coordinator_loop<C>(
    node: &mut C,
    endpoint: CoordEndpoint<C::Up, C::Down>,
    count_ups: bool,
) -> Result<(Metrics, u64), RuntimeError>
where
    C: CoordinatorNode,
{
    let CoordEndpoint { up, mut downs } = endpoint;
    let k = downs.len();
    let mut metrics = Metrics::new();
    let mut outbox = Outbox::new();
    let mut done = 0usize;
    let mut items_observed = 0u64;
    let mut fault: Option<String> = None;
    while done < k {
        match up.recv() {
            Ok((site, UpFrame::Batch { msgs, items })) => {
                items_observed += items;
                for msg in msgs {
                    if count_ups {
                        metrics.count_up(msg.kind(), msg.units(), msg.wire_bytes());
                    }
                    node.receive(site, msg, &mut outbox);
                    route(&mut outbox, &mut downs, &mut metrics);
                }
            }
            Ok((_, UpFrame::Eof)) => done += 1,
            Ok((site, UpFrame::Fault(e))) => {
                fault.get_or_insert(format!("site {site}: {e}"));
                done += 1;
            }
            // All up senders dropped before k Eofs: a site died without its
            // Eof (e.g. panicked). End the run; the engine's joins surface
            // the precise cause.
            Err(mpsc::RecvError) => break,
        }
    }
    for d in &mut downs {
        d.close();
    }
    drop(downs);
    record_thread_metrics(&metrics);
    match fault {
        Some(e) => Err(RuntimeError::Transport(e)),
        None => Ok((metrics, items_observed)),
    }
}

/// Routes one round's coordinator responses, with the paper's accounting:
/// a unicast costs 1 message, a broadcast costs `k`. Shared with the
/// hierarchical aggregator loop in [`crate::tree`].
pub(crate) fn route<D: Meter>(
    outbox: &mut Outbox<D>,
    downs: &mut [Box<dyn DownSender<D>>],
    metrics: &mut Metrics,
) {
    let k = downs.len();
    let (unicasts, broadcasts) = outbox.take();
    for (to, msg) in unicasts {
        metrics.count_unicast(msg.kind(), msg.units(), msg.wire_bytes());
        // A closed link means that site already finished; the message is
        // metered (it was sent) but has no one left to act on it.
        let _ = downs[to].send(&msg);
    }
    for msg in broadcasts {
        metrics.count_broadcast(msg.kind(), msg.units(), msg.wire_bytes(), k);
        for d in downs.iter_mut() {
            let _ = d.send(&msg);
        }
    }
}

/// Runs a full deployment over an already-built wiring. The generic engine
/// behind [`run_threads`] and [`crate::tcp::run_tcp`]: any
/// [`SiteNode`]/[`CoordinatorNode`] pair from `dwrs-sim` runs unmodified.
pub fn run_on<S, C, I>(
    wiring: crate::transport::Wiring<S::Up, S::Down>,
    sites: Vec<S>,
    mut coordinator: C,
    streams: Vec<I>,
    cfg: &RuntimeConfig,
) -> Result<RunOutput<S, C>, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: Send,
    S::Down: Send,
    C: CoordinatorNode<Up = S::Up, Down = S::Down> + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let (site_eps, coord_ep) = wiring;
    let k = sites.len();
    assert!(k >= 1, "need at least one site");
    assert_eq!(site_eps.len(), k, "one endpoint per site");
    assert_eq!(streams.len(), k, "one stream partition per site");
    let batch_max = cfg.batch_max.max(1);

    let (coord_res, site_res) = thread::scope(|scope| {
        let mut site_handles = Vec::with_capacity(k);
        let down_poll_every = cfg.down_poll_every.max(1);
        for ((mut site, ep), items) in sites.into_iter().zip(site_eps).zip(streams) {
            site_handles.push(scope.spawn(move || {
                let metrics = site_loop(&mut site, ep, items, batch_max, down_poll_every)?;
                Ok::<_, RuntimeError>((site, metrics))
            }));
        }
        let coord_handle = scope.spawn(move || {
            let (metrics, _items) = coordinator_loop(&mut coordinator, coord_ep, false)?;
            Ok::<_, RuntimeError>((coordinator, metrics))
        });
        let site_res: Vec<_> = site_handles.into_iter().map(|h| h.join()).collect();
        (coord_handle.join(), site_res)
    });

    // Surface panics deterministically: first panicking site, then the
    // coordinator, then transport errors.
    for (i, res) in site_res.iter().enumerate() {
        if res.is_err() {
            return Err(RuntimeError::SitePanicked(i));
        }
    }
    let (coordinator, coord_metrics) =
        coord_res.map_err(|_| RuntimeError::CoordinatorPanicked)??;
    let mut metrics = coord_metrics;
    let mut final_sites = Vec::with_capacity(k);
    for res in site_res {
        let (site, site_metrics) = res.expect("panics handled above")?;
        metrics.merge(&site_metrics);
        final_sites.push(site);
    }
    Ok(RunOutput {
        sites: final_sites,
        coordinator,
        metrics,
    })
}

/// Runs a deployment on OS threads connected by in-process bounded
/// channels.
///
/// `streams[i]` is site `i`'s partition of the global stream, in that
/// site's arrival order (use [`split_stream`] to derive partitions from a
/// globally ordered stream).
pub fn run_threads<S, C, I>(
    sites: Vec<S>,
    coordinator: C,
    streams: Vec<I>,
    cfg: &RuntimeConfig,
) -> Result<RunOutput<S, C>, RuntimeError>
where
    S: SiteNode + Send,
    S::Up: Send + 'static,
    S::Down: Clone + Send + 'static,
    C: CoordinatorNode<Up = S::Up, Down = S::Down> + Send,
    I: IntoIterator<Item = Item> + Send,
{
    let wiring = channel_wiring(sites.len(), cfg.queue_capacity);
    run_on(wiring, sites, coordinator, streams, cfg)
}

/// Splits a globally ordered `(site, item)` stream into per-site partitions
/// preserving each site's arrival order — the runtime analogue of feeding
/// `assign_sites` output to the lockstep runner.
///
/// This **materializes the whole stream** (O(n) memory): each partition is
/// the vec-backed [`crate::driver`] source adapter, kept only so old
/// call sites keep compiling. New code should describe the deployment as a
/// [`crate::driver::Scenario`] and let [`crate::driver::run_scenario`]
/// stream the workload through the bounded dispatcher at O(batch × queue)
/// memory instead.
#[deprecated(
    since = "0.1.0",
    note = "materializes the whole stream (O(n) memory); describe the run as a \
            driver::Scenario and use driver::run_scenario, which streams at \
            O(batch × queue) memory"
)]
pub fn split_stream<I>(k: usize, stream: I) -> Vec<Vec<Item>>
where
    I: IntoIterator<Item = (usize, Item)>,
{
    let mut parts: Vec<Vec<Item>> = (0..k).map(|_| Vec::new()).collect();
    for (site, item) in stream {
        parts[site].push(item);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol mirroring the lockstep runner's unit tests: sites
    /// forward every item; the coordinator broadcasts a counter every 3
    /// receipts.
    #[derive(Debug)]
    struct EchoSite {
        seen_down: u64,
    }
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Up(u64);
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Down(#[allow(dead_code)] u64);
    impl Meter for Up {
        fn kind(&self) -> &'static str {
            "up"
        }
    }
    impl Meter for Down {
        fn kind(&self) -> &'static str {
            "down"
        }
    }
    impl SiteNode for EchoSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, item: Item, out: &mut Vec<Up>) {
            out.push(Up(item.id));
        }
        fn receive(&mut self, _msg: &Down) {
            self.seen_down += 1;
        }
    }
    #[derive(Debug)]
    struct EchoCoord {
        received: u64,
    }
    impl CoordinatorNode for EchoCoord {
        type Up = Up;
        type Down = Down;
        fn receive(&mut self, _from: usize, _msg: Up, out: &mut Outbox<Down>) {
            self.received += 1;
            if self.received.is_multiple_of(3) {
                out.broadcast(Down(self.received));
            }
        }
    }

    #[allow(deprecated)]
    fn parts(n: u64, k: usize) -> Vec<Vec<Item>> {
        split_stream(k, (0..n).map(|i| ((i % k as u64) as usize, Item::unit(i))))
    }

    #[test]
    fn echo_protocol_full_accounting() {
        let sites = vec![EchoSite { seen_down: 0 }, EchoSite { seen_down: 0 }];
        let out = run_threads(
            sites,
            EchoCoord { received: 0 },
            parts(9, 2),
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(out.coordinator.received, 9);
        assert_eq!(out.metrics.up_total, 9);
        assert_eq!(out.metrics.down_total, 6, "3 broadcasts × 2 sites");
        assert_eq!(out.metrics.broadcast_events, 3);
        // Every broadcast is drained before the sites return.
        for s in &out.sites {
            assert_eq!(s.seen_down, 3);
        }
    }

    #[test]
    fn tiny_queue_and_batch_still_complete() {
        // queue_capacity 1 + batch_max 1 exercises the backpressure path on
        // every single message.
        let cfg = RuntimeConfig::new()
            .with_batch_max(1)
            .with_queue_capacity(1);
        let sites = (0..4).map(|_| EchoSite { seen_down: 0 }).collect();
        let out = run_threads(sites, EchoCoord { received: 0 }, parts(1000, 4), &cfg).unwrap();
        assert_eq!(out.coordinator.received, 1000);
        assert_eq!(out.metrics.up_total, 1000);
    }

    #[test]
    fn final_partial_batch_is_flushed() {
        let cfg = RuntimeConfig::new().with_batch_max(64);
        let sites = vec![EchoSite { seen_down: 0 }];
        // 7 items << batch_max: everything rides the end-of-stream flush.
        let out = run_threads(sites, EchoCoord { received: 0 }, parts(7, 1), &cfg).unwrap();
        assert_eq!(out.coordinator.received, 7);
    }

    /// Site whose entire output arrives at end-of-stream (the window
    /// sampler's shape): nothing per item, a burst from `finish`.
    #[derive(Debug)]
    struct FinisherSite {
        burst: u64,
    }
    impl SiteNode for FinisherSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, _item: Item, _out: &mut Vec<Up>) {}
        fn receive(&mut self, _msg: &Down) {}
        fn finish(&mut self, out: &mut Vec<Up>) {
            out.extend((0..self.burst).map(Up));
        }
    }

    #[test]
    fn finish_burst_larger_than_batch_max_is_chunked_through() {
        // Regression: the closing burst is not item-driven, so it can
        // exceed batch_max; it must be flushed in batch-sized chunks (a
        // single oversized flush would overflow a framed transport's
        // frame cap) and still arrive completely.
        let cfg = RuntimeConfig::new()
            .with_batch_max(8)
            .with_queue_capacity(2);
        let sites = vec![FinisherSite { burst: 100 }, FinisherSite { burst: 3 }];
        let out = run_threads(sites, EchoCoord { received: 0 }, parts(10, 2), &cfg).unwrap();
        assert_eq!(out.coordinator.received, 103);
        assert_eq!(out.metrics.up_total, 103);
    }

    #[derive(Debug)]
    struct PanickingSite;
    impl SiteNode for PanickingSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, item: Item, _out: &mut Vec<Up>) {
            if item.id == 3 {
                panic!("injected failure");
            }
        }
        fn receive(&mut self, _msg: &Down) {}
    }

    #[test]
    fn site_panic_reported_not_hung() {
        let sites = vec![PanickingSite, PanickingSite];
        let err = run_threads(
            sites,
            EchoCoord { received: 0 },
            parts(10, 2),
            &RuntimeConfig::default(),
        )
        .unwrap_err();
        // Under the (i % k) partition only site 1 ever sees id 3, so site 0
        // completes normally and the failure must be pinned to site 1.
        assert!(matches!(err, RuntimeError::SitePanicked(1)), "got {err:?}");
    }

    #[derive(Debug)]
    struct PanickingCoord;
    impl CoordinatorNode for PanickingCoord {
        type Up = Up;
        type Down = Down;
        fn receive(&mut self, _from: usize, msg: Up, _out: &mut Outbox<Down>) {
            if msg.0 >= 5 {
                panic!("injected coordinator failure");
            }
        }
    }

    #[test]
    fn coordinator_panic_reported_not_hung() {
        let sites = vec![EchoSite { seen_down: 0 }, EchoSite { seen_down: 0 }];
        let err = run_threads(
            sites,
            PanickingCoord,
            parts(100, 2),
            &RuntimeConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, RuntimeError::CoordinatorPanicked),
            "got {err:?}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn split_stream_preserves_per_site_order() {
        let parts = split_stream(
            3,
            vec![
                (2, Item::unit(0)),
                (0, Item::unit(1)),
                (2, Item::unit(2)),
                (1, Item::unit(3)),
                (0, Item::unit(4)),
            ],
        );
        let ids = |v: &Vec<Item>| v.iter().map(|i| i.id).collect::<Vec<_>>();
        assert_eq!(ids(&parts[0]), vec![1, 4]);
        assert_eq!(ids(&parts[1]), vec![3]);
        assert_eq!(ids(&parts[2]), vec![0, 2]);
    }
}
