//! Minimal dependency-free argument parsing.

use std::collections::BTreeMap;

/// Usage banner.
pub const USAGE: &str = "\
usage: dwrs <command> [--flag value ...]

commands:
  sample       run distributed weighted SWOR over a synthetic stream
               (single-threaded lockstep simulator)
               flags: --n --k --s --workload --seed --partition --latency
  run          run distributed weighted SWOR on a selectable engine and
               report throughput alongside the sample and metrics
               flags: --engine {lockstep|threads|tcp} (default threads)
                      --topology {flat|tree}          (default flat)
                      --n --k --s --workload --seed --partition
                      --batch <msgs per upstream frame>   (default 64)
                      --queue <up-queue bound in batches> (default 128)
                      --format {text|json}                (default text)
               tree topology only (--k sites split across groups, each
               group's aggregator syncing its sample to a root merger):
                      --groups <g>          (default 2; must divide --k)
                      --sync-every <items>  (default 10000)
  serve        run a standalone SWOR coordinator as a TCP server: accept
               --k framed site connections, then print sample + metrics
               flags: --addr (default 127.0.0.1:0, prints bound address)
                      --k --s --seed --queue
  feed         drive one site of a `dwrs serve` coordinator over TCP;
               run k feeds with identical --n/--workload/--seed/--partition
               and distinct --site to reproduce `run --engine tcp`
               flags: --connect <addr> --site <i>
                      --n --k --s --workload --seed --partition --batch
  workload     print a generated workload as CSV (id,weight)
               flags: --kind --n --seed
  track-l1     compare the L1 trackers on a unit stream
               flags: --n --k --eps --seed
  residual-hh  track residual heavy hitters on a skewed stream
               flags: --n --k --eps --delta --top --seed

workload kinds: unit | uniform:<lo>,<hi> | zipf:<alpha> | pareto:<alpha>
                | lognormal:<mu>,<sigma> | residual_skew:<top>
partitions:     roundrobin | random | single:<i> | skewed:<hot>";

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: a command plus `--key value` flags.
#[derive(Clone, Debug)]
pub struct Parsed {
    /// The subcommand.
    pub command: String,
    /// Flag map (keys without the leading dashes).
    pub flags: BTreeMap<String, String>,
}

impl Parsed {
    /// String flag with default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Integer flag with default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Float flag with default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }
}

/// Parses `argv` (without the program name) into a [`Parsed`].
pub fn parse_args(argv: &[String]) -> Result<Parsed, ArgError> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| ArgError("missing command".into()))?
        .clone();
    if command.starts_with("--") {
        return Err(ArgError(format!(
            "expected a command, got flag '{command}'"
        )));
    }
    let mut flags = BTreeMap::new();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| ArgError(format!("expected --flag, got '{flag}'")))?;
        let value = it
            .next()
            .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(Parsed { command, flags })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse_args(&argv("sample --n 100 --k 4")).unwrap();
        assert_eq!(p.command, "sample");
        assert_eq!(p.u64_or("n", 0).unwrap(), 100);
        assert_eq!(p.u64_or("k", 0).unwrap(), 4);
        assert_eq!(p.u64_or("s", 16).unwrap(), 16);
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse_args(&argv("sample --n")).is_err());
    }

    #[test]
    fn rejects_bare_value() {
        assert!(parse_args(&argv("sample n 100")).is_err());
    }

    #[test]
    fn rejects_flag_as_command() {
        assert!(parse_args(&argv("--n 100")).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn numeric_validation() {
        let p = parse_args(&argv("sample --eps abc")).unwrap();
        assert!(p.f64_or("eps", 0.1).is_err());
        let p = parse_args(&argv("sample --eps 0.25")).unwrap();
        assert_eq!(p.f64_or("eps", 0.1).unwrap(), 0.25);
    }
}
