//! Minimal dependency-free argument parsing.

use std::collections::BTreeMap;

/// Usage banner.
pub const USAGE: &str = "\
usage: dwrs <command> [--flag value ...]

commands:
  sample       run distributed weighted SWOR over a synthetic stream
               (single-threaded lockstep simulator)
               flags: --n --k --s --workload --seed --partition --latency
  run          run one of the paper's applications on a selectable engine
               and report throughput alongside the sample, metrics and the
               query's answer; the workload streams through the scenario
               driver's bounded dispatcher, so memory stays O(batch x
               queue) whatever --n
               flags: --engine {lockstep|threads|tcp|epoll}
                                                       (default threads;
                        epoll = the tcp wire format multiplexed onto a
                        few event-loop threads, for k in the thousands)
                      --topology {flat|tree}          (default flat)
                      --query  {swor|l1[:eps[,delta]]|rhh[:eps[,delta]]
                                |window[:len]}        (default swor)
                        swor    continuous weighted SWOR (sample size --s)
                        l1      L1/count tracking, W~ = (1+-eps)W (Thm 6);
                                s and the duplication factor derive from
                                eps,delta (defaults 0.2,0.25)
                        rhh     residual heavy hitters (Thm 4): top 2/eps
                                sample items by weight, recall checked
                                against the exact oracle (defaults
                                eps 0.2, delta 0.05)
                        window  weighted SWOR over the last len arrivals
                                (default 100000; needs arrival-ordered ids,
                                true for every built-in workload)
                      --n --k --s --workload --seed --partition
                      --batch <msgs per upstream frame>   (default 64)
                      --queue <up-queue bound in batches> (default 128)
                      --down-poll-every <items between down-link polls>
                                                          (default 32;
                        lower = fresher thresholds, higher = throughput)
                      --format {text|json}                (default text)
                      --materialize {true|false}          (default false;
                        true pre-builds the stream in memory, O(n) RSS)
               tree topology only (--k sites split across groups, each
               group's aggregator syncing its sample to a root merger):
                      --groups <g>          (default 2; must divide --k)
                      --sync-every <items>  (default 10000)
               counts (--n, --sync-every) accept magnitudes: 250k, 1m,
               2.5e6, 1g
  serve        run a standalone SWOR coordinator as a TCP server: accept
               --k framed site connections, then print sample + metrics
               flags: --addr (default 127.0.0.1:0, prints bound address)
                      --k --s --seed --queue
  feed         drive one site of a `dwrs serve` coordinator over TCP;
               run k feeds with identical --n/--workload/--seed/--partition
               and distinct --site to reproduce `run --engine tcp`
               flags: --connect <addr> --site <i>
                      --n --k --s --workload --seed --partition --batch
  daemon       run the long-lived multi-stream sampling service: hosts
               many named streams (each with its own k, s, and query),
               accepts attach/detach/reconnect mid-run, and answers live
               queries while streams run; drains gracefully on a shutdown
               control frame or SIGTERM/SIGINT
               flags: --listen (default 127.0.0.1:0, prints bound address)
                      --seed --queue
  attach       drive one site slot of a daemon stream (creates the stream
               first if needed; an existing stream keeps its original
               configuration); --eof false detaches instead of finishing,
               leaving the slot resumable by a later attach
               flags: --connect <addr> --stream <name> --site <i>
                      --query {swor|l1[:eps[,delta]]|rhh[:eps[,delta]]
                               |window[:len]}  (stream query, default swor)
                      --eof {true|false}       (default true)
                      --n --k --s --workload --seed --partition --batch
                      --down-poll-every
  query        live queries against a running daemon stream
               flags: --connect <addr> --stream <name>
                      --kind {sample|l1-now|rhh-so-far|window-now|stats
                              |drain|shutdown} (default stats)
                      --window <len>  (window-now on non-window streams)
                      --repeat <n>    (re-issue n times; prints queries/s
                                       plus sketch-backed round-trip
                                       latency p50/p90/p99/max)
                      --format {text|json}
  metrics      one-shot telemetry scrape of a running daemon: counters,
               gauges, quantile histograms, trace events, and a section
               per live stream
               flags: --connect <addr>
                      --format {prom|json}  (default prom: Prometheus-
                                             style exposition text)
                      --events <n>          (trace events per ring,
                                             default 32)
  top          refreshing per-stream table against a live daemon:
               items/s (from consecutive scrapes), sites attached/eof,
               queue depth, live-query latency p50/p95/p99, last trace
               event
               flags: --connect <addr>
                      --refresh <seconds>   (default 1)
                      --iterations <n>      (default 0 = until stopped)
                      --events <n>          (default 4)
  load         drive a daemon stream at a configured rate under a traffic
               schedule, interleave live query workers, optionally execute
               a seeded chaos plan (clean kills, connection drops, pauses),
               and assert the post-run invariants (sample containment
               across failover, monotone watermarks, error envelopes);
               exits non-zero on any violation
               flags: --connect <addr>  (omit to run an in-process daemon
                                         for the duration of the run)
                      --stream <name>          (default load)
                      --writers <w>            (site slots, default 4)
                      --s <sample size>        (default 64)
                      --query {swor|l1[:eps[,delta]]|rhh[:eps[,delta]]
                               |window[:len]}  (default swor)
                      --rate <items/s>         (default 50k; magnitudes ok)
                      --n <items>              (default 100k)
                      --schedule {steady|bursty[:period_ms,duty_pct,burst]
                                  |diurnal[:period_ms,amp]
                                  |hotkey[:hot_pct]}     (default steady)
                      --query-workers <q>      (default 2)
                      --faults <f>    (default 0 = chaos off; faults round-
                                       robin across writers, actions cycle
                                       kill-clean, kill-drop, pause)
                      --seed <seed>            (default 1)
                      --batch --queue          (attach-client batching)
                      --format {text|json}     (default text)
                      --bench <path>  (append the JSON row to a file)
  workload     print a generated workload as CSV (id,weight)
               flags: --kind --n --seed
  track-l1     compare the L1 trackers on a unit stream
               flags: --n --k --eps --seed
  residual-hh  track residual heavy hitters on a skewed stream
               flags: --n --k --eps --delta --top --seed

workload kinds: unit | uniform:<lo>,<hi> | zipf:<alpha> | zipf_iid:<alpha>
                | pareto:<alpha> | lognormal:<mu>,<sigma>
                | residual_skew:<top>
                | csv:<path> (id,weight records; `dwrs workload` output)
                zipf is the exact rank permutation (O(n) memory; `run`
                needs --materialize true); zipf_iid draws i.i.d. ranks
                and streams at O(1) memory
partitions:     roundrobin | random | single:<i> | skewed:<hot>";

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: a command plus `--key value` flags.
#[derive(Clone, Debug)]
pub struct Parsed {
    /// The subcommand.
    pub command: String,
    /// Flag map (keys without the leading dashes).
    pub flags: BTreeMap<String, String>,
}

impl Parsed {
    /// String flag with default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Integer flag with default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Float flag with default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Count flag with default, accepting human-readable magnitudes (see
    /// [`parse_magnitude`]): `--n 1m`, `--n 250k`, `--n 2.5e6`.
    pub fn magnitude_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => parse_magnitude(v).map_err(|e| ArgError(format!("--{key}: {e}"))),
        }
    }
}

/// Parses a count with optional human-readable magnitude: a plain integer
/// (`1000000`), a decimal with a `k`/`m`/`g`/`b` suffix (`250k`, `1m`,
/// `2.5m`, `1g` — case-insensitive; `b` = `g` = 10⁹), or scientific
/// notation (`2.5e6`). The value must be a non-negative whole number of
/// items.
pub fn parse_magnitude(v: &str) -> Result<u64, String> {
    let v = v.trim();
    if v.is_empty() {
        return Err("expects a count, got ''".into());
    }
    if let Ok(n) = v.parse::<u64>() {
        return Ok(n);
    }
    let (digits, multiplier) = match v.chars().last().map(|c| c.to_ascii_lowercase()) {
        Some('k') => (&v[..v.len() - 1], 1e3),
        Some('m') => (&v[..v.len() - 1], 1e6),
        Some('g') | Some('b') => (&v[..v.len() - 1], 1e9),
        _ => (v, 1.0),
    };
    let base: f64 = digits
        .parse()
        .map_err(|_| format!("expects a count like 1000000, 250k, 1m or 2.5e6, got '{v}'"))?;
    let scaled = base * multiplier;
    if !scaled.is_finite() || scaled < 0.0 || scaled > u64::MAX as f64 {
        return Err(format!("count '{v}' is out of range"));
    }
    if (scaled - scaled.round()).abs() > 1e-6 {
        return Err(format!("count '{v}' is not a whole number of items"));
    }
    Ok(scaled.round() as u64)
}

/// Parses `argv` (without the program name) into a [`Parsed`].
pub fn parse_args(argv: &[String]) -> Result<Parsed, ArgError> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| ArgError("missing command".into()))?
        .clone();
    if command.starts_with("--") {
        return Err(ArgError(format!(
            "expected a command, got flag '{command}'"
        )));
    }
    let mut flags = BTreeMap::new();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| ArgError(format!("expected --flag, got '{flag}'")))?;
        let value = it
            .next()
            .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(Parsed { command, flags })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse_args(&argv("sample --n 100 --k 4")).unwrap();
        assert_eq!(p.command, "sample");
        assert_eq!(p.u64_or("n", 0).unwrap(), 100);
        assert_eq!(p.u64_or("k", 0).unwrap(), 4);
        assert_eq!(p.u64_or("s", 16).unwrap(), 16);
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse_args(&argv("sample --n")).is_err());
    }

    #[test]
    fn rejects_bare_value() {
        assert!(parse_args(&argv("sample n 100")).is_err());
    }

    #[test]
    fn rejects_flag_as_command() {
        assert!(parse_args(&argv("--n 100")).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn magnitudes_parse() {
        assert_eq!(parse_magnitude("1000000").unwrap(), 1_000_000);
        assert_eq!(parse_magnitude("250k").unwrap(), 250_000);
        assert_eq!(parse_magnitude("1m").unwrap(), 1_000_000);
        assert_eq!(parse_magnitude("2.5m").unwrap(), 2_500_000);
        assert_eq!(parse_magnitude("2.5M").unwrap(), 2_500_000);
        assert_eq!(parse_magnitude("2.5e6").unwrap(), 2_500_000);
        assert_eq!(parse_magnitude("1g").unwrap(), 1_000_000_000);
        assert_eq!(parse_magnitude("1b").unwrap(), 1_000_000_000);
        assert_eq!(parse_magnitude("0").unwrap(), 0);
        assert!(parse_magnitude("abc").is_err());
        assert!(parse_magnitude("1.5").is_err(), "fractional items rejected");
        assert!(parse_magnitude("-5k").is_err());
        assert!(parse_magnitude("").is_err());
        assert!(parse_magnitude("1e30").is_err(), "out of u64 range");
    }

    #[test]
    fn magnitude_flag_reports_key() {
        let p = parse_args(&argv("run --n 2m --sync-every 250k")).unwrap();
        assert_eq!(p.magnitude_or("n", 0).unwrap(), 2_000_000);
        assert_eq!(p.magnitude_or("sync-every", 0).unwrap(), 250_000);
        assert_eq!(p.magnitude_or("absent", 7).unwrap(), 7);
        let p = parse_args(&argv("run --n xyz")).unwrap();
        let err = p.magnitude_or("n", 0).unwrap_err();
        assert!(err.0.contains("--n"), "{err}");
    }

    #[test]
    fn numeric_validation() {
        let p = parse_args(&argv("sample --eps abc")).unwrap();
        assert!(p.f64_or("eps", 0.1).is_err());
        let p = parse_args(&argv("sample --eps 0.25")).unwrap();
        assert_eq!(p.f64_or("eps", 0.1).unwrap(), 0.25);
    }
}
