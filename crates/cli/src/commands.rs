//! Subcommand implementations.

use std::io::Write;

use dwrs_apps::l1::{
    run_tracker, FolkloreTracker, HyzTracker, L1Config, L1DupTracker, L1Estimator,
    PiggybackL1Tracker,
};
use dwrs_apps::residual_hh::{
    exact_residual_heavy_hitters, recall, ResidualHeavyHitters, ResidualHhConfig,
};
use dwrs_apps::L1Site;
use dwrs_core::ctrl::{CtrlMsg, CtrlResp, LiveQueryKind, LiveSnapshot, MetricsReport};
use dwrs_core::framed::FrameCodec;
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig};
use dwrs_runtime::query::l1_site_seed;
use dwrs_runtime::{
    run_scenario, EngineKind, Query, QueryAnswer, RunReport, RuntimeConfig, Scenario, Topology,
    Workload,
};
use dwrs_sim::SiteNode;
use dwrs_sim::{assign_sites, build_swor, swor_coordinator, swor_site, Metrics, Partition};
use dwrs_stats::QuantileSketch;
use dwrs_telemetry::{event_name, render_json, render_prometheus, HISTOGRAM_EPS};
use dwrs_workloads as workloads;

use crate::args::{ArgError, Parsed};

/// Runs the parsed command, writing output to `out`.
pub fn dispatch<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    match p.command.as_str() {
        "sample" => cmd_sample(p, out),
        "run" => cmd_run(p, out),
        "serve" => cmd_serve(p, out),
        "feed" => cmd_feed(p, out),
        "daemon" => cmd_daemon(p, out),
        "attach" => cmd_attach(p, out),
        "query" => cmd_query(p, out),
        "metrics" => cmd_metrics(p, out),
        "top" => cmd_top(p, out),
        "load" => cmd_load(p, out),
        "workload" => cmd_workload(p, out),
        "track-l1" => cmd_track_l1(p, out),
        "residual-hh" => cmd_residual_hh(p, out),
        "help" | "usage" => {
            writeln!(out, "{}", crate::args::USAGE).ok();
            Ok(())
        }
        other => Err(ArgError(format!("unknown command '{other}'"))),
    }
}

/// Materializes a workload from a `kind[:params]` spec — the vec-backed
/// adapter over the streaming [`Workload`] sources, for the commands that
/// genuinely need the whole stream in memory (`sample`'s lockstep-latency
/// mode). Everything else streams.
pub fn make_workload(kind: &str, n: usize, seed: u64) -> Result<Vec<Item>, ArgError> {
    let workload = Workload::parse(kind).map_err(ArgError)?;
    // `zipf` resolves to the exact rank permutation (each rank appears
    // exactly once), preserving the `sample` command's historical output
    // for a given seed; `zipf_iid` is the streaming i.i.d.-rank variant.
    let source = workload
        .source(n as u64, seed)
        .map_err(|e| ArgError(e.to_string()))?;
    Ok(source.collect())
}

/// Parses a partition spec.
pub fn make_partition(spec: &str) -> Result<Partition, ArgError> {
    let (name, param) = match spec.split_once(':') {
        Some((a, b)) => (a, b),
        None => (spec, ""),
    };
    Ok(match name {
        "roundrobin" => Partition::RoundRobin,
        "random" => Partition::Random,
        "single" => Partition::SingleSite(
            param
                .parse()
                .map_err(|_| ArgError(format!("bad site index '{param}'")))?,
        ),
        "skewed" => Partition::Skewed {
            hot: param
                .parse()
                .map_err(|_| ArgError(format!("bad hot fraction '{param}'")))?,
        },
        other => return Err(ArgError(format!("unknown partition '{other}'"))),
    })
}

fn cmd_sample<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let n = p.u64_or("n", 100_000)? as usize;
    let k = p.u64_or("k", 8)? as usize;
    let s = p.u64_or("s", 16)? as usize;
    let seed = p.u64_or("seed", 42)?;
    let latency = p.u64_or("latency", 0)?;
    let items = make_workload(&p.str_or("workload", "uniform:1,10"), n, seed ^ 0xA5)?;
    let partition = make_partition(&p.str_or("partition", "roundrobin"))?;
    let total: f64 = items.iter().map(|i| i.weight).sum();

    let mut runner = if latency == 0 {
        build_swor(SworConfig::new(s, k), seed)
    } else {
        build_swor(SworConfig::new(s, k), seed).with_latency(latency)
    };
    let sites = assign_sites(partition, k, items.len(), seed ^ 0x17);
    runner.run(sites.into_iter().zip(items));

    writeln!(out, "stream: n = {n}, W = {total:.6e}, k = {k}, s = {s}").ok();
    writeln!(out, "sample (id, weight, key):").ok();
    for kd in runner.coordinator.sample() {
        writeln!(
            out,
            "  {:>12}  {:>14.4}  {:.6e}",
            kd.item.id, kd.item.weight, kd.key
        )
        .ok();
    }
    let m = &runner.metrics;
    writeln!(out, "messages: total {}", m.total()).ok();
    for (kind, count) in &m.by_kind {
        writeln!(out, "  {kind:<16} {count}").ok();
    }
    writeln!(out, "bytes on the wire: {}", m.total_bytes()).ok();
    Ok(())
}

/// Builds the [`Scenario`] shared by the engine commands (`run` and the
/// distributed `feed` half, which must reconstruct the identical global
/// stream) from the common flags. Engine/topology default to
/// threads/flat; `cmd_run` overrides them from its own flags.
fn make_scenario(p: &Parsed) -> Result<Scenario, ArgError> {
    let n = p.magnitude_or("n", 1_000_000)?;
    let k = p.u64_or("k", 8)? as usize;
    if k == 0 {
        return Err(ArgError("--k must be at least 1".into()));
    }
    let seed = p.u64_or("seed", 42)?;
    let s = p.u64_or("s", 64)? as usize;
    let workload = Workload::parse(&p.str_or("workload", "zipf_iid:1.1")).map_err(ArgError)?;
    let partition = make_partition(&p.str_or("partition", "roundrobin"))?;
    Ok(Scenario::new(EngineKind::Threads, k, s)
        .with_n(n)
        .with_seed(seed)
        .with_workload(workload)
        .with_partition(partition)
        .with_runtime(runtime_config(p)?))
}

fn runtime_config(p: &Parsed) -> Result<RuntimeConfig, ArgError> {
    Ok(RuntimeConfig::new()
        .with_batch_max(p.u64_or("batch", 64)?.max(1) as usize)
        .with_queue_capacity(p.u64_or("queue", 128)?.max(1) as usize)
        .with_down_poll_every(p.u64_or("down-poll-every", 32)?.max(1) as u32))
}

/// Prints the sample/metrics block shared by `run`, `serve`, and `sample`.
fn report_run<W: Write>(out: &mut W, sample: &[dwrs_core::Keyed], metrics: &Metrics, head: usize) {
    writeln!(out, "sample size: {}", sample.len()).ok();
    writeln!(out, "sample head (id, weight, key):").ok();
    for kd in sample.iter().take(head) {
        writeln!(
            out,
            "  {:>12}  {:>14.4}  {:.6e}",
            kd.item.id, kd.item.weight, kd.key
        )
        .ok();
    }
    writeln!(out, "messages: total {}", metrics.total()).ok();
    for (kind, count) in &metrics.by_kind {
        writeln!(out, "  {kind:<16} {count}").ok();
    }
    writeln!(out, "bytes on the wire: {}", metrics.total_bytes()).ok();
}

/// `run`: every engine×topology combination routes through one
/// [`Scenario`] and [`run_scenario`] — the workload streams through the
/// driver's bounded dispatcher, so memory stays O(batch × queue)
/// regardless of `--n` (pass `--materialize true` to pre-build the stream
/// in memory instead, e.g. for streaming-vs-materialized comparisons).
fn cmd_run<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let engine: EngineKind = p.str_or("engine", "threads").parse().map_err(ArgError)?;
    let format = p.str_or("format", "text");
    if format != "text" && format != "json" {
        return Err(ArgError(format!(
            "--format must be text or json, got '{format}'"
        )));
    }
    let mut sc = make_scenario(p)?;
    sc.engine = engine;
    sc.query = Query::parse(&p.str_or("query", "swor")).map_err(ArgError)?;
    sc.topology = match p.str_or("topology", "flat").as_str() {
        "flat" => Topology::Flat,
        "tree" => {
            let groups = p.u64_or("groups", 2)? as usize;
            let sync_every = p.magnitude_or("sync-every", 10_000)?;
            if groups == 0 {
                return Err(ArgError("--groups must be at least 1".into()));
            }
            if sync_every == 0 {
                return Err(ArgError("--sync-every must be at least 1".into()));
            }
            if !sc.k.is_multiple_of(groups) {
                return Err(ArgError(format!(
                    "--groups {groups} must divide --k {} (sites per group must be uniform)",
                    sc.k
                )));
            }
            Topology::Tree { groups, sync_every }
        }
        other => {
            return Err(ArgError(format!(
                "--topology must be flat or tree, got '{other}'"
            )))
        }
    };
    let streaming = match p.str_or("materialize", "false").as_str() {
        "false" | "no" | "0" => {
            // A streaming run of the exact zipf permutation is impossible:
            // historically `zipf` silently fell back to the i.i.d.-rank
            // stream, changing the workload distribution with the flag.
            // Refuse the ambiguous combination instead.
            if let Workload::ZipfRanked { alpha } = sc.workload {
                return Err(ArgError(format!(
                    "workload 'zipf:{alpha}' is the exact rank permutation and cannot \
                     stream; pass --materialize true to run it (O(n) memory), or use \
                     'zipf_iid:{alpha}' for the streaming i.i.d.-rank distribution"
                )));
            }
            true
        }
        "true" | "yes" | "1" => {
            // Pre-build the identical stream in memory (the pre-driver
            // execution model): generation leaves the timed window, RSS
            // grows to O(n).
            let items: Vec<Item> = sc.source().map_err(|e| ArgError(e.to_string()))?.collect();
            sc.workload = Workload::items(items);
            false
        }
        other => {
            return Err(ArgError(format!(
                "--materialize must be true or false, got '{other}'"
            )))
        }
    };
    let report = run_scenario(&sc).map_err(|e| ArgError(format!("{engine} engine failed: {e}")))?;
    print_report(&report, &sc, streaming, &format, out);
    Ok(())
}

/// Prints a [`RunReport`] in the CLI's text or JSON format.
fn print_report<W: Write>(
    report: &RunReport,
    sc: &Scenario,
    streaming: bool,
    format: &str,
    out: &mut W,
) {
    let engine = report.engine;
    let (n, k, s) = (report.items, report.k, report.s);
    let elapsed_s = report.elapsed.as_secs_f64();
    let items_per_s = report.items_per_s();
    let m = &report.metrics;
    let rss = report.peak_rss_bytes.unwrap_or(0);
    // Query-specific JSON fragment, spliced into both topology shapes.
    let answer_json = match &report.answer {
        QueryAnswer::Swor => String::new(),
        QueryAnswer::L1 {
            estimate,
            true_weight,
            rel_error,
            ell,
        } => format!(
            ",\"estimate\":{estimate:.6e},\"true_weight\":{true_weight:.6e},\
             \"rel_error\":{rel_error:.6},\"ell\":{ell}"
        ),
        QueryAnswer::ResidualHh {
            candidates,
            required,
            recall,
        } => format!(
            ",\"candidates\":{},\"required\":{required},\"recall\":{recall:.4}",
            candidates.len()
        ),
        QueryAnswer::SlidingWindow { window } => format!(",\"window\":{window}"),
    };
    let query = report.query.name();
    // The per-tier `(items_processed, total_messages)` timeline snapshots
    // the lockstep runner and tree tiers record — previously dropped on
    // the floor by the JSON output.
    let timeline_json = if m.timeline.is_empty() {
        String::new()
    } else {
        let points: Vec<String> = m
            .timeline
            .iter()
            .map(|(items, msgs)| format!("[{items},{msgs}]"))
            .collect();
        format!(",\"metrics_timeline\":[{}]", points.join(","))
    };
    if format == "json" {
        match report.topology {
            Topology::Flat => writeln!(
                out,
                "{{\"engine\":\"{engine}\",\"topology\":\"flat\",\"query\":\"{query}\",\
                 \"n\":{n},\"k\":{k},\"s\":{s},\
                 \"elapsed_s\":{elapsed_s:.6},\"items_per_s\":{items_per_s:.1},\
                 \"sample_size\":{},\"messages\":{},\"up_messages\":{},\
                 \"down_messages\":{},\"bytes\":{},\"streaming\":{streaming},\
                 \"invariants_ok\":{}{answer_json}{timeline_json},\"peak_rss_bytes\":{rss}}}",
                report.sample.len(),
                m.total(),
                m.up_total,
                m.down_total,
                m.total_bytes(),
                report.invariants_ok(),
            )
            .ok(),
            Topology::Tree { groups, sync_every } => writeln!(
                out,
                "{{\"engine\":\"{engine}\",\"topology\":\"tree\",\"query\":\"{query}\",\
                 \"n\":{n},\"k\":{k},\
                 \"s\":{s},\"groups\":{groups},\"k_per_group\":{},\"sync_every\":{sync_every},\
                 \"elapsed_s\":{elapsed_s:.6},\"items_per_s\":{items_per_s:.1},\
                 \"sample_size\":{},\"messages\":{},\"up_messages\":{},\
                 \"down_messages\":{},\"sync_messages\":{},\"syncs\":{},\"bytes\":{},\
                 \"streaming\":{streaming},\"invariants_ok\":{}{answer_json}\
                 {timeline_json},\"peak_rss_bytes\":{rss}}}",
                k / groups,
                report.sample.len(),
                m.total(),
                m.up_total,
                m.down_total,
                m.kind("sync"),
                report.syncs(),
                m.total_bytes(),
                report.invariants_ok(),
            )
            .ok(),
        };
        return;
    }
    match report.topology {
        Topology::Flat => {
            writeln!(
                out,
                "engine {engine}: query = {query}, n = {n}, k = {k}, s = {s}, \
                 batch = {}, queue = {}",
                sc.runtime.batch_max, sc.runtime.queue_capacity
            )
            .ok();
        }
        Topology::Tree { groups, sync_every } => {
            writeln!(
                out,
                "engine {engine}: query = {query}, n = {n}, topology = tree \
                 ({groups} groups x {} sites), s = {s}, sync_every = {sync_every}, \
                 batch = {}, queue = {}",
                k / groups,
                sc.runtime.batch_max,
                sc.runtime.queue_capacity
            )
            .ok();
        }
    }
    match &report.answer {
        QueryAnswer::Swor => {}
        QueryAnswer::L1 {
            estimate,
            true_weight,
            rel_error,
            ell,
        } => {
            writeln!(
                out,
                "L1 estimate: W~ = {estimate:.6e} vs exact W = {true_weight:.6e} \
                 (rel error {rel_error:.4}, ell = {ell})"
            )
            .ok();
        }
        QueryAnswer::ResidualHh {
            candidates,
            required,
            recall,
        } => {
            writeln!(
                out,
                "residual heavy hitters: {} candidates, recall {recall:.3} of \
                 {required} required (exact oracle)",
                candidates.len()
            )
            .ok();
        }
        QueryAnswer::SlidingWindow { window } => {
            writeln!(out, "sliding window: last {window} arrivals sampled").ok();
        }
    }
    writeln!(out, "elapsed: {elapsed_s:.3} s  ({items_per_s:.0} items/s)").ok();
    if let Some(d) = &report.dispatcher {
        writeln!(
            out,
            "streaming dispatch: {} frames, peak {} in flight (bound {}), \
             buffered window <= {} items",
            d.frames,
            d.peak_in_flight_frames,
            d.in_flight_bound(),
            d.buffered_items_bound()
        )
        .ok();
    }
    if let Topology::Tree { .. } = report.topology {
        writeln!(
            out,
            "root syncs: {} ({} sync messages; root exact at shutdown)",
            report.syncs(),
            m.kind("sync")
        )
        .ok();
    }
    if !report.invariants_ok() {
        writeln!(
            out,
            "WARNING: invariant violations: {:?}",
            report.violations
        )
        .ok();
    }
    report_run(out, &report.sample, m, 8);
}

fn cmd_serve<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let addr = p.str_or("addr", "127.0.0.1:0");
    let k = p.u64_or("k", 8)? as usize;
    let s = p.u64_or("s", 64)? as usize;
    let seed = p.u64_or("seed", 42)?;
    if k == 0 {
        return Err(ArgError("--k must be at least 1".into()));
    }
    let rcfg = runtime_config(p)?;
    let listener = std::net::TcpListener::bind(&addr)
        .map_err(|e| ArgError(format!("cannot bind '{addr}': {e}")))?;
    let bound = listener.local_addr().map_err(|e| ArgError(e.to_string()))?;
    writeln!(out, "listening on {bound} (k = {k}, s = {s})").ok();
    writeln!(
        out,
        "note: serve runs one fixed-k stream and exits at Eof; for a persistent \
         multi-stream service with live queries, use `dwrs daemon`"
    )
    .ok();
    out.flush().ok();
    let coordinator = swor_coordinator(SworConfig::new(s, k), seed);
    let (coordinator, metrics, items) =
        dwrs_runtime::tcp::serve_coordinator(&listener, k, coordinator, &rcfg)
            .map_err(|e| ArgError(format!("serve failed: {e}")))?;
    let sample = coordinator.sample();
    // The same snapshot JSON the daemon's live queries emit, so scripts
    // can consume serve and daemon output interchangeably.
    let snapshot = LiveSnapshot {
        kind: LiveQueryKind::CurrentSample,
        items,
        epoch: coordinator.epoch(),
        u: coordinator.u(),
        estimate: sample.iter().map(|kd| kd.item.weight).sum(),
        ell: 1,
        sites_attached: 0,
        sites_eof: k as u32,
        up_msgs: metrics.up_total,
        down_msgs: metrics.down_total,
        up_bytes: metrics.up_bytes,
        down_bytes: metrics.down_bytes,
        broadcast_events: metrics.broadcast_events,
        sample: sample.clone(),
    };
    writeln!(out, "{}", snapshot.to_json("serve")).ok();
    report_run(out, &sample, &metrics, 8);
    Ok(())
}

fn cmd_feed<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let connect = p
        .flags
        .get("connect")
        .cloned()
        .ok_or_else(|| ArgError("feed needs --connect <addr>".into()))?;
    let site_id = p
        .flags
        .get("site")
        .ok_or_else(|| ArgError("feed needs --site <i>".into()))?
        .parse::<usize>()
        .map_err(|_| ArgError("--site expects an integer".into()))?;
    let sc = make_scenario(p)?;
    if site_id >= sc.k {
        return Err(ArgError(format!(
            "--site {site_id} out of range for k = {}",
            sc.k
        )));
    }
    // Same refusal as `run`'s streaming mode: a feed process streams its
    // share of the source on the fly and must not silently materialize
    // the O(n) rank permutation (nor silently switch distributions).
    if let Workload::ZipfRanked { alpha } = sc.workload {
        return Err(ArgError(format!(
            "workload 'zipf:{alpha}' is the exact rank permutation and cannot stream \
             through feed; use 'zipf_iid:{alpha}' for the streaming i.i.d.-rank \
             distribution"
        )));
    }
    // This feed's share of the deterministic global stream, filtered out
    // of the scenario's streaming source on the fly — every feed process
    // reconstructs the identical stream from the shared flags, nothing is
    // materialized.
    let mut partitioner = sc.partitioner();
    let source = sc.source().map_err(|e| ArgError(e.to_string()))?;
    let my_items = source.filter(move |_| partitioner.next_site() == site_id);
    let site = swor_site(&SworConfig::new(sc.s, sc.k), sc.seed, site_id);
    let (site, metrics) =
        dwrs_runtime::tcp::run_site(connect.as_str(), site_id, site, my_items, &sc.runtime)
            .map_err(|e| ArgError(format!("feed failed: {e}")))?;
    writeln!(
        out,
        "site {site_id}: fed {} items, sent {} messages ({} bytes)",
        site.stats.observed, metrics.up_total, metrics.up_bytes
    )
    .ok();
    Ok(())
}

/// `daemon`: the long-lived multi-stream sampling service. Blocks until a
/// `Shutdown` control frame arrives or the process receives
/// SIGTERM/SIGINT, then reports every drained stream.
fn cmd_daemon<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let listen = p.str_or("listen", "127.0.0.1:0");
    let cfg = DaemonConfig {
        seed: p.u64_or("seed", 42)?,
        queue_capacity: p.u64_or("queue", 128)?.max(1) as usize,
    };
    let daemon = Daemon::bind(listen.as_str(), cfg)
        .map_err(|e| ArgError(format!("cannot bind '{listen}': {e}")))?;
    writeln!(out, "daemon listening on {}", daemon.local_addr()).ok();
    writeln!(
        out,
        "create/attach/query streams with: dwrs attach | dwrs query --connect {}",
        daemon.local_addr()
    )
    .ok();
    out.flush().ok();
    let daemon = std::sync::Arc::new(daemon);
    #[cfg(unix)]
    install_signal_shutdown(std::sync::Arc::clone(&daemon));
    daemon.join();
    for (name, snap) in daemon.drained() {
        writeln!(
            out,
            "drained stream {name:?}: {} items, sample size {}, {} up msgs ({} bytes), \
             {} broadcasts",
            snap.items,
            snap.sample.len(),
            snap.up_msgs,
            snap.up_bytes,
            snap.broadcast_events
        )
        .ok();
    }
    writeln!(out, "daemon stopped").ok();
    Ok(())
}

/// Installs a SIGTERM/SIGINT handler that triggers a graceful
/// [`Daemon::shutdown`] (every stream drained with the flush → Eof →
/// drain discipline) from a watcher thread — the handler itself only sets
/// a flag, keeping it async-signal-safe.
#[cfg(unix)]
fn install_signal_shutdown(daemon: std::sync::Arc<Daemon>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_sig: i32) {
        // ordering: SeqCst — set from async-signal context where the cost
        // is irrelevant; pairs with the SeqCst poll below and leaves no
        // doubt the flag is visible to the watcher on any architecture.
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `on_signal` is an `extern "C" fn(i32)` matching libc's
    // sighandler_t and is async-signal-safe (a single atomic store, no
    // allocation or locking); 15/SIGTERM and 2/SIGINT are valid signal
    // numbers on every unix this builds for.
    unsafe {
        signal(15, on_signal); // SIGTERM
        signal(2, on_signal); // SIGINT
    }
    std::thread::spawn(move || loop {
        // ordering: SeqCst — matches the handler's store; this 20 Hz poll
        // is nowhere near hot enough for the fence cost to matter.
        if SIGNALLED.load(Ordering::SeqCst) {
            daemon.shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

/// `attach`: drive one site slot of a daemon stream. Creates the stream
/// first (idempotent — an existing stream keeps its configuration), then
/// streams this site's share of the deterministic workload, exactly as
/// `feed` does for the one-shot server. `--eof false` detaches instead of
/// finishing, leaving the slot resumable by a later attach.
fn cmd_attach<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let connect = p
        .flags
        .get("connect")
        .cloned()
        .ok_or_else(|| ArgError("attach needs --connect <addr>".into()))?;
    let stream = p
        .flags
        .get("stream")
        .cloned()
        .ok_or_else(|| ArgError("attach needs --stream <name>".into()))?;
    let site_id = p
        .flags
        .get("site")
        .ok_or_else(|| ArgError("attach needs --site <i>".into()))?
        .parse::<usize>()
        .map_err(|_| ArgError("--site expects an integer".into()))?;
    let sc = make_scenario(p)?;
    if site_id >= sc.k {
        return Err(ArgError(format!(
            "--site {site_id} out of range for k = {}",
            sc.k
        )));
    }
    let spec = p.str_or("query", "swor");
    let query = Query::parse(&spec).map_err(ArgError)?;
    let send_eof = match p.str_or("eof", "true").as_str() {
        "true" => true,
        "false" => false,
        v => return Err(ArgError(format!("--eof expects true|false, got '{v}'"))),
    };
    // Same streaming refusal as `feed`: the exact rank permutation cannot
    // stream.
    if let Workload::ZipfRanked { alpha } = sc.workload {
        return Err(ArgError(format!(
            "workload 'zipf:{alpha}' is the exact rank permutation and cannot stream \
             through attach; use 'zipf_iid:{alpha}'"
        )));
    }
    // Create the stream first (idempotent), over a short-lived control
    // connection.
    let mut ctrl = CtrlClient::connect(connect.as_str())
        .map_err(|e| ArgError(format!("cannot connect '{connect}': {e}")))?;
    let created = ctrl
        .request(&CtrlMsg::Create {
            stream: stream.clone(),
            k: sc.k as u32,
            s: sc.s as u32,
            query: spec.clone(),
        })
        .map_err(|e| ArgError(format!("create failed: {e}")))?;
    if let CtrlResp::Err { msg } = created {
        return Err(ArgError(format!("create refused: {msg}")));
    }
    drop(ctrl);
    // This site's share of the deterministic global stream, filtered on
    // the fly — identical to `feed`'s partitioning.
    let mut partitioner = sc.partitioner();
    let source = sc.source().map_err(|e| ArgError(e.to_string()))?;
    let my_items = source.filter(move |_| partitioner.next_site() == site_id);
    let s_eff = query.sample_size(sc.s);
    let cfg = SworConfig::new(s_eff, sc.k);
    match query {
        Query::L1 { .. } => {
            let ell = query.duplication().expect("l1 has a duplication factor");
            let site = L1Site::new(&cfg, ell, l1_site_seed(sc.seed, site_id));
            drive_attach(
                &connect,
                &stream,
                site_id,
                site,
                my_items,
                &sc.runtime,
                send_eof,
                out,
            )
        }
        // rhh runs on the stock SWOR nodes; window streams run the plain
        // SWOR substrate with best-effort id filtering at query time.
        _ => {
            let site = swor_site(&cfg, sc.seed, site_id);
            drive_attach(
                &connect,
                &stream,
                site_id,
                site,
                my_items,
                &sc.runtime,
                send_eof,
                out,
            )
        }
    }
}

/// The attach-side driving loop shared by every site-node type.
#[allow(clippy::too_many_arguments)]
fn drive_attach<S, I, W>(
    addr: &str,
    stream: &str,
    site_id: usize,
    site: S,
    items: I,
    rcfg: &RuntimeConfig,
    send_eof: bool,
    out: &mut W,
) -> Result<(), ArgError>
where
    S: SiteNode,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    I: Iterator<Item = Item>,
    W: Write,
{
    let t0 = std::time::Instant::now();
    let mut client = AttachClient::attach(addr, stream, site_id, site, rcfg)
        .map_err(|e| ArgError(format!("attach failed: {e}")))?;
    let attach_ms = t0.elapsed().as_secs_f64() * 1e3;
    writeln!(
        out,
        "site {site_id}: attached to stream {stream:?} in {attach_ms:.2} ms \
         (resumed {}, prior items {})",
        client.resumed(),
        client.prior_items()
    )
    .ok();
    out.flush().ok();
    let mut fed = 0u64;
    client
        .feed(items.inspect(|_| fed += 1))
        .map_err(|e| ArgError(format!("feed failed: {e}")))?;
    let outcome = if send_eof {
        client.finish()
    } else {
        client.detach()
    };
    let (_, metrics) = outcome.map_err(|e| ArgError(format!("close failed: {e}")))?;
    writeln!(
        out,
        "site {site_id}: fed {fed} items, sent {} messages ({} bytes), {}",
        metrics.up_total,
        metrics.up_bytes,
        if send_eof {
            "finished (Eof)"
        } else {
            "detached (resumable)"
        }
    )
    .ok();
    Ok(())
}

/// `query`: issue live queries against a running daemon stream —
/// `sample`, `l1-now`, `rhh-so-far`, `window-now`, `stats` — plus the
/// `drain` and `shutdown` control verbs.
fn cmd_query<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let connect = p
        .flags
        .get("connect")
        .cloned()
        .ok_or_else(|| ArgError("query needs --connect <addr>".into()))?;
    let kindstr = p.str_or("kind", "stats");
    let format = p.str_or("format", "text");
    if format != "text" && format != "json" {
        return Err(ArgError(format!(
            "--format must be text or json, got '{format}'"
        )));
    }
    let live_kind = match kindstr.as_str() {
        "shutdown" | "drain" => None,
        other => Some(LiveQueryKind::parse(other).ok_or_else(|| {
            ArgError(format!(
                "--kind expects sample|l1-now|rhh-so-far|window-now|stats|drain|shutdown, \
                 got '{other}'"
            ))
        })?),
    };
    let mut ctrl = CtrlClient::connect(connect.as_str())
        .map_err(|e| ArgError(format!("cannot connect '{connect}': {e}")))?;
    if kindstr == "shutdown" {
        let resp = ctrl
            .shutdown()
            .map_err(|e| ArgError(format!("shutdown failed: {e}")))?;
        match resp {
            CtrlResp::Ok { info } => {
                writeln!(out, "daemon shut down: {info}").ok();
                return Ok(());
            }
            other => return Err(ArgError(format!("unexpected response {other:?}"))),
        }
    }
    let stream = p
        .flags
        .get("stream")
        .cloned()
        .ok_or_else(|| ArgError("query needs --stream <name>".into()))?;
    if kindstr == "drain" {
        let snap = ctrl
            .drain_stream(&stream)
            .map_err(|e| ArgError(format!("drain failed: {e}")))?;
        print_snapshot(out, &stream, &snap, &format);
        return Ok(());
    }
    let kind = live_kind.expect("validated above");
    let window = p.magnitude_or("window", 0)?;
    let repeat = p.u64_or("repeat", 1)?.max(1);
    // Client-side round-trip latencies go into the same ε-approximate
    // quantile sketch the daemon uses for its own service latencies, so
    // the two sides' percentiles are directly comparable.
    let mut latency = QuantileSketch::new(HISTOGRAM_EPS);
    let t0 = std::time::Instant::now();
    let mut last = None;
    for _ in 0..repeat {
        let q0 = std::time::Instant::now();
        last = Some(
            ctrl.snapshot(&stream, kind, window)
                .map_err(|e| ArgError(format!("query failed: {e}")))?,
        );
        latency.observe(q0.elapsed().as_nanos() as f64);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = last.expect("repeat >= 1");
    print_snapshot(out, &stream, &snap, &format);
    if repeat > 1 {
        let us = |q: f64, sketch: &mut QuantileSketch| sketch.query(q).unwrap_or(0.0) / 1e3;
        let (p50, p90, p99) = (
            us(0.50, &mut latency),
            us(0.90, &mut latency),
            us(0.99, &mut latency),
        );
        let max = latency.max().unwrap_or(0.0) / 1e3;
        let qps = repeat as f64 / elapsed.max(1e-9);
        if format == "json" {
            writeln!(
                out,
                "{{\"stream\":\"{stream}\",\"repeat\":{repeat},\"elapsed_s\":{elapsed:.6},\
                 \"queries_per_s\":{qps:.1},\"latency_us\":{{\"p50\":{p50:.1},\
                 \"p90\":{p90:.1},\"p99\":{p99:.1},\"max\":{max:.1}}}}}"
            )
            .ok();
        } else {
            writeln!(
                out,
                "{repeat} queries in {elapsed:.3} s ({qps:.0} queries/s)\n\
                 round-trip latency: p50 {p50:.1} us, p90 {p90:.1} us, \
                 p99 {p99:.1} us, max {max:.1} us"
            )
            .ok();
        }
    }
    Ok(())
}

/// `metrics`: one-shot telemetry scrape of a running daemon —
/// Prometheus-style exposition text by default, `--format json` for the
/// full structured report (per-stream sections included).
fn cmd_metrics<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let connect = p
        .flags
        .get("connect")
        .cloned()
        .ok_or_else(|| ArgError("metrics needs --connect <addr>".into()))?;
    let format = p.str_or("format", "prom");
    if !matches!(format.as_str(), "prom" | "text" | "json") {
        return Err(ArgError(format!(
            "--format must be prom, text or json, got '{format}'"
        )));
    }
    let events = p.u64_or("events", 32)?.min(u64::from(u32::MAX)) as u32;
    let mut ctrl = CtrlClient::connect(connect.as_str())
        .map_err(|e| ArgError(format!("cannot connect '{connect}': {e}")))?;
    let report = ctrl
        .metrics(events)
        .map_err(|e| ArgError(format!("scrape failed: {e}")))?;
    if format == "json" {
        writeln!(out, "{}", render_json(&report)).ok();
    } else {
        write!(out, "{}", render_prometheus(&report)).ok();
    }
    Ok(())
}

/// `top`: a refreshing per-stream table against a live daemon. Each round
/// scrapes the telemetry endpoint and derives items/s from the counter
/// and clock deltas between consecutive scrapes.
fn cmd_top<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let connect = p
        .flags
        .get("connect")
        .cloned()
        .ok_or_else(|| ArgError("top needs --connect <addr>".into()))?;
    let refresh = p.f64_or("refresh", 1.0)?;
    if !refresh.is_finite() || refresh < 0.0 {
        return Err(ArgError(format!(
            "--refresh expects a non-negative number of seconds, got {refresh}"
        )));
    }
    let iterations = p.u64_or("iterations", 0)?;
    let events = p.u64_or("events", 4)?.min(u64::from(u32::MAX)) as u32;
    let mut ctrl = CtrlClient::connect(connect.as_str())
        .map_err(|e| ArgError(format!("cannot connect '{connect}': {e}")))?;
    let mut prev: Option<MetricsReport> = None;
    let mut round = 0u64;
    loop {
        round += 1;
        let report = match ctrl.metrics(events) {
            Ok(r) => r,
            Err(e) => {
                if round == 1 {
                    return Err(ArgError(format!("scrape failed: {e}")));
                }
                writeln!(out, "daemon went away: {e}").ok();
                return Ok(());
            }
        };
        print_top(out, &report, prev.as_ref());
        out.flush().ok();
        prev = Some(report);
        if iterations > 0 && round >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(refresh.max(0.05)));
    }
}

/// One `top` frame: the daemon header plus a row per stream. Rates come
/// from deltas against the previous scrape (dashes on the first one).
fn print_top<W: Write>(out: &mut W, report: &MetricsReport, prev: Option<&MetricsReport>) {
    writeln!(
        out,
        "dwrs top: uptime {:.1} s, {} stream(s) live, {} created, {} daemon event(s)",
        report.uptime_nanos as f64 / 1e9,
        report.streams.len(),
        report.streams_created,
        report.events.len(),
    )
    .ok();
    writeln!(
        out,
        "{:<16} {:>12} {:>11} {:>7} {:>7} {:>9} {:>9} {:>9}  last event",
        "stream", "items", "items/s", "sites", "queue", "p50(us)", "p95(us)", "p99(us)",
    )
    .ok();
    for s in &report.streams {
        let rate = prev
            .and_then(|p| {
                let before = p.streams.iter().find(|ps| ps.stream == s.stream)?;
                let dt = report.now_nanos.saturating_sub(p.now_nanos) as f64 / 1e9;
                (dt > 0.0).then(|| (s.items.saturating_sub(before.items)) as f64 / dt)
            })
            .map_or_else(|| "-".to_string(), |r| format!("{r:.0}"));
        let (p50, p95, p99) = s.latency.as_ref().map_or_else(
            || ("-".to_string(), "-".to_string(), "-".to_string()),
            |h| {
                (
                    format!("{:.1}", h.p50 / 1e3),
                    format!("{:.1}", h.p95 / 1e3),
                    format!("{:.1}", h.p99 / 1e3),
                )
            },
        );
        let last_event = s.events.last().map_or_else(
            || "-".to_string(),
            |e| format!("{} (a={}, b={})", event_name(e.code), e.a, e.b),
        );
        writeln!(
            out,
            "{:<16} {:>12} {:>11} {:>3}/{:<3} {:>7} {:>9} {:>9} {:>9}  {}",
            s.stream,
            s.items,
            rate,
            s.sites_attached,
            s.sites_eof,
            format!("{}/{}", s.queue_depth, s.queue_capacity),
            p50,
            p95,
            p99,
            last_event
        )
        .ok();
    }
}

/// Prints one live snapshot — `--format json` emits the same
/// [`LiveSnapshot::to_json`] line as `serve`'s final report.
fn print_snapshot<W: Write>(out: &mut W, stream: &str, snap: &LiveSnapshot, format: &str) {
    if format == "json" {
        writeln!(out, "{}", snap.to_json(stream)).ok();
        return;
    }
    writeln!(
        out,
        "stream {stream:?} [{}] at {} items (epoch {}):",
        snap.kind.name(),
        snap.items,
        snap.epoch.map_or("-".to_string(), |e| e.to_string())
    )
    .ok();
    writeln!(
        out,
        "  u = {:.6e}, estimate = {:.4}, ell = {}",
        snap.u, snap.estimate, snap.ell
    )
    .ok();
    writeln!(
        out,
        "  sites: {} attached, {} finished",
        snap.sites_attached, snap.sites_eof
    )
    .ok();
    writeln!(
        out,
        "  messages: {} up ({} bytes), {} down ({} bytes), {} broadcasts",
        snap.up_msgs, snap.up_bytes, snap.down_msgs, snap.down_bytes, snap.broadcast_events
    )
    .ok();
    writeln!(out, "  sample size: {}", snap.sample.len()).ok();
    for kd in snap.sample.iter().take(5) {
        writeln!(
            out,
            "    {:>12}  {:>14.4}  {:.6e}",
            kd.item.id, kd.item.weight, kd.key
        )
        .ok();
    }
}

/// `load`: a complete load/chaos experiment against a daemon — paced
/// writers under a traffic schedule, interleaved query workers, an
/// optional seeded fault plan, and the post-run invariant battery. The
/// command is a thin veneer over [`dwrs_load::run_load`]; any invariant
/// violation makes it exit non-zero so CI can gate on a run.
fn cmd_load<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let format = p.str_or("format", "text");
    if format != "text" && format != "json" {
        return Err(ArgError(format!(
            "--format must be text or json, got '{format}'"
        )));
    }
    let schedule_spec = p.str_or("schedule", "steady");
    let faults = p.u64_or("faults", 0)? as usize;
    let mut cfg = dwrs_load::LoadConfig::new(&p.str_or("stream", "load"));
    cfg.connect = p.flags.get("connect").cloned();
    cfg.writers = p.u64_or("writers", cfg.writers as u64)? as usize;
    cfg.s = p.u64_or("s", cfg.s as u64)? as usize;
    cfg.query = p.str_or("query", &cfg.query);
    cfg.rate = p.magnitude_or("rate", cfg.rate)?;
    cfg.n = p.magnitude_or("n", cfg.n)?;
    cfg.schedule = dwrs_load::Schedule::parse(&schedule_spec).map_err(ArgError)?;
    cfg.query_workers = p.u64_or("query-workers", cfg.query_workers as u64)? as usize;
    cfg.chaos = (faults > 0).then_some(dwrs_load::ChaosConfig { faults });
    cfg.seed = p.u64_or("seed", cfg.seed)?;
    cfg.runtime.batch_max = p.u64_or("batch", cfg.runtime.batch_max as u64)?.max(1) as usize;
    cfg.runtime.queue_capacity =
        p.u64_or("queue", cfg.runtime.queue_capacity as u64)?.max(1) as usize;

    let report = dwrs_load::run_load(&cfg).map_err(|e| ArgError(format!("load failed: {e}")))?;

    if let Some(path) = p.flags.get("bench") {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ArgError(format!("cannot open bench file '{path}': {e}")))?;
        writeln!(f, "{}", report.to_json())
            .map_err(|e| ArgError(format!("cannot append to '{path}': {e}")))?;
    }

    if format == "json" {
        writeln!(out, "{}", report.to_json()).ok();
    } else {
        writeln!(
            out,
            "load: {} writers at {} items/s ({}), {} items, query {}",
            report.writers, report.rate, report.schedule, report.n, cfg.query
        )
        .ok();
        writeln!(
            out,
            "fed {} items in {:.3} s: {:.0} items/s achieved ({:+.2}% vs target), \
             {} delivered",
            report.fed,
            report.elapsed_s,
            report.achieved_rate,
            report.rate_error_pct,
            report.delivered
        )
        .ok();
        writeln!(
            out,
            "queries: {} answered, {} scrapes, {} errors",
            report.queries, report.scrapes, report.query_errors
        )
        .ok();
        if let Some(l) = &report.latency {
            writeln!(
                out,
                "query latency ({} obs): p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, \
                 max {:.1} us",
                l.count, l.p50_us, l.p90_us, l.p99_us, l.max_us
            )
            .ok();
        }
        for e in &report.events {
            writeln!(
                out,
                "chaos: site {} {} at {} items (dwell {} ms, snapshot at {} stream \
                 items, {} retries)",
                e.site,
                e.action.name(),
                e.at_items,
                e.dwell_ms,
                e.snapshot_items,
                e.retries
            )
            .ok();
        }
        if report.invariants_ok() {
            writeln!(out, "invariants: all passed").ok();
        }
    }
    if !report.invariants_ok() {
        return Err(ArgError(format!(
            "invariant violations: {}",
            report.violations.join("; ")
        )));
    }
    Ok(())
}

fn cmd_workload<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let n = p.magnitude_or("n", 1_000)?;
    let seed = p.u64_or("seed", 7)?;
    let workload = Workload::parse(&p.str_or("kind", "zipf:1.2")).map_err(ArgError)?;
    let source = workload
        .source(n, seed)
        .map_err(|e| ArgError(e.to_string()))?;
    writeln!(out, "id,weight").ok();
    // Streamed straight to the sink: exporting a 100M-item workload needs
    // no more memory than exporting a hundred.
    for it in source {
        writeln!(out, "{},{}", it.id, it.weight).ok();
    }
    Ok(())
}

fn cmd_track_l1<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let n = p.u64_or("n", 65_536)?;
    let k = p.u64_or("k", 16)? as usize;
    let eps = p.f64_or("eps", 0.1)?;
    let seed = p.u64_or("seed", 1)?;
    if !(0.0..0.5).contains(&eps) || eps <= 0.0 {
        return Err(ArgError("--eps must be in (0, 0.5)".into()));
    }
    let stream: Vec<(usize, Item)> = (0..n)
        .map(|i| ((i % k as u64) as usize, Item::unit(i)))
        .collect();
    writeln!(out, "L1 tracking: n = {n}, k = {k}, eps = {eps}").ok();
    writeln!(
        out,
        "{:<42} {:>12} {:>12}",
        "tracker", "max rel err", "messages"
    )
    .ok();
    let probe = (n / 50).max(1) as usize;
    {
        let mut t = FolkloreTracker::new(eps, k);
        let (e, m) = run_tracker(&mut t, &stream, probe);
        writeln!(out, "{:<42} {:>12.4} {:>12}", t.name(), e, m).ok();
    }
    {
        let mut t = HyzTracker::new(eps, k, seed);
        let (e, m) = run_tracker(&mut t, &stream, probe);
        writeln!(out, "{:<42} {:>12.4} {:>12}", t.name(), e, m).ok();
    }
    {
        let mut cfg = L1Config::new(eps, 0.25, k);
        let s = ((2.0 / (eps * eps)).ceil() as usize).max(8);
        cfg.sample_size_override = Some(s);
        cfg.dup_override = Some((s as f64 / (2.0 * eps)).ceil() as u64);
        let mut t = L1DupTracker::new(cfg, seed);
        let (e, m) = run_tracker(&mut t, &stream, probe);
        writeln!(out, "{:<42} {:>12.4} {:>12}", t.name(), e, m).ok();
    }
    {
        let s = ((1.0 / (eps * eps)).ceil() as usize).max(8);
        let mut t = PiggybackL1Tracker::new(s, k, seed);
        let (e, m) = run_tracker(&mut t, &stream, probe);
        writeln!(out, "{:<42} {:>12.4} {:>12}", t.name(), e, m).ok();
    }
    Ok(())
}

fn cmd_residual_hh<W: Write>(p: &Parsed, out: &mut W) -> Result<(), ArgError> {
    let n = p.u64_or("n", 20_000)? as usize;
    let k = p.u64_or("k", 8)? as usize;
    let eps = p.f64_or("eps", 0.2)?;
    let delta = p.f64_or("delta", 0.05)?;
    let top = p.u64_or("top", 4)? as usize;
    let seed = p.u64_or("seed", 3)?;
    if !(0.0..1.0).contains(&eps) || eps <= 0.0 {
        return Err(ArgError("--eps must be in (0, 1)".into()));
    }
    let items = workloads::residual_skew(n, top, seed);
    let cfg = ResidualHhConfig::new(eps, delta, k);
    writeln!(
        out,
        "residual heavy hitters: n = {n}, k = {k}, eps = {eps}, s = {}",
        cfg.sample_size()
    )
    .ok();
    let mut tracker = ResidualHeavyHitters::new(cfg, seed);
    for (t, it) in items.iter().enumerate() {
        tracker.observe(t % k, *it);
    }
    let got = tracker.query();
    let want = exact_residual_heavy_hitters(&items, eps);
    writeln!(out, "candidates (top by weight):").ok();
    for it in got.iter().take(12) {
        let mark = if want.contains(&it.id) { "*" } else { " " };
        writeln!(out, "  {mark} id {:>8}  weight {:.6e}", it.id, it.weight).ok();
    }
    writeln!(
        out,
        "recall of required residual heavy hitters: {:.3} ({} required)",
        recall(&want, &got),
        want.len()
    )
    .ok();
    writeln!(out, "messages: {}", tracker.messages()).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run_cmd(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut buf = Vec::new();
        let code = crate::run(&argv, &mut buf);
        (code, String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn sample_command_outputs_sample_and_metrics() {
        let (code, out) = run_cmd("sample --n 5000 --k 4 --s 8 --workload zipf:1.3");
        assert_eq!(code, 0, "output: {out}");
        assert!(out.contains("sample (id, weight, key):"));
        assert!(out.contains("messages: total"));
        assert!(out.contains("bytes on the wire"));
    }

    #[test]
    fn run_command_all_engines_report_throughput() {
        for engine in ["lockstep", "threads", "tcp", "epoll"] {
            let (code, out) = run_cmd(&format!(
                "run --engine {engine} --n 20000 --k 4 --s 8 --workload zipf_iid:1.2 --batch 8 --queue 8"
            ));
            assert_eq!(code, 0, "engine {engine}: {out}");
            assert!(out.contains(&format!("engine {engine}:")), "{out}");
            assert!(out.contains("items/s"), "{out}");
            assert!(out.contains("sample size: 8"), "{out}");
            assert!(out.contains("messages: total"), "{out}");
            assert!(out.contains("bytes on the wire"), "{out}");
        }
    }

    #[test]
    fn run_accepts_down_poll_every_knob() {
        // Extremes of the cadence knob both complete with invariants
        // intact: 1 = poll the down link before every item (freshest
        // thresholds), huge = effectively never mid-stream (correctness
        // is delivery-delay-tolerant by design).
        for cadence in [1u32, 1_000_000] {
            let (code, out) = run_cmd(&format!(
                "run --engine epoll --n 20000 --k 4 --s 8 --down-poll-every {cadence} --format json"
            ));
            assert_eq!(code, 0, "cadence {cadence}: {out}");
            assert!(out.contains("\"invariants_ok\":true"), "{out}");
        }
        let (code, out) = run_cmd("run --down-poll-every nope --n 10");
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("--down-poll-every expects an integer"),
            "{out}"
        );
    }

    #[test]
    fn run_tree_all_engines_report_root_sample() {
        for engine in ["lockstep", "threads", "tcp", "epoll"] {
            let (code, out) = run_cmd(&format!(
                "run --engine {engine} --topology tree --n 20000 --k 4 --groups 2 \
                 --sync-every 1000 --s 8 --workload zipf_iid:1.2 --batch 8 --queue 8"
            ));
            assert_eq!(code, 0, "engine {engine}: {out}");
            assert!(
                out.contains("topology = tree (2 groups x 2 sites)"),
                "{out}"
            );
            assert!(out.contains("root syncs:"), "{out}");
            assert!(out.contains("sample size: 8"), "{out}");
            assert!(out.contains("items/s"), "{out}");
        }
    }

    #[test]
    fn run_query_flag_reports_answers_on_every_engine() {
        for engine in ["lockstep", "threads", "tcp", "epoll"] {
            let (code, out) = run_cmd(&format!(
                "run --engine {engine} --query l1:0.25,0.25 --n 20000 --k 4 --format json"
            ));
            assert_eq!(code, 0, "{out}");
            let line = out.lines().last().unwrap();
            for field in [
                "\"query\":\"l1\"",
                "\"estimate\":",
                "\"true_weight\":",
                "\"rel_error\":",
                "\"invariants_ok\":true",
            ] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
            let (code, out) = run_cmd(&format!(
                "run --engine {engine} --query rhh:0.25 --n 20000 --k 4 \
                 --workload residual_skew:4 --format json"
            ));
            assert_eq!(code, 0, "{out}");
            let line = out.lines().last().unwrap();
            for field in ["\"query\":\"rhh\"", "\"recall\":", "\"required\":"] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
            let (code, out) = run_cmd(&format!(
                "run --engine {engine} --query window:5000 --n 20000 --k 4 --s 8 --format json"
            ));
            assert_eq!(code, 0, "{out}");
            let line = out.lines().last().unwrap();
            for field in [
                "\"query\":\"window\"",
                "\"window\":5000",
                "\"sample_size\":8",
            ] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
    }

    #[test]
    fn run_query_text_output_and_tree_topology() {
        let (code, out) = run_cmd(
            "run --engine threads --query l1:0.25,0.25 --n 10000 --k 4 --groups 2 --topology tree",
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("query = l1"), "{out}");
        assert!(out.contains("L1 estimate"), "{out}");
        let (code, out) = run_cmd("run --query quantum --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("unknown query"), "{out}");
        let (code, out) = run_cmd("run --query l1:0.9 --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("eps"), "{out}");
        let (code, out) = run_cmd("run --query window:0 --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("window"), "{out}");
    }

    #[test]
    fn run_tree_json_format() {
        let (code, out) = run_cmd(
            "run --engine threads --topology tree --n 8000 --k 4 --groups 2 --s 4 --format json",
        );
        assert_eq!(code, 0, "output: {out}");
        let line = out.lines().last().unwrap();
        for field in [
            "\"topology\":\"tree\"",
            "\"groups\":2",
            "\"k_per_group\":2",
            "\"sync_every\":10000",
            "\"sample_size\":4",
            "\"sync_messages\":",
            "\"syncs\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn run_tree_validates_flags() {
        let (code, out) = run_cmd("run --topology tree --n 10 --k 8 --groups 3");
        assert_eq!(code, 2);
        assert!(out.contains("must divide"), "{out}");
        let (code, out) = run_cmd("run --topology ring --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("--topology"), "{out}");
        let (code, out) = run_cmd("run --topology tree --n 10 --k 4 --sync-every 0");
        assert_eq!(code, 2);
        assert!(out.contains("--sync-every"), "{out}");
    }

    #[test]
    fn run_command_json_format() {
        let (code, out) = run_cmd("run --engine threads --n 5000 --k 2 --s 4 --format json");
        assert_eq!(code, 0, "output: {out}");
        let line = out.lines().last().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for field in [
            "\"engine\":\"threads\"",
            "\"topology\":\"flat\"",
            "\"n\":5000",
            "\"sample_size\":4",
            "\"items_per_s\":",
            "\"messages\":",
            "\"bytes\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn run_command_rejects_bad_engine_and_format() {
        let (code, out) = run_cmd("run --engine quantum --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("unknown engine"), "{out}");
        let (code, out) = run_cmd("run --n 10 --format yaml");
        assert_eq!(code, 2);
        assert!(out.contains("--format"), "{out}");
    }

    /// `Write` sink shared across threads, so a test can watch `serve`'s
    /// output for the bound address while the command is still running.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8")
        }
    }

    #[test]
    fn serve_and_feed_reproduce_tcp_engine() {
        let k = 2;
        let common = "--n 8000 --k 2 --s 8 --seed 9 --workload zipf_iid:1.3";
        // Start the coordinator server on an ephemeral port.
        let serve_out = SharedBuf::default();
        let server = {
            let mut w = serve_out.clone();
            std::thread::spawn(move || {
                let argv: Vec<String> = "serve --addr 127.0.0.1:0 --k 2 --s 8 --seed 9"
                    .split_whitespace()
                    .map(String::from)
                    .collect();
                crate::run(&argv, &mut w)
            })
        };
        // Wait for the bound address to appear.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            let text = serve_out.contents();
            if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..]
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string();
            }
            assert!(
                !server.is_finished(),
                "serve exited before listening: {text}"
            );
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for serve to bind: {text}"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        // Drive both sites.
        let feeds: Vec<_> = (0..k)
            .map(|i| {
                let cmd = format!("feed --connect {addr} --site {i} {common}");
                std::thread::spawn(move || run_cmd(&cmd))
            })
            .collect();
        for f in feeds {
            let (code, out) = f.join().unwrap();
            assert_eq!(code, 0, "feed output: {out}");
            assert!(out.contains("fed 4000 items"), "{out}");
        }
        assert_eq!(server.join().unwrap(), 0);
        let text = serve_out.contents();
        assert!(text.contains("sample size: 8"), "{text}");
        assert!(text.contains("messages: total"), "{text}");
        // The pointer to daemon mode, and the daemon-shaped snapshot JSON.
        assert!(text.contains("use `dwrs daemon`"), "{text}");
        let json = text
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("snapshot json line");
        for field in [
            "\"stream\":\"serve\"",
            "\"kind\":\"current-sample\"",
            "\"items\":8000",
            "\"sample_size\":8",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    /// Starts `dwrs daemon` on a background thread and returns the bound
    /// address, the output buffer, and the join handle.
    fn spawn_daemon() -> (String, SharedBuf, std::thread::JoinHandle<i32>) {
        let out = SharedBuf::default();
        let handle = {
            let mut w = out.clone();
            std::thread::spawn(move || {
                let argv: Vec<String> = "daemon --listen 127.0.0.1:0 --seed 11"
                    .split_whitespace()
                    .map(String::from)
                    .collect();
                crate::run(&argv, &mut w)
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            let text = out.contents();
            if let Some(line) = text.lines().find(|l| l.starts_with("daemon listening on ")) {
                break line["daemon listening on ".len()..].trim().to_string();
            }
            assert!(
                !handle.is_finished(),
                "daemon exited before listening: {text}"
            );
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for daemon to bind: {text}"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        (addr, out, handle)
    }

    #[test]
    fn daemon_attach_query_shutdown_lifecycle() {
        let (addr, daemon_out, daemon) = spawn_daemon();
        // Two streams: a 2-site swor stream and a 1-site l1 stream.
        let swor_common = format!(
            "--connect {addr} --stream alpha --n 6000 --k 2 --s 8 --seed 9 \
             --workload zipf_iid:1.3"
        );
        let attachers: Vec<_> = (0..2)
            .map(|i| {
                let cmd = format!("attach {swor_common} --site {i}");
                std::thread::spawn(move || run_cmd(&cmd))
            })
            .collect();
        for a in attachers {
            let (code, out) = a.join().unwrap();
            assert_eq!(code, 0, "attach output: {out}");
            assert!(out.contains("attached to stream \"alpha\""), "{out}");
            assert!(out.contains("fed 3000 items"), "{out}");
            assert!(out.contains("finished (Eof)"), "{out}");
        }
        let (code, out) = run_cmd(&format!(
            "attach --connect {addr} --stream beta --site 0 --n 2000 --k 1 --s 4 \
             --query l1:0.3,0.3 --workload unit"
        ));
        assert_eq!(code, 0, "{out}");
        // Live queries: text stats on alpha, JSON l1-now on beta, repeat
        // for the queries/s line.
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --stream alpha --kind stats"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("stream \"alpha\" [stats] at 6000 items"),
            "{out}"
        );
        assert!(out.contains("2 finished"), "{out}");
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --stream beta --kind l1-now --format json --repeat 20"
        ));
        assert_eq!(code, 0, "{out}");
        let json = out.lines().find(|l| l.starts_with('{')).expect("json");
        for field in [
            "\"stream\":\"beta\"",
            "\"kind\":\"l1-now\"",
            "\"items\":2000",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // --repeat emits sketch-backed round-trip percentiles, not a bare
        // QPS count.
        let stats = out
            .lines()
            .find(|l| l.contains("\"repeat\":20"))
            .expect("repeat stats json line");
        for field in [
            "\"queries_per_s\":",
            "\"latency_us\":",
            "\"p50\":",
            "\"p99\":",
        ] {
            assert!(stats.contains(field), "missing {field} in {stats}");
        }
        // Text mode keeps the QPS line and adds the percentiles.
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --stream beta --kind stats --repeat 10"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("queries/s"), "{out}");
        assert!(out.contains("round-trip latency: p50"), "{out}");
        // A telemetry scrape mid-lifecycle: Prometheus text exposition
        // with live gauges, and the same report as JSON.
        let (code, out) = run_cmd(&format!("metrics --connect {addr}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# TYPE dwrs_items_total counter"), "{out}");
        assert!(
            out.contains("dwrs_stream_items_total{stream=\"beta\"} 2000"),
            "{out}"
        );
        let (code, out) = run_cmd(&format!("metrics --connect {addr} --format json"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"streams_created\":"), "{out}");
        assert!(out.contains("\"stream\":\"beta\""), "{out}");
        // Two top frames: per-stream rows with a rate column on the
        // second frame.
        let (code, out) = run_cmd(&format!(
            "top --connect {addr} --iterations 2 --refresh 0.05"
        ));
        assert_eq!(code, 0, "{out}");
        assert_eq!(
            out.matches("dwrs top: uptime").count(),
            2,
            "two frames: {out}"
        );
        assert!(out.contains("beta"), "{out}");
        assert!(out.contains("p95(us)"), "{out}");
        // Drain alpha explicitly; shut the daemon down (drains beta).
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --stream alpha --kind drain --format json"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"items\":6000"), "{out}");
        let (code, out) = run_cmd(&format!("query --connect {addr} --kind shutdown"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("daemon shut down"), "{out}");
        assert_eq!(daemon.join().unwrap(), 0);
        let text = daemon_out.contents();
        assert!(text.contains("drained stream \"alpha\""), "{text}");
        assert!(text.contains("drained stream \"beta\""), "{text}");
        assert!(text.contains("daemon stopped"), "{text}");
    }

    #[test]
    fn attach_detach_reattach_resumes() {
        let (addr, _daemon_out, daemon) = spawn_daemon();
        let common = format!("--connect {addr} --stream s --k 1 --s 4 --seed 3 --workload unit");
        let (code, out) = run_cmd(&format!("attach {common} --site 0 --n 500 --eof false"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("resumed false"), "{out}");
        assert!(out.contains("detached (resumable)"), "{out}");
        let (code, out) = run_cmd(&format!("attach {common} --site 0 --n 700"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("resumed true, prior items 500"), "{out}");
        let (code, out) = run_cmd(&format!("query --connect {addr} --stream s --kind sample"));
        assert_eq!(code, 0, "{out}");
        // 500 from the first attach + 700 from the resumed one.
        assert!(out.contains("at 1200 items"), "{out}");
        let (code, _) = run_cmd(&format!("query --connect {addr} --kind shutdown"));
        assert_eq!(code, 0);
        assert_eq!(daemon.join().unwrap(), 0);
    }

    #[test]
    fn attach_and_query_validate_flags() {
        let (code, out) = run_cmd("attach --connect 127.0.0.1:1");
        assert_eq!(code, 2);
        assert!(out.contains("--stream"), "{out}");
        let (code, out) = run_cmd("attach --connect 127.0.0.1:1 --stream s");
        assert_eq!(code, 2);
        assert!(out.contains("--site"), "{out}");
        let (code, out) =
            run_cmd("attach --connect 127.0.0.1:1 --stream s --site 0 --workload zipf:1.1");
        assert_eq!(code, 2);
        assert!(out.contains("zipf_iid"), "{out}");
        let (code, out) = run_cmd("attach --connect 127.0.0.1:1 --stream s --site 0 --eof maybe");
        assert_eq!(code, 2);
        assert!(out.contains("--eof"), "{out}");
        let (code, out) = run_cmd("query --stream s --kind stats");
        assert_eq!(code, 2);
        assert!(out.contains("--connect"), "{out}");
        let (code, out) = run_cmd("query --connect 127.0.0.1:1 --stream s --kind tarot");
        assert_eq!(code, 2);
        assert!(out.contains("--kind"), "{out}");
    }

    #[test]
    fn feed_validates_flags() {
        let (code, out) = run_cmd("feed --site 0");
        assert_eq!(code, 2);
        assert!(out.contains("--connect"), "{out}");
        // Feed streams its source: the materializing zipf permutation is
        // refused with the same guidance as `run`'s streaming mode.
        let (code, out) =
            run_cmd("feed --connect 127.0.0.1:1 --site 0 --k 2 --n 10 --workload zipf:1.1");
        assert_eq!(code, 2);
        assert!(out.contains("zipf_iid"), "{out}");
        let (code, out) = run_cmd("feed --connect 127.0.0.1:1 --site 9 --k 2 --n 10");
        assert_eq!(code, 2);
        assert!(out.contains("out of range"), "{out}");
    }

    #[test]
    fn run_accepts_human_magnitudes() {
        let (code, out) = run_cmd("run --engine lockstep --n 20k --k 4 --s 8 --format json");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"n\":20000"), "{out}");
        let (code, out) = run_cmd(
            "run --engine threads --topology tree --n 8k --k 4 --groups 2 \
             --sync-every 1k --s 4 --format json",
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"sync_every\":1000"), "{out}");
        assert!(out.contains("\"n\":8000"), "{out}");
        let (code, out) = run_cmd("run --n nope");
        assert_eq!(code, 2);
        assert!(out.contains("--n"), "{out}");
    }

    #[test]
    fn zipf_streaming_run_is_refused_as_ambiguous() {
        // `zipf` is the exact rank permutation; streaming it silently used
        // to substitute the i.i.d.-rank distribution. Now it's an error…
        let (code, out) = run_cmd("run --engine lockstep --n 5000 --k 2 --s 4 --workload zipf:1.2");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("zipf_iid"), "{out}");
        assert!(out.contains("--materialize true"), "{out}");
        // …while both explicit spellings run.
        let (code, out) = run_cmd(
            "run --engine lockstep --n 5000 --k 2 --s 4 --workload zipf:1.2 --materialize true",
        );
        assert_eq!(code, 0, "{out}");
        let (code, out) =
            run_cmd("run --engine lockstep --n 5000 --k 2 --s 4 --workload zipf_iid:1.2");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn degenerate_flags_are_errors_not_panics() {
        for cmd in [
            "run --engine threads --n 10 --k 2 --s 4 --workload uniform:5,2",
            "run --engine threads --n 10 --k 2 --s 4 --workload zipf_iid:-1",
            "run --engine threads --n 10 --k 2 --s 4 --workload lognormal:0,nan",
            "run --engine threads --n 10 --k 2 --s 0",
            "run --engine threads --n 1e300 --k 2 --s 4",
            "run --engine threads --n -5k --k 2 --s 4",
            "workload --kind pareto:0 --n 10",
        ] {
            let (code, out) = run_cmd(cmd);
            assert_eq!(code, 2, "`{cmd}` should fail cleanly: {out}");
        }
        // n = 0 is a clean empty run, not a panic.
        let (code, out) = run_cmd("run --engine lockstep --n 0 --k 2 --s 4 --format json");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"n\":0"), "{out}");
    }

    #[test]
    fn run_materialized_reproduces_streaming_lockstep_exactly() {
        // --materialize true pre-builds the identical stream in memory;
        // on the deterministic lockstep engine the protocol trace must be
        // byte-identical to the streaming run.
        let common = "run --engine lockstep --n 5000 --k 4 --s 8 --seed 3 --format json";
        let (code, streaming) = run_cmd(common);
        assert_eq!(code, 0, "{streaming}");
        let (code, materialized) = run_cmd(&format!("{common} --materialize true"));
        assert_eq!(code, 0, "{materialized}");
        let field = |s: &str, key: &str| -> String {
            let start = s.find(key).unwrap_or_else(|| panic!("{key} in {s}")) + key.len();
            s[start..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect()
        };
        for key in ["\"messages\":", "\"bytes\":", "\"sample_size\":", "\"n\":"] {
            assert_eq!(
                field(&streaming, key),
                field(&materialized, key),
                "{key} differs:\n{streaming}\n{materialized}"
            );
        }
        assert!(streaming.contains("\"streaming\":true"), "{streaming}");
        assert!(
            materialized.contains("\"streaming\":false"),
            "{materialized}"
        );
    }

    #[test]
    fn csv_workload_round_trips_through_run() {
        let path = std::env::temp_dir().join(format!("dwrs-cli-csv-{}.csv", std::process::id()));
        let (code, csv) = run_cmd("workload --kind uniform:1,5 --n 500 --seed 9");
        assert_eq!(code, 0);
        std::fs::write(&path, &csv).unwrap();
        let (code, out) = run_cmd(&format!(
            "run --engine threads --workload csv:{} --k 2 --s 8 --format json",
            path.display()
        ));
        std::fs::remove_file(&path).ok();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"n\":500"), "{out}");
        assert!(out.contains("\"sample_size\":8"), "{out}");
    }

    #[test]
    fn workload_command_emits_csv() {
        let (code, out) = run_cmd("workload --kind unit --n 5");
        assert_eq!(code, 0);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "id,weight");
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[1], "0,1");
    }

    #[test]
    fn track_l1_lists_all_trackers() {
        let (code, out) = run_cmd("track-l1 --n 4096 --k 4 --eps 0.2");
        assert_eq!(code, 0, "output: {out}");
        assert!(out.contains("folklore"));
        assert!(out.contains("HYZ12"));
        assert!(out.contains("this work"));
        assert!(out.contains("piggyback"));
    }

    #[test]
    fn residual_hh_reports_recall() {
        let (code, out) = run_cmd("residual-hh --n 3000 --k 4 --eps 0.25 --top 3");
        assert_eq!(code, 0, "output: {out}");
        assert!(out.contains("recall of required residual heavy hitters: 1.000"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let (code, out) = run_cmd("frobnicate --n 1");
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn bad_eps_rejected() {
        let (code, out) = run_cmd("track-l1 --eps 0.9");
        assert_eq!(code, 2);
        assert!(out.contains("eps"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(out.contains("usage: dwrs"));
    }

    #[test]
    fn make_workload_specs() {
        assert_eq!(make_workload("unit", 3, 1).unwrap().len(), 3);
        assert!(make_workload("uniform:2,5", 10, 1).is_ok());
        assert!(make_workload("nope", 10, 1).is_err());
        assert!(make_workload("uniform:abc", 10, 1).is_err());
    }

    #[test]
    fn make_partition_specs() {
        assert_eq!(make_partition("roundrobin").unwrap(), Partition::RoundRobin);
        assert_eq!(
            make_partition("single:2").unwrap(),
            Partition::SingleSite(2)
        );
        assert!(matches!(
            make_partition("skewed:0.8").unwrap(),
            Partition::Skewed { .. }
        ));
        assert!(make_partition("bogus").is_err());
        assert!(make_partition("single:x").is_err());
    }

    #[test]
    fn parse_then_dispatch_roundtrip() {
        let p = parse_args(&["sample".into(), "--n".into(), "100".into()]).unwrap();
        let mut buf = Vec::new();
        assert!(dispatch(&p, &mut buf).is_ok());
    }
}
