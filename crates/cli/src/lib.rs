//! # dwrs-cli
//!
//! Command-line driver for the distributed weighted reservoir sampling
//! library:
//!
//! ```text
//! dwrs sample      --n 100000 --k 8 --s 16 --workload zipf:1.5 --seed 42
//! dwrs workload    --kind pareto:1.2 --n 1000 --seed 7
//! dwrs track-l1    --n 65536 --k 64 --eps 0.1
//! dwrs residual-hh --n 20000 --k 8 --eps 0.2
//! ```
//!
//! All logic lives in this library crate so it can be unit-tested; the
//! binary is a thin `main`.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, ArgError, Parsed};

/// Entry point shared by the binary and the tests; returns the process
/// exit code and writes human-readable output to the given writer.
pub fn run<W: std::io::Write>(argv: &[String], out: &mut W) -> i32 {
    let parsed = match parse_args(argv) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            let _ = writeln!(out, "{}", args::USAGE);
            return 2;
        }
    };
    match commands::dispatch(&parsed, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}
