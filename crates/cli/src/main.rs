//! `dwrs` binary: thin wrapper over the tested library entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(dwrs_cli::run(&argv, &mut stdout));
}
