//! Heavy-tailed and adversarially skewed workloads — the regime the paper's
//! level sets and the residual heavy hitter guarantee are designed for.

use dwrs_core::rng::Rng;
use dwrs_core::Item;

/// Where the heavy items are placed in the arrival order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Placement {
    /// Heavy items arrive first (worst case for naive precision sampling:
    /// they lock in a huge threshold-free prefix).
    Start,
    /// Heavy items arrive last.
    End,
    /// Heavy items are shuffled uniformly into the stream.
    Shuffled,
}

/// Zipf-by-rank weights: weight of rank `r` is `(n/r)^alpha`, scaled so the
/// minimum weight is 1, then shuffled (ids remain `0..n` in arrival order).
pub fn zipf_ranked(n: usize, alpha: f64, seed: u64) -> Vec<Item> {
    assert!(n >= 1 && alpha > 0.0);
    let mut rng = Rng::new(seed);
    let mut weights: Vec<f64> = (1..=n).map(|r| (n as f64 / r as f64).powf(alpha)).collect();
    rng.shuffle(&mut weights);
    weights
        .into_iter()
        .enumerate()
        .map(|(i, w)| Item::new(i as u64, w.max(1.0)))
        .collect()
}

/// I.i.d. Pareto(α) weights with scale `w_min`: `w = w_min · U^{-1/α}`.
pub fn pareto(n: usize, alpha: f64, w_min: f64, seed: u64) -> Vec<Item> {
    assert!(alpha > 0.0 && w_min > 0.0);
    let mut rng = Rng::new(seed);
    (0..n as u64)
        .map(|i| {
            let u = rng.open01();
            Item::new(i, w_min * u.powf(-1.0 / alpha))
        })
        .collect()
}

/// I.i.d. log-normal weights: `w = exp(mu + sigma·Z)`.
pub fn lognormal(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<Item> {
    assert!(sigma >= 0.0);
    let mut rng = Rng::new(seed);
    (0..n as u64)
        .map(|i| Item::new(i, (mu + sigma * rng.normal()).exp().max(1e-9)))
        .collect()
}

/// The paper's motivating adversarial case (Section 1.2): `heavy_count`
/// items jointly carrying a `heavy_fraction` of the total weight, the other
/// `n - heavy_count` items sharing the rest uniformly.
///
/// With `heavy_count = s/2` and `heavy_fraction = 1 - 1/(100s)` this is the
/// instance where duplication-based reductions to unweighted SWOR collapse.
pub fn few_heavy(
    n: usize,
    heavy_count: usize,
    heavy_fraction: f64,
    placement: Placement,
    seed: u64,
) -> Vec<Item> {
    assert!(heavy_count >= 1 && heavy_count < n);
    assert!(heavy_fraction > 0.0 && heavy_fraction < 1.0);
    let light_count = n - heavy_count;
    // Light items have weight 1; solve for the heavy weight.
    let light_total = light_count as f64;
    // heavy_total / (heavy_total + light_total) = heavy_fraction
    let heavy_total = heavy_fraction * light_total / (1.0 - heavy_fraction);
    let heavy_w = (heavy_total / heavy_count as f64).max(1.0);
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    match placement {
        Placement::Start => {
            weights.extend(std::iter::repeat_n(heavy_w, heavy_count));
            weights.extend(std::iter::repeat_n(1.0, light_count));
        }
        Placement::End => {
            weights.extend(std::iter::repeat_n(1.0, light_count));
            weights.extend(std::iter::repeat_n(heavy_w, heavy_count));
        }
        Placement::Shuffled => {
            weights.extend(std::iter::repeat_n(heavy_w, heavy_count));
            weights.extend(std::iter::repeat_n(1.0, light_count));
            let mut rng = Rng::new(seed);
            rng.shuffle(&mut weights);
        }
    }
    weights
        .into_iter()
        .enumerate()
        .map(|(i, w)| Item::new(i as u64, w))
        .collect()
}

/// Residual-skew instance for Theorem 4: `top` gigantic items (geometric
/// ladder, each ~8× the next) dominating the stream, followed by a moderate
/// Zipf tail. The residual heavy hitters — the items that are heavy *after*
/// removing the top `1/ε` — are invisible to with-replacement samplers but
/// must be caught by SWOR.
pub fn residual_skew(n: usize, top: usize, seed: u64) -> Vec<Item> {
    assert!(top >= 1 && top < n);
    let tail = zipf_ranked(n - top, 1.2, seed);
    let tail_total: f64 = tail.iter().map(|t| t.weight).sum();
    let mut items = Vec::with_capacity(n);
    // Gigantic heads: the lightest head alone outweighs the whole tail ×8.
    let mut w = tail_total * 8.0;
    let mut heads = Vec::with_capacity(top);
    for _ in 0..top {
        heads.push(w);
        w *= 8.0;
    }
    heads.reverse(); // heaviest first
    let mut rng = Rng::new(seed ^ 0xDEAD);
    let mut all: Vec<f64> = heads
        .into_iter()
        .chain(tail.iter().map(|t| t.weight))
        .collect();
    rng.shuffle(&mut all);
    for (i, w) in all.into_iter().enumerate() {
        items.push(Item::new(i as u64, w));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_ranked_properties() {
        let v = zipf_ranked(100, 1.5, 1);
        assert_eq!(v.len(), 100);
        let max = v.iter().map(|i| i.weight).fold(0.0, f64::max);
        let min = v.iter().map(|i| i.weight).fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
        assert!(max > 100.0, "skew too weak: max {max}");
    }

    #[test]
    fn pareto_min_respected() {
        let v = pareto(5000, 1.1, 2.0, 3);
        assert!(v.iter().all(|i| i.weight >= 2.0));
        let max = v.iter().map(|i| i.weight).fold(0.0, f64::max);
        assert!(max > 100.0, "expected a heavy tail, max {max}");
    }

    #[test]
    fn few_heavy_fraction_correct() {
        let n = 1000;
        let hc = 5;
        let hf = 0.99;
        for placement in [Placement::Start, Placement::End, Placement::Shuffled] {
            let v = few_heavy(n, hc, hf, placement, 9);
            assert_eq!(v.len(), n);
            let total: f64 = v.iter().map(|i| i.weight).sum();
            let mut ws: Vec<f64> = v.iter().map(|i| i.weight).collect();
            ws.sort_by(|a, b| b.total_cmp(a));
            let heavy: f64 = ws[..hc].iter().sum();
            assert!(
                (heavy / total - hf).abs() < 0.01,
                "fraction {} for {placement:?}",
                heavy / total
            );
        }
    }

    #[test]
    fn few_heavy_placement_start_puts_heavy_first() {
        let v = few_heavy(100, 3, 0.9, Placement::Start, 1);
        assert!(v[0].weight > v[99].weight);
        assert!(v[2].weight > 1.0 && v[3].weight == 1.0);
    }

    #[test]
    fn residual_skew_heads_dominate() {
        let v = residual_skew(500, 4, 2);
        let total: f64 = v.iter().map(|i| i.weight).sum();
        let mut ws: Vec<f64> = v.iter().map(|i| i.weight).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        let head: f64 = ws[..4].iter().sum();
        assert!(head / total > 0.95, "heads carry {}", head / total);
        // And the ladder property: each head ~8x the next.
        for i in 0..3 {
            let ratio = ws[i] / ws[i + 1];
            assert!((ratio - 8.0).abs() < 0.5, "ratio {ratio}");
        }
    }

    #[test]
    fn lognormal_positive() {
        let v = lognormal(2000, 1.0, 2.0, 4);
        assert!(v.iter().all(|i| i.weight > 0.0));
    }
}
