//! Streaming workload sources — the O(1)-memory counterpart of the
//! materializing generators in [`crate::basic`] / [`crate::skewed`].
//!
//! A *source* is any `Iterator<Item = Item> + Send` (captured by the
//! [`ItemSource`] alias trait). The generators here synthesize each item on
//! demand from a seeded [`Rng`], so a 100M-item run costs O(1) memory
//! instead of an O(n) `Vec<Item>`; the `dwrs-runtime` driver feeds them
//! through a bounded dispatcher whose resident footprint is
//! O(chunk × queue), independent of stream length.
//!
//! Where a streaming generator can reproduce its materializing sibling
//! exactly (same per-item formula, same RNG consumption order), it does:
//! [`uniform_stream`], [`pareto_stream`] and [`lognormal_stream`] yield
//! byte-identical items to `uniform_weights` / `pareto` / `lognormal` for
//! the same seed. [`zipf_stream`] necessarily differs: the materializing
//! `zipf_ranked` shuffles a global rank permutation (inherently O(n));
//! the streaming version draws i.i.d. uniform ranks instead, giving the
//! same marginal weight distribution without the without-replacement
//! coupling.

use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use dwrs_core::rng::Rng;
use dwrs_core::Item;

/// A streaming, seedable workload source: any sendable iterator of items.
///
/// Blanket-implemented, so plain iterator pipelines (including
/// `vec.into_iter()` — the in-memory adapter) are sources without
/// ceremony, and `Box<dyn ItemSource>` is itself a source.
pub trait ItemSource: Iterator<Item = Item> + Send {}

impl<T: Iterator<Item = Item> + Send> ItemSource for T {}

/// `n` unit-weight items with ids `0..n`, streamed.
pub fn unit_stream(n: u64) -> impl ItemSource {
    (0..n).map(Item::unit)
}

/// `n` items with weights uniform in `[lo, hi)`, streamed. Yields the same
/// items as [`crate::uniform_weights`] for the same seed.
pub fn uniform_stream(n: u64, lo: f64, hi: f64, seed: u64) -> impl ItemSource {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let mut rng = Rng::new(seed);
    (0..n).map(move |i| Item::new(i, rng.f64_range(lo, hi)))
}

/// `n` items with i.i.d. Zipf-by-rank weights, streamed: each item draws a
/// uniform rank `r` in `1..=n` and gets weight `(n/r)^alpha` (clamped to
/// ≥ 1). Same marginal distribution as [`crate::zipf_ranked`], without the
/// O(n) rank permutation (see the module docs).
pub fn zipf_stream(n: u64, alpha: f64, seed: u64) -> impl ItemSource {
    assert!(alpha > 0.0);
    let mut rng = Rng::new(seed);
    // n = 0 is simply the empty stream (the closure never runs).
    (0..n).map(move |i| {
        let r = 1 + rng.range(n);
        Item::new(i, (n as f64 / r as f64).powf(alpha).max(1.0))
    })
}

/// `n` i.i.d. Pareto(α) weights with scale `w_min`, streamed. Yields the
/// same items as [`crate::pareto`] for the same seed.
pub fn pareto_stream(n: u64, alpha: f64, w_min: f64, seed: u64) -> impl ItemSource {
    assert!(alpha > 0.0 && w_min > 0.0);
    let mut rng = Rng::new(seed);
    (0..n).map(move |i| {
        let u = rng.open01();
        Item::new(i, w_min * u.powf(-1.0 / alpha))
    })
}

/// `n` i.i.d. log-normal weights, streamed. Yields the same items as
/// [`crate::lognormal`] for the same seed.
pub fn lognormal_stream(n: u64, mu: f64, sigma: f64, seed: u64) -> impl ItemSource {
    assert!(sigma >= 0.0);
    let mut rng = Rng::new(seed);
    (0..n).map(move |i| Item::new(i, (mu + sigma * rng.normal()).exp().max(1e-9)))
}

/// Streams `id,weight` records from a CSV file (the format `dwrs workload`
/// emits). A leading `id,weight` header line is skipped; blank lines are
/// ignored.
///
/// I/O problems at open time surface as the returned `io::Error`; a
/// malformed record mid-stream panics with the offending line number (the
/// driver turns a panicking source into a run error rather than silently
/// truncating the stream).
#[derive(Debug)]
pub struct CsvSource {
    lines: io::Lines<BufReader<File>>,
    line_no: u64,
    header_checked: bool,
}

impl CsvSource {
    /// Opens a CSV workload file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        Ok(Self {
            lines: BufReader::new(file).lines(),
            line_no: 0,
            header_checked: false,
        })
    }
}

impl Iterator for CsvSource {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => panic!("csv workload: read error at line {}: {e}", self.line_no + 1),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if !self.header_checked {
                self.header_checked = true;
                if trimmed.eq_ignore_ascii_case("id,weight") {
                    continue;
                }
            }
            let mut parts = trimmed.splitn(2, ',');
            let mut parse = || -> Option<Item> {
                let id = parts.next()?.trim().parse::<u64>().ok()?;
                let weight = parts.next()?.trim().parse::<f64>().ok()?;
                (weight > 0.0 && weight.is_finite()).then(|| Item::new(id, weight))
            };
            match parse() {
                Some(item) => return Some(item),
                None => panic!(
                    "csv workload: malformed record at line {} (expected 'id,weight' \
                     with a positive finite weight): {trimmed:?}",
                    self.line_no
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn unit_stream_matches_unit() {
        let streamed: Vec<Item> = unit_stream(5).collect();
        assert_eq!(streamed, crate::unit(5));
    }

    #[test]
    fn uniform_pareto_lognormal_match_materialized() {
        let n = 500usize;
        let seed = 77;
        assert_eq!(
            uniform_stream(n as u64, 2.0, 5.0, seed).collect::<Vec<_>>(),
            crate::uniform_weights(n, 2.0, 5.0, seed)
        );
        assert_eq!(
            pareto_stream(n as u64, 1.2, 1.0, seed).collect::<Vec<_>>(),
            crate::pareto(n, 1.2, 1.0, seed)
        );
        assert_eq!(
            lognormal_stream(n as u64, 0.5, 1.0, seed).collect::<Vec<_>>(),
            crate::lognormal(n, 0.5, 1.0, seed)
        );
    }

    #[test]
    fn zipf_stream_is_skewed_and_deterministic() {
        let a: Vec<Item> = zipf_stream(10_000, 1.2, 3).collect();
        let b: Vec<Item> = zipf_stream(10_000, 1.2, 3).collect();
        assert_eq!(a, b);
        let max = a.iter().map(|i| i.weight).fold(0.0, f64::max);
        let min = a.iter().map(|i| i.weight).fold(f64::INFINITY, f64::min);
        assert!(
            (min - 1.0).abs() < 1e-9,
            "min weight clamps to 1, got {min}"
        );
        assert!(max > 1_000.0, "skew too weak: max {max}");
        // Ids are the arrival order.
        assert!(a.iter().enumerate().all(|(i, it)| it.id == i as u64));
    }

    #[test]
    fn csv_round_trips_workload_format() {
        let path = std::env::temp_dir().join(format!("dwrs-csv-test-{}.csv", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "id,weight").unwrap();
            writeln!(f, "0,1").unwrap();
            writeln!(f).unwrap();
            writeln!(f, "7,2.5").unwrap();
        }
        let got: Vec<Item> = CsvSource::open(&path).unwrap().collect();
        std::fs::remove_file(&path).ok();
        assert_eq!(got, vec![Item::new(0, 1.0), Item::new(7, 2.5)]);
    }

    #[test]
    fn csv_missing_file_is_io_error() {
        assert!(CsvSource::open("/nonexistent/dwrs-nope.csv").is_err());
    }

    #[test]
    fn csv_malformed_record_panics_with_line() {
        let path = std::env::temp_dir().join(format!("dwrs-csv-bad-{}.csv", std::process::id()));
        std::fs::write(&path, "1,2.0\nnot-a-record\n").unwrap();
        let res = std::panic::catch_unwind(|| {
            let _ = CsvSource::open(&path).unwrap().collect::<Vec<_>>();
        });
        std::fs::remove_file(&path).ok();
        let err = res.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn vec_into_iter_is_a_source() {
        fn takes_source(s: impl ItemSource) -> usize {
            s.count()
        }
        assert_eq!(takes_source(crate::unit(4).into_iter()), 4);
    }
}
