//! The lower-bound hard instances from the paper.
//!
//! * [`exploding`] — Theorem 5's first construction: weights
//!   `w_0 = 1, w_i = ε·(1+ε)^i`, so each new item is an `ε/(1+ε)`-heavy
//!   hitter of the prefix and the heavy-hitter set must change at every
//!   step: any correct tracker sends `Ω(log(W)/ε)` messages.
//! * [`weighted_epochs`] — Theorem 5's second construction: in epoch
//!   `i = 0..η`, every one of the `k` sites receives one item of weight
//!   `k^i`; the first arrival of each epoch is immediately a 1/2-heavy
//!   hitter, and no site knows whether it was first, forcing `Ω(k)` messages
//!   per epoch and `Ω(k·log W / log k)` total.
//! * [`l1_unit_epochs`] — Theorem 7's construction for L1 tracking: epoch
//!   `i` ends when `k^i` unit items have arrived; within an epoch, each site
//!   receives a contiguous block of `2·k^(i-1)` items, and every site must
//!   speak once per epoch.
//!
//! The epoch constructions fix the site assignment as part of the instance,
//! so they return `(site, item)` pairs.

use dwrs_core::Item;

/// Theorem 5 instance: `w_0 = 1/ε`, `w_i = (1+ε)^i`, until the total weight
/// reaches `w_target` (or `max_items`, whichever first).
///
/// This is the paper's `w_0 = 1, w_i = ε·(1+ε)^i` construction scaled by
/// `1/ε` so that every weight satisfies the paper's standing `w ≥ 1`
/// convention (Section 2.1; scaling by a constant changes no heaviness
/// fraction). Each item `i ≥ 1` is a `~ε/(1+ε)` heavy hitter of the prefix
/// it completes.
pub fn exploding(eps: f64, w_target: f64, max_items: usize) -> Vec<Item> {
    assert!(eps > 0.0 && eps < 1.0, "need ε in (0,1)");
    assert!(w_target > 1.0);
    let mut items = vec![Item::new(0, 1.0 / eps)];
    let mut total = 1.0 / eps;
    let mut i = 1u64;
    while total < w_target && items.len() < max_items {
        // Running total after item i is ((1+ε)^(i+1) - ε)/ε, so each new
        // item is a fraction converging to exactly ε/(1+ε) of the new total.
        let w = (1.0 + eps).powi(i as i32);
        total += w;
        items.push(Item::new(i, w));
        i += 1;
    }
    items
}

/// Theorem 5's epoch instance: `η` epochs; in epoch `i`, site `j` receives
/// item `(e_i^j, k^i)`, for all `j = 0..k`. Returns `(site, item)` pairs in
/// arrival order (sites in round-robin within an epoch).
pub fn weighted_epochs(k: usize, eta: u32) -> Vec<(usize, Item)> {
    assert!(k >= 1 && eta >= 1);
    let mut out = Vec::with_capacity(k * eta as usize);
    let mut id = 0u64;
    for i in 0..eta {
        let w = (k as f64).powi(i as i32).max(1.0);
        for j in 0..k {
            out.push((j, Item::new(id, w)));
            id += 1;
        }
    }
    out
}

/// Theorem 7's L1 instance: unit-weight items; epoch `i ≥ 1` spans global
/// counts `(k^(i-1), k^i]`; within it, sites receive contiguous blocks so
/// every site handles a constant fraction of the epoch. Truncated to
/// `max_items`.
pub fn l1_unit_epochs(k: usize, eta: u32, max_items: usize) -> Vec<(usize, Item)> {
    assert!(k >= 2 && eta >= 1);
    let mut out = Vec::new();
    let mut id = 0u64;
    // Epoch 0: the first k items, one per site.
    for j in 0..k {
        if out.len() >= max_items {
            return out;
        }
        out.push((j, Item::unit(id)));
        id += 1;
    }
    let mut epoch_end = k as u64;
    for _ in 1..eta {
        let next_end = epoch_end.saturating_mul(k as u64);
        let epoch_len = next_end - epoch_end;
        // Split the epoch into k contiguous blocks, one per site.
        let block = (epoch_len / k as u64).max(1);
        let mut produced = 0u64;
        let mut site = 0usize;
        while produced < epoch_len {
            let run = block.min(epoch_len - produced);
            for _ in 0..run {
                if out.len() >= max_items {
                    return out;
                }
                out.push((site % k, Item::unit(id)));
                id += 1;
            }
            produced += run;
            site += 1;
        }
        epoch_end = next_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploding_each_item_is_heavy() {
        let eps = 0.2;
        let items = exploding(eps, 1e6, 10_000);
        let mut total = 0.0;
        for it in &items {
            total += it.weight;
            let frac = it.weight / total;
            // The paper's claim: every item is an ε/(1+ε) > ε/2 heavy
            // hitter of the prefix it completes; the fraction converges to
            // exactly ε/(1+ε).
            if it.id > 0 {
                assert!(frac > eps / 2.0, "item {} fraction {frac}", it.id);
            }
            if it.id > 40 {
                assert!(
                    (frac - eps / (1.0 + eps)).abs() < 1e-3,
                    "item {} fraction {frac}",
                    it.id
                );
            }
        }
        assert!(total >= 1e6);
    }

    #[test]
    fn exploding_length_is_log_over_eps() {
        let eps = 0.1;
        let w = 1e9;
        let items = exploding(eps, w, usize::MAX);
        // Total after n items ~ (1+ε)^(n+1)/ε, so n ~ ln(εW)/ln(1+ε) ≈ 193.
        let expect = ((eps * w).ln() / (1.0 + eps).ln()).ceil() as usize;
        assert!(
            (items.len() as i64 - expect as i64).abs() <= 2,
            "n = {}, expect ~{expect}",
            items.len()
        );
    }

    #[test]
    fn exploding_weights_respect_w_ge_1() {
        for &eps in &[0.01, 0.1, 0.4] {
            let items = exploding(eps, 1e8, 100_000);
            assert!(items.iter().all(|it| it.weight >= 1.0), "eps = {eps}");
        }
    }

    #[test]
    fn weighted_epochs_shape() {
        let k = 4;
        let inst = weighted_epochs(k, 3);
        assert_eq!(inst.len(), 12);
        // Epoch 0: weight 1; epoch 1: weight 4; epoch 2: weight 16.
        assert!(inst[0..4].iter().all(|(_, it)| it.weight == 1.0));
        assert!(inst[4..8].iter().all(|(_, it)| it.weight == 4.0));
        assert!(inst[8..12].iter().all(|(_, it)| it.weight == 16.0));
        // Every site appears once per epoch.
        for epoch in 0..3 {
            let mut sites: Vec<usize> = inst[epoch * 4..(epoch + 1) * 4]
                .iter()
                .map(|(s, _)| *s)
                .collect();
            sites.sort_unstable();
            assert_eq!(sites, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn l1_epochs_counts() {
        let k = 3;
        let inst = l1_unit_epochs(k, 3, usize::MAX);
        // Total items = k^eta = 27.
        assert_eq!(inst.len(), 27);
        assert!(inst.iter().all(|(_, it)| it.weight == 1.0));
        // Every site receives items in every epoch.
        for (lo, hi) in [(0usize, 3usize), (3, 9), (9, 27)] {
            let mut seen = [false; 3];
            for (s, _) in &inst[lo..hi] {
                seen[*s] = true;
            }
            assert!(seen.iter().all(|&b| b), "epoch {lo}..{hi} missing a site");
        }
    }

    #[test]
    fn l1_epochs_truncates() {
        let inst = l1_unit_epochs(4, 10, 1000);
        assert_eq!(inst.len(), 1000);
    }
}
