//! # dwrs-workloads
//!
//! Weighted-stream workload generators for the experiments, including the
//! adversarial instances from the paper's lower-bound proofs (Theorems 5
//! and 7). All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod basic;
pub mod hard;
pub mod skewed;
pub mod source;
pub mod trace;

pub use basic::{uniform_weights, unit};
pub use hard::{exploding, l1_unit_epochs, weighted_epochs};
pub use skewed::{few_heavy, lognormal, pareto, residual_skew, zipf_ranked, Placement};
pub use source::{
    lognormal_stream, pareto_stream, uniform_stream, unit_stream, zipf_stream, CsvSource,
    ItemSource,
};
pub use trace::query_log;
