//! Synthetic trace-like workloads for the example applications.
//!
//! The paper motivates distributed sampling with search-engine query logs
//! and network monitoring (Section 1). There is no public trace attached to
//! the paper, so these generators synthesize streams with the same
//! qualitative structure: Zipf-popular identifiers and skewed magnitudes.

use dwrs_core::rng::Rng;
use dwrs_core::Item;

/// A query-log-like stream: `n` events over `distinct` identifiers with
/// Zipf(`alpha`) popularity; each event's weight is a work/bytes proxy drawn
/// log-normally (median ~`weight_median`).
///
/// Identifier popularity is sampled by inverse-CDF over precomputed Zipf
/// masses, so the same identifier recurs with realistic frequency — queries
/// can repeat across sites, which the samplers must treat as distinct
/// occurrences (paper, Section 1).
pub fn query_log(
    n: usize,
    distinct: usize,
    alpha: f64,
    weight_median: f64,
    seed: u64,
) -> Vec<Item> {
    assert!(distinct >= 1 && alpha > 0.0 && weight_median > 0.0);
    let mut rng = Rng::new(seed);
    // Zipf masses and cumulative distribution over identifiers.
    let mut cdf: Vec<f64> = Vec::with_capacity(distinct);
    let mut acc = 0.0;
    for r in 1..=distinct {
        acc += 1.0 / (r as f64).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    let mu = weight_median.ln();
    (0..n)
        .map(|_| {
            let x = rng.f64() * total;
            let id = cdf.partition_point(|&c| c < x) as u64;
            let w = (mu + 0.8 * rng.normal()).exp().max(0.01);
            Item::new(id.min(distinct as u64 - 1), w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popular_ids_recur() {
        let v = query_log(10_000, 500, 1.1, 3.0, 1);
        assert_eq!(v.len(), 10_000);
        let zero = v.iter().filter(|i| i.id == 0).count();
        let deep = v.iter().filter(|i| i.id == 400).count();
        assert!(
            zero > deep,
            "rank-0 id ({zero}) should recur more than rank-400 ({deep})"
        );
        assert!(zero > 100, "rank-0 id too rare: {zero}");
    }

    #[test]
    fn ids_in_range_weights_positive() {
        let v = query_log(5000, 100, 1.0, 2.0, 2);
        assert!(v.iter().all(|i| i.id < 100 && i.weight > 0.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            query_log(100, 10, 1.0, 1.0, 5),
            query_log(100, 10, 1.0, 1.0, 5)
        );
    }
}
