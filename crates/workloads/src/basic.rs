//! Benign workloads: unit and uniformly random weights.

use dwrs_core::rng::Rng;
use dwrs_core::Item;

/// `n` items of unit weight (the unweighted special case; ids `0..n`).
pub fn unit(n: usize) -> Vec<Item> {
    (0..n as u64).map(Item::unit).collect()
}

/// `n` items with weights uniform in `[lo, hi)`.
pub fn uniform_weights(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<Item> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let mut rng = Rng::new(seed);
    (0..n as u64)
        .map(|i| Item::new(i, rng.f64_range(lo, hi)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_items() {
        let v = unit(5);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|it| it.weight == 1.0));
        assert_eq!(v[3].id, 3);
    }

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = uniform_weights(1000, 2.0, 5.0, 7);
        let b = uniform_weights(1000, 2.0, 5.0, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|it| it.weight >= 2.0 && it.weight < 5.0));
        let c = uniform_weights(1000, 2.0, 5.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn bad_range_rejected() {
        let _ = uniform_weights(10, 5.0, 2.0, 1);
    }
}
