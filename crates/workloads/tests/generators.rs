//! Property-based tests for the workload generators.

use dwrs_workloads::*;
use proptest::prelude::*;

/// Pins the two zipf marginals (ISSUE 5 satellite): `zipf_ranked` is the
/// exact rank permutation; `zipf_stream` draws i.i.d. uniform ranks. The
/// rank *marginals* must agree (two-sample KS between the weight samples
/// does not reject), while the joint structure differs — which is exactly
/// why the CLI surfaces them as distinct workload names.
#[test]
fn zipf_ranked_and_stream_share_the_weight_marginal() {
    let n = 20_000usize;
    let alpha = 1.2f64;
    let ranked: Vec<f64> = zipf_ranked(n, alpha, 11).iter().map(|i| i.weight).collect();
    let streamed: Vec<f64> = zipf_stream(n as u64, alpha, 12).map(|i| i.weight).collect();
    let r = dwrs_stats::ks_two_sample(&ranked, &streamed);
    assert!(
        r.p_value > 1e-3,
        "marginals diverged: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

/// The ranked variant is a permutation: every rank weight appears exactly
/// once. This is the property the streaming variant *cannot* have — and
/// the reason flipping `--materialize` must not switch between them.
#[test]
fn zipf_ranked_is_exactly_one_weight_per_rank() {
    let n = 4_096usize;
    let alpha = 1.4f64;
    let mut got: Vec<f64> = zipf_ranked(n, alpha, 5).iter().map(|i| i.weight).collect();
    got.sort_by(f64::total_cmp);
    let mut want: Vec<f64> = (1..=n)
        .map(|r| (n as f64 / r as f64).powf(alpha).max(1.0))
        .collect();
    want.sort_by(f64::total_cmp);
    assert_eq!(got, want);
    // The i.i.d. variant repeats ranks with overwhelming probability.
    let mut streamed: Vec<f64> = zipf_stream(n as u64, alpha, 5).map(|i| i.weight).collect();
    streamed.sort_by(f64::total_cmp);
    streamed.dedup();
    assert!(
        streamed.len() < n,
        "i.i.d. ranks produced a perfect permutation — astronomically unlikely"
    );
}

/// The streaming variant's ranks are i.i.d. uniform over `1..=n`: the
/// empirical rank CDF stays within the one-sample KS band.
#[test]
fn zipf_stream_ranks_are_uniform() {
    let n = 20_000u64;
    let alpha = 1.3f64;
    // Invert the weight map to recover each drawn rank (weights invert to
    // exactly n/r; the max(1.0) clamp only touches rank n itself).
    let ranks: Vec<f64> = zipf_stream(n, alpha, 77)
        .map(|it| n as f64 / it.weight.powf(1.0 / alpha))
        .collect();
    // CDF of the discrete uniform on 1..=n: P(X <= x) = floor(x)/n. On
    // discrete data the continuous KS p-value is conservative (ties can
    // only shrink the null statistic), which is the safe direction for a
    // regression test.
    let r = dwrs_stats::ks_one_sample(&ranks, |x| (x.floor() / n as f64).clamp(0.0, 1.0));
    assert!(
        r.p_value > 1e-4,
        "rank ECDF deviates: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_generators_produce_valid_items(n in 1usize..2_000, seed in any::<u64>()) {
        let streams: Vec<Vec<dwrs_core::Item>> = vec![
            unit(n),
            uniform_weights(n, 1.0, 10.0, seed),
            zipf_ranked(n, 1.3, seed),
            pareto(n, 1.2, 1.0, seed),
            lognormal(n, 0.5, 1.0, seed),
            query_log(n, 64, 1.1, 2.0, seed),
        ];
        for s in &streams {
            prop_assert_eq!(s.len(), n);
            for it in s {
                prop_assert!(it.weight > 0.0 && it.weight.is_finite());
            }
        }
    }

    #[test]
    fn unique_ids_in_synthetic_streams(n in 2usize..2_000, seed in any::<u64>()) {
        // All generators except query_log assign unique ids 0..n.
        for s in [
            uniform_weights(n, 1.0, 2.0, seed),
            zipf_ranked(n, 1.5, seed),
            pareto(n, 1.1, 1.0, seed),
        ] {
            let mut ids: Vec<u64> = s.iter().map(|i| i.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n);
        }
    }

    #[test]
    fn few_heavy_mass_fraction(
        n in 20usize..2_000,
        heavy in 1usize..8,
        frac in 0.5f64..0.999,
        seed in any::<u64>()
    ) {
        prop_assume!(heavy < n / 2);
        let s = few_heavy(n, heavy, frac, Placement::Shuffled, seed);
        let total: f64 = s.iter().map(|i| i.weight).sum();
        let mut ws: Vec<f64> = s.iter().map(|i| i.weight).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        let top: f64 = ws[..heavy].iter().sum();
        prop_assert!((top / total - frac).abs() < 0.05,
            "target fraction {} got {}", frac, top / total);
    }

    #[test]
    fn exploding_reaches_target(eps in 0.02f64..0.5, pow in 3u32..12) {
        let target = 10f64.powi(pow as i32);
        let items = exploding(eps, target, 1 << 22);
        let total: f64 = items.iter().map(|i| i.weight).sum();
        prop_assert!(total >= target);
        prop_assert!(items.iter().all(|i| i.weight >= 1.0));
    }

    #[test]
    fn weighted_epochs_structure(k in 1usize..20, eta in 1u32..6) {
        let inst = weighted_epochs(k, eta);
        prop_assert_eq!(inst.len(), k * eta as usize);
        for (i, (site, item)) in inst.iter().enumerate() {
            let epoch = i / k;
            prop_assert!(*site < k);
            prop_assert!((item.weight - (k as f64).powi(epoch as i32).max(1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn l1_epochs_sites_in_range(k in 2usize..10, eta in 1u32..5, cap in 10usize..5_000) {
        let inst = l1_unit_epochs(k, eta, cap);
        prop_assert!(!inst.is_empty());
        prop_assert!(inst.len() <= cap.max(k));
        for (site, item) in &inst {
            prop_assert!(*site < k);
            prop_assert_eq!(item.weight, 1.0);
        }
    }

    #[test]
    fn residual_skew_heads_dominate_tail(n in 50usize..1_500, top in 1usize..6, seed in any::<u64>()) {
        prop_assume!(top < n / 10);
        let s = residual_skew(n, top, seed);
        let total: f64 = s.iter().map(|i| i.weight).sum();
        let mut ws: Vec<f64> = s.iter().map(|i| i.weight).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        let head: f64 = ws[..top].iter().sum();
        prop_assert!(head / total > 0.85, "heads carry only {}", head / total);
    }
}
