//! Property-based tests for the workload generators.

use dwrs_workloads::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_generators_produce_valid_items(n in 1usize..2_000, seed in any::<u64>()) {
        let streams: Vec<Vec<dwrs_core::Item>> = vec![
            unit(n),
            uniform_weights(n, 1.0, 10.0, seed),
            zipf_ranked(n, 1.3, seed),
            pareto(n, 1.2, 1.0, seed),
            lognormal(n, 0.5, 1.0, seed),
            query_log(n, 64, 1.1, 2.0, seed),
        ];
        for s in &streams {
            prop_assert_eq!(s.len(), n);
            for it in s {
                prop_assert!(it.weight > 0.0 && it.weight.is_finite());
            }
        }
    }

    #[test]
    fn unique_ids_in_synthetic_streams(n in 2usize..2_000, seed in any::<u64>()) {
        // All generators except query_log assign unique ids 0..n.
        for s in [
            uniform_weights(n, 1.0, 2.0, seed),
            zipf_ranked(n, 1.5, seed),
            pareto(n, 1.1, 1.0, seed),
        ] {
            let mut ids: Vec<u64> = s.iter().map(|i| i.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n);
        }
    }

    #[test]
    fn few_heavy_mass_fraction(
        n in 20usize..2_000,
        heavy in 1usize..8,
        frac in 0.5f64..0.999,
        seed in any::<u64>()
    ) {
        prop_assume!(heavy < n / 2);
        let s = few_heavy(n, heavy, frac, Placement::Shuffled, seed);
        let total: f64 = s.iter().map(|i| i.weight).sum();
        let mut ws: Vec<f64> = s.iter().map(|i| i.weight).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        let top: f64 = ws[..heavy].iter().sum();
        prop_assert!((top / total - frac).abs() < 0.05,
            "target fraction {} got {}", frac, top / total);
    }

    #[test]
    fn exploding_reaches_target(eps in 0.02f64..0.5, pow in 3u32..12) {
        let target = 10f64.powi(pow as i32);
        let items = exploding(eps, target, 1 << 22);
        let total: f64 = items.iter().map(|i| i.weight).sum();
        prop_assert!(total >= target);
        prop_assert!(items.iter().all(|i| i.weight >= 1.0));
    }

    #[test]
    fn weighted_epochs_structure(k in 1usize..20, eta in 1u32..6) {
        let inst = weighted_epochs(k, eta);
        prop_assert_eq!(inst.len(), k * eta as usize);
        for (i, (site, item)) in inst.iter().enumerate() {
            let epoch = i / k;
            prop_assert!(*site < k);
            prop_assert!((item.weight - (k as f64).powi(epoch as i32).max(1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn l1_epochs_sites_in_range(k in 2usize..10, eta in 1u32..5, cap in 10usize..5_000) {
        let inst = l1_unit_epochs(k, eta, cap);
        prop_assert!(!inst.is_empty());
        prop_assert!(inst.len() <= cap.max(k));
        for (site, item) in &inst {
            prop_assert!(*site < k);
            prop_assert_eq!(item.weight, 1.0);
        }
    }

    #[test]
    fn residual_skew_heads_dominate_tail(n in 50usize..1_500, top in 1usize..6, seed in any::<u64>()) {
        prop_assume!(top < n / 10);
        let s = residual_skew(n, top, seed);
        let total: f64 = s.iter().map(|i| i.weight).sum();
        let mut ws: Vec<f64> = s.iter().map(|i| i.weight).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        let head: f64 = ws[..top].iter().sum();
        prop_assert!(head / total > 0.85, "heads carry only {}", head / total);
    }
}
