//! Statistical test of Proposition 1 (Nagaraja's identity) — the
//! distributional foundation of the whole paper.
//!
//! Proposition 1 (second bullet): with keys `v_i = w_i/t_i` and anti-ranks
//! `D(1), D(2), ...` (indices sorted by decreasing key),
//!
//! `v_D(s)  =d  ( Σ_{j=1..s}  E_j / (W - Σ_{q<j} w_D(q)) )^{-1}`
//!
//! where the `E_j` are fresh i.i.d. Exp(1) variables independent of the
//! anti-rank vector. We draw both sides independently many times and
//! compare with a two-sample KS test.

use dwrs_core::Rng;

/// Direct side: generate keys, return the s-th largest and the anti-ranks.
fn direct_sth_key(weights: &[f64], s: usize, rng: &mut Rng) -> f64 {
    let mut keys: Vec<f64> = weights.iter().map(|&w| w / rng.exp()).collect();
    keys.sort_by(|a, b| b.total_cmp(a));
    keys[s - 1]
}

/// Identity side: draw an anti-rank vector from an independent key draw,
/// then apply the formula with fresh exponentials.
fn identity_sth_key(weights: &[f64], s: usize, rng: &mut Rng) -> f64 {
    let w_total: f64 = weights.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    let keys: Vec<f64> = weights.iter().map(|&w| w / rng.exp()).collect();
    order.sort_by(|&a, &b| keys[b].total_cmp(&keys[a]));
    let mut acc = 0.0; // Σ_{j=1..s} E_j / (W - partial sums)
    let mut consumed = 0.0;
    for &idx in order.iter().take(s) {
        acc += rng.exp() / (w_total - consumed);
        consumed += weights[idx];
    }
    1.0 / acc
}

fn ks_two_sample(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    d
}

#[test]
fn proposition1_identity_for_uniform_weights() {
    let weights = vec![1.0f64; 40];
    let s = 5;
    let trials = 40_000usize;
    let mut rng = Rng::new(11);
    let mut direct: Vec<f64> = (0..trials)
        .map(|_| direct_sth_key(&weights, s, &mut rng))
        .collect();
    let mut ident: Vec<f64> = (0..trials)
        .map(|_| identity_sth_key(&weights, s, &mut rng))
        .collect();
    let d = ks_two_sample(&mut direct, &mut ident);
    let crit = 1.95 * (2.0 / trials as f64).sqrt(); // alpha ~ 1e-3
    assert!(d < crit, "KS statistic {d} >= {crit}");
}

#[test]
fn proposition1_identity_for_skewed_weights() {
    // Includes a moderately heavy item — the identity holds regardless.
    let mut weights: Vec<f64> = (1..=30).map(|i| 1.0 + (i % 7) as f64).collect();
    weights.push(40.0);
    let s = 4;
    let trials = 40_000usize;
    let mut rng = Rng::new(12);
    let mut direct: Vec<f64> = (0..trials)
        .map(|_| direct_sth_key(&weights, s, &mut rng))
        .collect();
    let mut ident: Vec<f64> = (0..trials)
        .map(|_| identity_sth_key(&weights, s, &mut rng))
        .collect();
    let d = ks_two_sample(&mut direct, &mut ident);
    let crit = 1.95 * (2.0 / trials as f64).sqrt();
    assert!(d < crit, "KS statistic {d} >= {crit}");
}

#[test]
fn sth_key_concentrates_at_w_over_s_without_heavy_items() {
    // The L1 tracker's engine (Section 5): with no heavy items,
    // v_D(s) ≈ W/s up to (1 ± O(1/√s)).
    let weights = vec![2.0f64; 4_000];
    let w: f64 = weights.iter().sum();
    let s = 400;
    let mut rng = Rng::new(13);
    let trials = 200;
    let mut worst: f64 = 0.0;
    for _ in 0..trials {
        let u = direct_sth_key(&weights, s, &mut rng);
        worst = worst.max((u * s as f64 - w).abs() / w);
    }
    // 1/sqrt(400) = 5%; allow 6 sigma-ish.
    assert!(worst < 0.3, "worst deviation {worst}");
}
