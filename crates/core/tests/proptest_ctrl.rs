//! Decode-totality and round-trip properties for the daemon control
//! protocol: a hostile client controls every payload byte, so `CtrlMsg` /
//! `CtrlResp` decoding must be total (clean error, never a panic), must
//! bound hostile entry counts before allocating, and must round-trip every
//! valid frame — the same guarantees `proptest_framed.rs` establishes for
//! the data-plane codecs.

use std::io::Cursor;

use dwrs_core::ctrl::{CtrlMsg, CtrlResp, LiveQueryKind, LiveSnapshot};
use dwrs_core::framed::{FrameCodec, FramedReader, FramedWriter};
use dwrs_core::swor::wire::WireError;
use dwrs_core::{Item, Keyed};
use proptest::prelude::*;

fn arb_kind(byte: u8) -> LiveQueryKind {
    LiveQueryKind::from_u8(byte % 5).expect("discriminant in range")
}

/// A non-empty ASCII stream name derived from a seed (the vendored
/// proptest has no string strategies).
fn arb_stream(seed: u64) -> String {
    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789_.-";
    let len = 1 + (seed % 24) as usize;
    (0..len)
        .map(|i| {
            let ix = (seed.rotate_left(7 * i as u32) ^ i as u64) as usize % alphabet.len();
            alphabet[ix] as char
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary garbage is total for both control codecs.
    #[test]
    fn garbage_ctrl_frames_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = CtrlMsg::decode(&payload);
        let _ = CtrlResp::decode(&payload);
    }

    /// Every strict prefix of a valid encoding fails cleanly: decoding
    /// never reads past the buffer and never fabricates a frame from a
    /// truncated one.
    #[test]
    fn truncated_ctrl_frames_fail_cleanly(
        stream_seed in any::<u64>(),
        k in 1u32..64,
        s in 1u32..256,
        cut_seed in any::<usize>(),
    ) {
        let msg = CtrlMsg::Create {
            stream: arb_stream(stream_seed),
            k,
            s,
            query: "swor".into(),
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let cut = cut_seed % buf.len();
        prop_assert!(CtrlMsg::decode(&buf[..cut]).is_err());
    }

    /// A hostile snapshot entry count far beyond the present bytes is
    /// rejected with `Truncated` — checked before any allocation, so a
    /// 4-billion-entry claim cannot drive a multi-GB `Vec`.
    #[test]
    fn hostile_snapshot_count_rejected(
        count in 1u32..=u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..23),
    ) {
        let snapshot = LiveSnapshot {
            kind: LiveQueryKind::Stats,
            items: 0,
            epoch: None,
            u: 0.0,
            estimate: 0.0,
            ell: 1,
            sites_attached: 0,
            sites_eof: 0,
            up_msgs: 0,
            down_msgs: 0,
            up_bytes: 0,
            down_bytes: 0,
            broadcast_events: 0,
            sample: Vec::new(),
        };
        let mut buf = Vec::new();
        CtrlResp::Answer { snapshot }.encode(&mut buf);
        let count_at = buf.len() - 4;
        buf[count_at..].copy_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&tail); // fewer than one entry's bytes
        prop_assert_eq!(CtrlResp::decode(&buf), Err(WireError::Truncated));
    }

    /// Valid control requests round-trip exactly, consuming the whole
    /// encoding.
    #[test]
    fn ctrl_msgs_round_trip(
        stream_seed in any::<u64>(),
        k in 1u32..1024,
        s in 1u32..4096,
        site in any::<u32>(),
        kind_byte in any::<u8>(),
        arg in any::<u64>(),
    ) {
        let kind = arb_kind(kind_byte);
        let stream = arb_stream(stream_seed);
        for msg in [
            CtrlMsg::Create {
                stream: stream.clone(),
                k,
                s,
                query: "l1:0.2,0.25".into(),
            },
            CtrlMsg::Attach { stream: stream.clone(), site },
            CtrlMsg::Query { stream: stream.clone(), kind, arg },
            CtrlMsg::Drain { stream: stream.clone() },
            CtrlMsg::Shutdown,
        ] {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let (back, used) = CtrlMsg::decode(&buf).expect("valid frame");
            prop_assert_eq!(back, msg);
            prop_assert_eq!(used, buf.len());
        }
    }

    /// Valid responses — including snapshots with arbitrary valid entries
    /// and both epoch presences — round-trip through the framed stream
    /// layer, so MAX_FRAME_LEN and the control codecs compose.
    #[test]
    fn ctrl_resps_round_trip_through_framing(
        site in any::<u32>(),
        resumed in any::<bool>(),
        items in any::<u64>(),
        epoch_present in any::<bool>(),
        epoch_value in any::<i64>(),
        u in 0.0f64..1e12,
        ids in proptest::collection::vec(any::<u64>(), 0..32),
        weight in 1e-6f64..1e12,
        key in 1e-6f64..1e12,
        kind_byte in any::<u8>(),
    ) {
        let sample: Vec<Keyed> = ids
            .iter()
            .map(|&id| Keyed::new(Item::new(id, weight), key))
            .collect();
        let snapshot = LiveSnapshot {
            kind: arb_kind(kind_byte),
            items,
            epoch: epoch_present.then_some(epoch_value),
            u,
            estimate: u * 2.0,
            ell: 1 + items % 7,
            sites_attached: site % 64,
            sites_eof: site % 8,
            up_msgs: items,
            down_msgs: items / 2,
            up_bytes: items.saturating_mul(17),
            down_bytes: items.saturating_mul(9),
            broadcast_events: items % 1024,
            sample,
        };
        let mut w = FramedWriter::new(Vec::new());
        let resps = [
            CtrlResp::Ok { info: "created".into() },
            CtrlResp::Err { msg: "no such stream".into() },
            CtrlResp::Attached { site, resumed, items },
            CtrlResp::Answer { snapshot },
        ];
        for resp in &resps {
            w.write_msg(resp).unwrap();
        }
        let mut r = FramedReader::new(Cursor::new(w.into_inner()));
        for resp in &resps {
            let back: CtrlResp = r.read_msg().unwrap().expect("frame present");
            prop_assert_eq!(&back, resp);
        }
        prop_assert!(r.read_msg::<CtrlResp>().unwrap().is_none());
    }
}
