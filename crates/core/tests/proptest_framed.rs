//! Adversarial framing properties: a hostile or corrupt peer controls the
//! 4-byte length prefix and the payload bytes; the framed reader must
//! reject oversized prefixes **before** allocating or reading a single
//! payload byte, and must never panic on arbitrary payload garbage.

use std::io::{self, Cursor, Read};

use dwrs_core::framed::{FramedReader, FramedWriter, MAX_FRAME_LEN};
use dwrs_core::swor::{DownMsg, SyncMsg, UpMsg};
use dwrs_core::{Item, Keyed};
use proptest::prelude::*;

/// A byte source that hands out a fixed prefix and then trips a flag if the
/// reader ever asks for more — in particular, if the reader trusted a
/// hostile length prefix and tried to fill a huge payload buffer, the
/// `read` call for that buffer lands here.
struct TrapReader {
    prefix: Cursor<Vec<u8>>,
    /// Largest single `read` request observed after the prefix ran dry.
    overread: usize,
}

impl TrapReader {
    fn new(prefix: Vec<u8>) -> Self {
        Self {
            prefix: Cursor::new(prefix),
            overread: 0,
        }
    }
}

impl Read for TrapReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.prefix.read(buf)?;
        if n == 0 && !buf.is_empty() {
            self.overread = self.overread.max(buf.len());
        }
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any length prefix over MAX_FRAME_LEN is rejected as InvalidData
    /// without the reader requesting any payload bytes — i.e. before the
    /// `len`-sized buffer is filled (and in particular before a hostile
    /// multi-GB prefix can drive a multi-GB allocation).
    #[test]
    fn oversized_prefix_rejected_before_payload_read(
        len in (MAX_FRAME_LEN + 1)..=u32::MAX,
    ) {
        let mut reader = FramedReader::new(TrapReader::new(len.to_le_bytes().to_vec()));
        let err = reader.read_blob().expect_err("oversized prefix must fail");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Same property through the typed `read_msg` path.
    #[test]
    fn oversized_prefix_rejected_in_read_msg(
        len in (MAX_FRAME_LEN + 1)..=u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        let mut reader = FramedReader::new(TrapReader::new(bytes));
        let err = reader
            .read_msg::<UpMsg>()
            .expect_err("oversized prefix must fail");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// The trap actually observes the payload read for in-bounds prefixes,
    /// so the two properties above genuinely prove "no payload read": a
    /// truncated valid-length frame *does* reach the payload read and the
    /// request never exceeds the declared length.
    #[test]
    fn in_bounds_prefix_reads_at_most_len(
        len in 1u32..=MAX_FRAME_LEN,
    ) {
        let mut reader = FramedReader::new(TrapReader::new(len.to_le_bytes().to_vec()));
        let err = reader.read_blob().expect_err("mid-frame EOF must fail");
        prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let trap = reader.into_inner();
        prop_assert!(trap.overread >= 1, "payload read never happened");
        prop_assert!(
            trap.overread <= len as usize,
            "requested {} bytes for a {len}-byte frame",
            trap.overread
        );
    }

    /// Decoding arbitrary garbage payloads is total: every outcome is a
    /// clean io::Error (InvalidData for malformed payloads, UnexpectedEof
    /// for mid-frame cuts), never a panic, for all three protocol codecs.
    #[test]
    fn garbage_frames_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        for outcome in [
            FramedReader::new(Cursor::new(bytes.clone())).read_msg::<UpMsg>().map(|_| ()),
            FramedReader::new(Cursor::new(bytes.clone())).read_msg::<DownMsg>().map(|_| ()),
            FramedReader::new(Cursor::new(bytes.clone())).read_msg::<SyncMsg>().map(|_| ()),
        ] {
            if let Err(e) = outcome {
                prop_assert!(
                    matches!(
                        e.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ),
                    "unexpected error kind {:?}",
                    e.kind()
                );
            }
        }
    }

    /// Valid frames round-trip through a byte stream for every message
    /// shape, including boundary ids and weights.
    #[test]
    fn valid_frames_round_trip(
        id in any::<u64>(),
        weight in 1.0f64..1e12,
        key in 1e-6f64..1e12,
        threshold in 1e-6f64..1e12,
        level in 0u32..64,
    ) {
        let mut w = FramedWriter::new(Vec::new());
        let up1 = UpMsg::Early { item: Item::new(id, weight) };
        let up2 = UpMsg::Regular { item: Item::new(id, weight), key };
        let d1 = DownMsg::LevelSaturated { level };
        let d2 = DownMsg::UpdateEpoch { threshold };
        let sync = SyncMsg {
            group: 3,
            items: id,
            sample: vec![Keyed::new(Item::new(id, weight), key)],
        };
        w.write_msg(&up1).unwrap();
        w.write_msg(&up2).unwrap();
        w.write_msg(&d1).unwrap();
        w.write_msg(&d2).unwrap();
        w.write_msg(&sync).unwrap();
        let mut r = FramedReader::new(Cursor::new(w.into_inner()));
        prop_assert_eq!(r.read_msg::<UpMsg>().unwrap().unwrap(), up1);
        prop_assert_eq!(r.read_msg::<UpMsg>().unwrap().unwrap(), up2);
        prop_assert_eq!(r.read_msg::<DownMsg>().unwrap().unwrap(), d1);
        prop_assert_eq!(r.read_msg::<DownMsg>().unwrap().unwrap(), d2);
        prop_assert_eq!(r.read_msg::<SyncMsg>().unwrap().unwrap(), sync);
        prop_assert!(r.read_msg::<UpMsg>().unwrap().is_none());
    }
}
