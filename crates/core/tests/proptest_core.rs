//! Property-based tests for the core primitives.

use dwrs_core::exact::inclusion_probabilities;
use dwrs_core::framed::{decode_seq, encode_seq};
use dwrs_core::item::{Item, Keyed};
use dwrs_core::keys::{key_above, p_key_above};
use dwrs_core::math::{binomial, floor_log_base, geometric_trials, ln_choose, powi};
use dwrs_core::merge::{merge_samples, merge_two};
use dwrs_core::swor::level_of;
use dwrs_core::swor::wire::{
    decode_down, decode_sync, decode_up, down_len, encode_down, encode_sync, encode_up, sync_len,
    up_len, WireError,
};
use dwrs_core::swor::{DownMsg, SyncMsg, UpMsg};
use dwrs_core::topk::TopK;
use dwrs_core::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------------------- math

    #[test]
    fn binomial_within_support(n in 0u64..10_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let x = binomial(&mut rng, n, p);
        prop_assert!(x <= n);
    }

    #[test]
    fn binomial_deterministic_per_seed(n in 1u64..5_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let a = binomial(&mut Rng::new(seed), n, p);
        let b = binomial(&mut Rng::new(seed), n, p);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn geometric_at_least_one(p in 1e-6f64..=1.0, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        prop_assert!(geometric_trials(&mut rng, p) >= 1);
    }

    #[test]
    fn floor_log_base_bracket(b in 1.1f64..100.0, x in 1e-9f64..1e12) {
        let j = floor_log_base(b, x);
        prop_assert!(powi(b, j) <= x * (1.0 + 1e-9));
        prop_assert!(x < powi(b, j + 1) * (1.0 + 1e-9));
    }

    #[test]
    fn ln_choose_symmetry(n in 0u64..60, k in 0u64..60) {
        prop_assume!(k <= n);
        let a = ln_choose(n, k);
        let b = ln_choose(n, n - k);
        prop_assert!((a - b).abs() < 1e-9);
    }

    // ------------------------------------------------------------- keys

    #[test]
    fn conditional_key_clears_threshold(
        w in 0.01f64..1e9, theta in 0.01f64..1e9, seed in any::<u64>()
    ) {
        let mut rng = Rng::new(seed);
        let v = key_above(w, theta, &mut rng);
        prop_assert!(v > theta, "key {} <= threshold {}", v, theta);
        prop_assert!(v.is_finite());
    }

    #[test]
    fn p_key_above_monotone_in_weight(
        w1 in 0.01f64..1e6, delta in 0.01f64..1e6, theta in 0.01f64..1e6
    ) {
        let p1 = p_key_above(w1, theta);
        let p2 = p_key_above(w1 + delta, theta);
        prop_assert!(p2 >= p1 - 1e-15);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn p_key_above_antitone_in_threshold(
        w in 0.01f64..1e6, t1 in 0.01f64..1e6, delta in 0.01f64..1e6
    ) {
        let p_low = p_key_above(w, t1);
        let p_high = p_key_above(w, t1 + delta);
        prop_assert!(p_high <= p_low + 1e-15);
    }

    // ------------------------------------------------------------- topk

    #[test]
    fn topk_threshold_is_sth_largest(
        keys in proptest::collection::vec(1e-6f64..1e9, 1..100),
        cap in 1usize..12
    ) {
        let mut t = TopK::new(cap);
        for (i, &k) in keys.iter().enumerate() {
            t.offer(Keyed::new(Item::new(i as u64, 1.0), k));
        }
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        if keys.len() >= cap {
            prop_assert_eq!(t.u(), sorted[cap - 1]);
        } else {
            prop_assert_eq!(t.u(), 0.0);
        }
    }

    // ------------------------------------------------------------- levels

    #[test]
    fn level_monotone_in_weight(w in 1.0f64..1e12, factor in 1.0f64..1e3, r in 1.5f64..64.0) {
        prop_assert!(level_of(w * factor, r) >= level_of(w, r));
    }

    // ------------------------------------------------------------- exact oracle

    #[test]
    fn oracle_probabilities_valid(
        weights in proptest::collection::vec(0.1f64..100.0, 2..10),
        s in 1usize..5
    ) {
        prop_assume!(s < weights.len());
        let p = inclusion_probabilities(&weights, s);
        // Valid probabilities summing to s.
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - s as f64).abs() < 1e-9);
        for &pi in &p {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&pi));
        }
        // Heavier item ⇒ no smaller inclusion probability.
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] >= weights[j] {
                    prop_assert!(p[i] >= p[j] - 1e-9);
                }
            }
        }
    }

    #[test]
    fn oracle_scale_invariant(
        weights in proptest::collection::vec(0.1f64..100.0, 2..9),
        s in 1usize..4,
        scale in 0.5f64..100.0
    ) {
        prop_assume!(s < weights.len());
        let p1 = inclusion_probabilities(&weights, s);
        let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let p2 = inclusion_probabilities(&scaled, s);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-9, "scale invariance broken");
        }
    }

    // ------------------------------------------------------------- merge

    #[test]
    fn merge_equals_global_topk(
        keys in proptest::collection::vec(1e-6f64..1e9, 1..60),
        split in 0usize..60,
        s in 1usize..8
    ) {
        let split = split.min(keys.len());
        let mk = |off: usize, ks: &[f64]| -> Vec<Keyed> {
            let mut t = TopK::new(s);
            for (i, &k) in ks.iter().enumerate() {
                t.offer(Keyed::new(Item::new((off + i) as u64, 1.0), k));
            }
            t.sorted_desc()
        };
        let a = mk(0, &keys[..split]);
        let b = mk(split, &keys[split..]);
        let merged: Vec<f64> = merge_two(&a, &b, s).iter().map(|k| k.key).collect();
        let mut global = keys.clone();
        global.sort_by(|x, y| y.total_cmp(x));
        global.truncate(s);
        prop_assert_eq!(merged, global);
    }

    // ------------------------------------------------------------- wire

    // Satellite of ISSUE 2: `decode` must be total on arbitrary bytes —
    // never panic, only ever fail with Truncated / BadTag / BadField — so a
    // malformed peer cannot crash a transport endpoint.
    #[test]
    fn wire_decode_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        match decode_up(&bytes) {
            Ok((msg, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(used, up_len(&msg));
            }
            Err(e) => prop_assert!(matches!(
                e,
                WireError::Truncated | WireError::BadTag(_) | WireError::BadField
            )),
        }
        match decode_down(&bytes) {
            Ok((msg, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(used, down_len(&msg));
            }
            Err(e) => prop_assert!(matches!(
                e,
                WireError::Truncated | WireError::BadTag(_) | WireError::BadField
            )),
        }
    }

    // Encode→decode round-trips for both upstream frame tags (early,
    // regular) across the full valid field domains.
    #[test]
    fn wire_up_roundtrip(
        id in any::<u64>(),
        weight in 1e-300f64..1e300,
        key in 1e-300f64..1e300,
        regular in any::<bool>()
    ) {
        let msg = if regular {
            UpMsg::Regular { item: Item { id, weight }, key }
        } else {
            UpMsg::Early { item: Item { id, weight } }
        };
        let mut buf = Vec::new();
        let len = encode_up(&msg, &mut buf);
        prop_assert_eq!(len, buf.len());
        prop_assert_eq!(len, up_len(&msg));
        let (back, used) = decode_up(&buf).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, len);
    }

    // Encode→decode round-trips for both downstream frame tags
    // (level_saturated, update_epoch).
    #[test]
    fn wire_down_roundtrip(
        level in any::<u32>(),
        threshold in 1e-300f64..1e300,
        saturated in any::<bool>()
    ) {
        let msg = if saturated {
            DownMsg::LevelSaturated { level }
        } else {
            DownMsg::UpdateEpoch { threshold }
        };
        let mut buf = Vec::new();
        let len = encode_down(&msg, &mut buf);
        prop_assert_eq!(len, down_len(&msg));
        let (back, used) = decode_down(&buf).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, len);
    }

    // Satellite of ISSUE 3: the aggregator→root sync frame round-trips for
    // arbitrary valid keyed samples (any group id, item watermark, sample
    // length, id/weight/key values in domain).
    #[test]
    fn wire_sync_roundtrip(
        group in any::<u32>(),
        items in any::<u64>(),
        raw in proptest::collection::vec((any::<u64>(), 1e-12f64..1e12, 1e-12f64..1e12), 0..24)
    ) {
        let msg = SyncMsg {
            group,
            items,
            sample: raw
                .iter()
                .map(|&(id, weight, key)| Keyed::new(Item { id, weight }, key))
                .collect(),
        };
        let mut buf = Vec::new();
        let len = encode_sync(&msg, &mut buf);
        prop_assert_eq!(len, buf.len());
        prop_assert_eq!(len, sync_len(&msg));
        let (back, used) = decode_sync(&buf).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, len);
    }

    // And its decoder is total on arbitrary bytes: never panics, never
    // over-allocates, only fails with the three wire errors.
    #[test]
    fn wire_sync_decode_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        match decode_sync(&bytes) {
            Ok((msg, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(used, sync_len(&msg));
            }
            Err(e) => prop_assert!(matches!(
                e,
                WireError::Truncated | WireError::BadTag(_) | WireError::BadField
            )),
        }
    }

    // The generic framed layer composes with the wire codec: any batch of
    // valid messages survives a length-prefixed stream round-trip.
    #[test]
    fn framed_seq_roundtrip(
        raw in proptest::collection::vec((any::<u64>(), 0.5f64..1e12, 0.5f64..1e12), 0..12)
    ) {
        let msgs: Vec<UpMsg> = raw
            .iter()
            .map(|&(id, weight, key)| {
                if id % 2 == 0 {
                    UpMsg::Early { item: Item { id, weight } }
                } else {
                    UpMsg::Regular { item: Item { id, weight }, key }
                }
            })
            .collect();
        let mut payload = Vec::new();
        encode_seq(&msgs, &mut payload);
        let back: Vec<UpMsg> = decode_seq(&payload).unwrap();
        prop_assert_eq!(back, msgs);
    }

    #[test]
    fn merge_samples_idempotent(
        keys in proptest::collection::vec(1e-6f64..1e9, 1..40),
        s in 1usize..6
    ) {
        let sample: Vec<Keyed> = {
            let mut t = TopK::new(s);
            for (i, &k) in keys.iter().enumerate() {
                t.offer(Keyed::new(Item::new(i as u64, 1.0), k));
            }
            t.sorted_desc()
        };
        let again = merge_samples(&[&sample], s);
        prop_assert_eq!(
            again.iter().map(|k| k.key.to_bits()).collect::<Vec<_>>(),
            sample.iter().map(|k| k.key.to_bits()).collect::<Vec<_>>()
        );
    }
}
