//! Unweighted distributed SWOR via minimum tags (bottom-`s`).
//!
//! Every item receives an independent `Uniform(0,1)` tag; the items with the
//! `s` smallest tags form a uniform sample without replacement. The
//! coordinator tracks `τ_s`, the s-th smallest tag, and broadcasts the
//! filtering threshold `β^{-j}` (the power of `β = max(2, 1+k/s)` just above
//! `τ_s`); sites forward an item iff its tag is below the threshold.
//!
//! This is the message-optimal unweighted protocol of references \[31\]/\[11\],
//! matching the `Θ(k·log(n/s)/log(1+k/s))` bound of Theorem 2, and serves
//! as the independent baseline for the weighted algorithm on unit weights.

use crate::item::Item;
use crate::math::{floor_log_base, powi};
use crate::rng::Rng;

/// Site → coordinator: an item whose tag cleared the threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TagUp {
    /// The item.
    pub item: Item,
    /// Its uniform tag (smaller wins).
    pub tag: f64,
}

/// Coordinator → sites: new filtering threshold (tags at or above it are
/// dropped at the site).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TagDown {
    /// New threshold.
    pub threshold: f64,
}

/// Configuration for the min-tag protocol.
#[derive(Clone, Debug)]
pub struct TagConfig {
    /// Sample size `s`.
    pub sample_size: usize,
    /// Number of sites `k`.
    pub num_sites: usize,
    /// Epoch base override; default `max(2, 1 + k/s)`.
    pub beta_override: Option<f64>,
}

impl TagConfig {
    /// Standard configuration.
    pub fn new(sample_size: usize, num_sites: usize) -> Self {
        assert!(sample_size >= 1 && num_sites >= 1);
        Self {
            sample_size,
            num_sites,
            beta_override: None,
        }
    }

    /// The epoch base β.
    pub fn beta(&self) -> f64 {
        self.beta_override
            .unwrap_or((1.0 + self.num_sites as f64 / self.sample_size as f64).max(2.0))
    }
}

/// Site state: current threshold plus a tag RNG.
#[derive(Debug)]
pub struct TagSite {
    threshold: f64,
    rng: Rng,
    /// Messages sent.
    pub sent: u64,
}

impl TagSite {
    /// Creates a site.
    pub fn new(seed: u64) -> Self {
        Self {
            threshold: 1.0,
            rng: Rng::new(seed),
            sent: 0,
        }
    }

    /// Observes an item; forwards it iff its fresh tag beats the threshold.
    pub fn observe(&mut self, item: Item) -> Option<TagUp> {
        let tag = self.rng.open01();
        if tag < self.threshold {
            self.sent += 1;
            Some(TagUp { item, tag })
        } else {
            None
        }
    }

    /// Applies a threshold broadcast (thresholds only shrink).
    pub fn receive(&mut self, msg: &TagDown) {
        if msg.threshold < self.threshold {
            self.threshold = msg.threshold;
        }
    }
}

/// Coordinator: bottom-`s` tags plus epoch broadcasting.
#[derive(Debug)]
pub struct TagCoordinator {
    cfg: TagConfig,
    beta: f64,
    /// (tag, item) pairs, max-heap by tag so the worst retained tag is on
    /// top. Kept at most `s` entries.
    heap: std::collections::BinaryHeap<HeapEntry>,
    epoch: Option<i64>,
    /// Broadcasts issued.
    pub broadcasts: u64,
}

#[derive(Debug)]
struct HeapEntry {
    tag: f64,
    item: Item,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tag.total_cmp(&other.tag)
    }
}

impl TagCoordinator {
    /// Creates a coordinator.
    pub fn new(cfg: TagConfig) -> Self {
        let beta = cfg.beta();
        Self {
            cfg,
            beta,
            heap: std::collections::BinaryHeap::new(),
            epoch: None,
            broadcasts: 0,
        }
    }

    /// The s-th smallest tag (1.0 until the sample is full).
    pub fn tau(&self) -> f64 {
        if self.heap.len() < self.cfg.sample_size {
            1.0
        } else {
            self.heap.peek().map_or(1.0, |e| e.tag)
        }
    }

    /// Handles a forwarded item; may emit a threshold broadcast.
    pub fn receive(&mut self, msg: TagUp, out: &mut Vec<TagDown>) {
        if self.heap.len() < self.cfg.sample_size {
            self.heap.push(HeapEntry {
                tag: msg.tag,
                item: msg.item,
            });
        } else if msg.tag < self.tau() {
            self.heap.pop();
            self.heap.push(HeapEntry {
                tag: msg.tag,
                item: msg.item,
            });
        } else {
            return;
        }
        let tau = self.tau();
        if tau < 1.0 {
            // Epoch j: the smallest j ≥ 0 with β^{-j} ≥ τ; broadcast the
            // threshold β^{-j}. floor_log_base gives l with β^l ≤ τ < β^(l+1)
            // (l ≤ 0 here); the power at or above τ is β^l on exact hits and
            // β^(l+1) otherwise.
            let l = floor_log_base(self.beta, tau);
            let e = if powi(self.beta, l) == tau { l } else { l + 1 };
            let j = (-e).max(0);
            if self.epoch.is_none_or(|cur| j > cur) {
                self.epoch = Some(j);
                self.broadcasts += 1;
                out.push(TagDown {
                    threshold: powi(self.beta, -j),
                });
            }
        }
    }

    /// Current uniform SWOR: items with the `s` smallest tags.
    pub fn sample(&self) -> Vec<Item> {
        self.heap.iter().map(|e| e.item).collect()
    }

    /// Sample with tags, smallest tag first.
    pub fn sample_tagged(&self) -> Vec<(f64, Item)> {
        let mut v: Vec<(f64, Item)> = self.heap.iter().map(|e| (e.tag, e.item)).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u64, k: usize, s: usize, seed: u64) -> (TagCoordinator, u64, u64) {
        let cfg = TagConfig::new(s, k);
        let mut sites: Vec<TagSite> = (0..k)
            .map(|i| TagSite::new(crate::rng::mix(seed, i as u64)))
            .collect();
        let mut coord = TagCoordinator::new(cfg);
        let mut up = 0u64;
        let mut down = 0u64;
        let mut out = Vec::new();
        for t in 0..n {
            let site = (t % k as u64) as usize;
            if let Some(msg) = sites[site].observe(Item::unit(t)) {
                up += 1;
                coord.receive(msg, &mut out);
                for d in out.drain(..) {
                    down += k as u64; // broadcast to k sites
                    for st in &mut sites {
                        st.receive(&d);
                    }
                }
            }
        }
        (coord, up, down)
    }

    #[test]
    fn maintains_s_smallest_tags() {
        let (coord, _, _) = run(5000, 4, 8, 1);
        let sample = coord.sample_tagged();
        assert_eq!(sample.len(), 8);
        // tau equals the largest retained tag.
        assert!((coord.tau() - sample.last().unwrap().0).abs() < 1e-15);
    }

    #[test]
    fn uniform_inclusion_probability() {
        // Each of n items should appear with probability s/n.
        let (n, k, s) = (60u64, 3usize, 6usize);
        let trials = 20_000u64;
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let (coord, _, _) = run(n, k, s, 1000 + t);
            for it in coord.sample() {
                counts[it.id as usize] += 1;
            }
        }
        let p = s as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / trials as f64;
            let se = (p * (1.0 - p) / trials as f64).sqrt();
            assert!((emp - p).abs() < 6.0 * se, "item {i}: {emp} vs {p}");
        }
    }

    #[test]
    fn message_count_is_sublinear() {
        let (n, k, s) = (200_000u64, 8usize, 8usize);
        let (_, up, down) = run(n, k, s, 7);
        let total = up + down;
        // Θ(k log(n/s)/log(1+k/s)) with small constants; allow a wide berth
        // but demand strong sublinearity.
        assert!(total < n / 50, "messages {total} not sublinear in n = {n}");
    }

    #[test]
    fn threshold_only_decreases_at_sites() {
        let mut site = TagSite::new(1);
        site.receive(&TagDown { threshold: 0.25 });
        site.receive(&TagDown { threshold: 0.5 });
        assert_eq!(site.threshold, 0.25);
    }
}
