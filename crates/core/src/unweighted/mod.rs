//! Unweighted distributed samplers.
//!
//! * [`swor`] — unweighted sampling without replacement over distributed
//!   streams via minimum tags ("bottom-k"), in the style of
//!   Tirthapura–Woodruff \[31\] / Chung–Tirthapura–Woodruff \[11\]. This is the
//!   special case the paper's lower bound (Theorem 2 → Corollary 2) comes
//!   from, and an independent baseline for the weighted algorithm run on
//!   unit weights.
//! * [`swr`] — unweighted sampling **with** replacement: the `s` independent
//!   single-item samplers substrate of reference \[14\], realized as the
//!   `w = 1` case of the weighted reduction in [`crate::swr`].

pub mod swor;

/// Unweighted distributed SWR: the `w = 1` special case of the weighted
/// reduction. See [`crate::swr`] for the machinery; this module provides
/// unit-weight constructors.
pub mod swr {
    use crate::item::Item;
    use crate::swr::{SwrConfig, WeightedSwrCoordinator, WeightedSwrSite};

    /// Site for unweighted distributed SWR (unit weights).
    pub type UnweightedSwrSite = WeightedSwrSite;
    /// Coordinator for unweighted distributed SWR.
    pub type UnweightedSwrCoordinator = WeightedSwrCoordinator;

    /// Builds a `(sites, coordinator)` pair for unweighted SWR.
    pub fn build(cfg: SwrConfig, seed: u64) -> (Vec<UnweightedSwrSite>, UnweightedSwrCoordinator) {
        let sites = (0..cfg.num_sites)
            .map(|i| WeightedSwrSite::new(&cfg, crate::rng::mix(seed, 0x5157_0000 + i as u64)))
            .collect();
        (sites, WeightedSwrCoordinator::new(cfg))
    }

    /// Convenience: a unit-weight item.
    pub fn unit(id: u64) -> Item {
        Item::unit(id)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn build_wires_k_sites() {
            let (sites, coord) = build(SwrConfig::new(4, 3), 1);
            assert_eq!(sites.len(), 3);
            assert_eq!(coord.capacity(), 4);
        }

        #[test]
        fn unweighted_marginals_are_uniform() {
            // SWR over n unit items: each slot holds item i w.p. 1/n.
            let n = 8u64;
            let s = 3usize;
            let trials = 30_000u64;
            let mut counts = vec![0u64; n as usize];
            for t in 0..trials {
                let (mut sites, mut coord) = build(SwrConfig::new(s, 2), 50_000 + t);
                let mut ups = Vec::new();
                let mut downs = Vec::new();
                for i in 0..n {
                    sites[(i % 2) as usize].observe(unit(i), &mut ups);
                    for u in ups.drain(..) {
                        coord.receive(u, &mut downs);
                        for d in downs.drain(..) {
                            for st in &mut sites {
                                st.receive(&d);
                            }
                        }
                    }
                }
                for it in coord.sample() {
                    counts[it.id as usize] += 1;
                }
            }
            let draws = trials * s as u64;
            let p = 1.0 / n as f64;
            for (i, &c) in counts.iter().enumerate() {
                let emp = c as f64 / draws as f64;
                let se = (p * (1.0 - p) / draws as f64).sqrt();
                assert!((emp - p).abs() < 6.0 * se, "item {i}: {emp} vs {p}");
            }
        }

        #[test]
        fn deterministic_given_seed() {
            let run = |seed: u64| {
                let (mut sites, mut coord) = build(SwrConfig::new(4, 2), seed);
                let mut ups = Vec::new();
                let mut downs = Vec::new();
                for i in 0..500u64 {
                    sites[(i % 2) as usize].observe(unit(i), &mut ups);
                    for u in ups.drain(..) {
                        coord.receive(u, &mut downs);
                        for d in downs.drain(..) {
                            for st in &mut sites {
                                st.receive(&d);
                            }
                        }
                    }
                }
                coord.sample().iter().map(|i| i.id).collect::<Vec<_>>()
            };
            assert_eq!(run(9), run(9));
        }
    }
}
