//! Naive distributed weighted SWOR — the strawman the paper improves on.
//!
//! Section 1.2: *"if each site independently ran such a sampler on its
//! input — storing the items with the s largest keys — and sent each new
//! sample to the coordinator, who then stores the items with the overall s
//! largest keys, one would have a correct protocol with O(ks·log W)
//! expected communication."*
//!
//! Implemented verbatim: each site keeps a local top-`s` of precision keys
//! and forwards every item that enters its local sample; the coordinator
//! keeps the global top-`s`. No downstream messages at all. Used as the
//! baseline of experiment E3 to exhibit the `Θ(s)` multiplicative gap.

use crate::item::{Item, Keyed};
use crate::keys::assign_key;
use crate::rng::Rng;
use crate::topk::{Offer, TopK};

/// Site state for the naive protocol: a local top-`s`.
#[derive(Debug)]
pub struct NaiveSite {
    local: TopK,
    rng: Rng,
    /// Messages sent by this site.
    pub sent: u64,
}

impl NaiveSite {
    /// Creates a site with sample size `s`.
    pub fn new(s: usize, seed: u64) -> Self {
        Self {
            local: TopK::new(s),
            rng: Rng::new(seed),
            sent: 0,
        }
    }

    /// Observes an item; returns the keyed item iff it entered the local
    /// sample (and therefore must be forwarded).
    pub fn observe(&mut self, item: Item) -> Option<Keyed> {
        let keyed = assign_key(item, &mut self.rng);
        match self.local.offer(keyed) {
            Offer::Inserted | Offer::Replaced(_) => {
                self.sent += 1;
                Some(keyed)
            }
            Offer::Rejected => None,
        }
    }
}

/// Coordinator for the naive protocol: the global top-`s`.
#[derive(Debug)]
pub struct NaiveCoordinator {
    global: TopK,
    s: usize,
}

impl NaiveCoordinator {
    /// Creates a coordinator with sample size `s`.
    pub fn new(s: usize) -> Self {
        Self {
            global: TopK::new(s),
            s,
        }
    }

    /// Receives a forwarded keyed item.
    pub fn receive(&mut self, keyed: Keyed) {
        self.global.offer(keyed);
    }

    /// Current weighted SWOR (top-`s` keys), sorted descending by key.
    pub fn sample(&self) -> Vec<Keyed> {
        let mut v = self.global.sorted_desc();
        v.truncate(self.s);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_sample_against_merge_of_sites() {
        // The coordinator's sample must equal the top-s over all keys that
        // ever entered any local sample; since local samples see all items
        // and keys never change, this equals the global top-s of all keys.
        let k = 4;
        let s = 3;
        let mut sites: Vec<NaiveSite> = (0..k).map(|i| NaiveSite::new(s, 100 + i)).collect();
        let mut coord = NaiveCoordinator::new(s);
        let mut all_keys: Vec<Keyed> = Vec::new();
        let mut rng = Rng::new(5);
        for t in 0..2000u64 {
            let site = (t % k) as usize;
            let item = Item::new(t, 1.0 + rng.f64() * 9.0);
            // Mirror the site's key draw by intercepting the forwarded key;
            // unforwarded keys can never be in the global top-s (they lost
            // locally to s better keys which were forwarded).
            if let Some(keyed) = sites[site].observe(item) {
                all_keys.push(keyed);
                coord.receive(keyed);
            }
        }
        let mut expect = all_keys.clone();
        expect.sort_by(|a, b| b.key.total_cmp(&a.key));
        expect.truncate(s);
        let got = coord.sample();
        let gids: Vec<u64> = got.iter().map(|x| x.item.id).collect();
        let eids: Vec<u64> = expect.iter().map(|x| x.item.id).collect();
        assert_eq!(gids, eids);
    }

    #[test]
    fn messages_scale_with_s_log_n() {
        // One site, n items: expected sends ~ s * H_n ~ s ln n.
        let s = 10usize;
        let n = 20_000u64;
        let mut site = NaiveSite::new(s, 3);
        for t in 0..n {
            site.observe(Item::new(t, 1.0));
        }
        let expect = s as f64 * (n as f64 / s as f64).ln() + s as f64;
        let got = site.sent as f64;
        assert!(
            got > 0.4 * expect && got < 2.5 * expect,
            "sent {got}, expected around {expect}"
        );
    }
}
