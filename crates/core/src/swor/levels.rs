//! Weight levels and epoch arithmetic (paper Definition 4 and the epoch
//! machinery of Section 3).

use crate::math::{floor_log_base, powi};

/// Level of a weight: the integer `j ≥ 0` with `w ∈ [r^j, r^(j+1))`,
/// clamped to 0 for `w < r` (Definition 4 sets level 0 for `w ∈ [0, r)`).
#[inline]
pub fn level_of(weight: f64, r: f64) -> u32 {
    debug_assert!(weight > 0.0 && r > 1.0);
    if weight < r {
        0
    } else {
        floor_log_base(r, weight) as u32
    }
}

/// Epoch index of a threshold statistic `u`: `Some(j)` with
/// `u ∈ [r^j, r^(j+1))` once `u ≥ 1`, `None` before that (the paper's
/// "epoch 0 until u first reaches r"; sites filter nothing while `None`).
#[inline]
pub fn epoch_of(u: f64, r: f64) -> Option<i64> {
    if u >= 1.0 {
        Some(floor_log_base(r, u))
    } else {
        None
    }
}

/// The filtering threshold `r^j` announced for epoch `j`.
pub fn epoch_threshold(epoch: i64, r: f64) -> f64 {
    powi(r, epoch)
}

/// Compact growable bitset over level indices — the per-site `saturated_j`
/// bits (O(1) machine words for any realistic weight range, Proposition 6).
#[derive(Clone, Debug, Default)]
pub struct LevelBits {
    words: Vec<u64>,
}

impl LevelBits {
    /// Empty bitset (all levels unsaturated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tests bit `level`.
    pub fn get(&self, level: u32) -> bool {
        let w = (level / 64) as usize;
        self.words
            .get(w)
            .is_some_and(|&word| word >> (level % 64) & 1 == 1)
    }

    /// Sets bit `level`.
    pub fn set(&mut self, level: u32) {
        let w = (level / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (level % 64);
    }

    /// Number of storage words (for space accounting tests).
    pub fn words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_of_basic() {
        // r = 2: [1,2) -> 0 (w < r), [2,4) -> 1, [4,8) -> 2 ...
        assert_eq!(level_of(1.0, 2.0), 0);
        assert_eq!(level_of(1.9, 2.0), 0);
        assert_eq!(level_of(2.0, 2.0), 1);
        assert_eq!(level_of(3.999, 2.0), 1);
        assert_eq!(level_of(4.0, 2.0), 2);
        assert_eq!(level_of(1024.0, 2.0), 10);
    }

    #[test]
    fn level_of_sub_r_weights_are_zero() {
        assert_eq!(level_of(0.25, 2.0), 0);
        assert_eq!(level_of(0.001, 8.0), 0);
        assert_eq!(level_of(7.999, 8.0), 0);
        assert_eq!(level_of(8.0, 8.0), 1);
    }

    #[test]
    fn epoch_of_tracks_u() {
        assert_eq!(epoch_of(0.0, 2.0), None);
        assert_eq!(epoch_of(0.99, 2.0), None);
        assert_eq!(epoch_of(1.0, 2.0), Some(0));
        assert_eq!(epoch_of(1.5, 2.0), Some(0));
        assert_eq!(epoch_of(2.0, 2.0), Some(1));
        assert_eq!(epoch_of(1023.0, 2.0), Some(9));
        assert_eq!(epoch_of(1024.0, 2.0), Some(10));
    }

    #[test]
    fn threshold_is_power() {
        assert_eq!(epoch_threshold(0, 2.0), 1.0);
        assert_eq!(epoch_threshold(3, 2.0), 8.0);
        assert_eq!(epoch_threshold(2, 2.5), 6.25);
    }

    #[test]
    fn level_bits_set_get() {
        let mut b = LevelBits::new();
        assert!(!b.get(0));
        assert!(!b.get(200));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(200);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(200));
        assert!(!b.get(1) && !b.get(65) && !b.get(199));
        // ~200 levels need only 4 words: O(1) space in practice.
        assert!(b.words() <= 4);
    }

    #[test]
    fn level_and_epoch_consistent() {
        // An item of weight w in level j, when it becomes the s-th largest
        // key region marker u=w, yields epoch >= j is not required; but the
        // bucketing functions must agree on exact powers.
        for j in 0..30u32 {
            let r = 2.0;
            let w = powi(r, j as i64);
            assert_eq!(level_of(w, r), if w < r { 0 } else { j });
            if w >= 1.0 {
                assert_eq!(epoch_of(w, r), Some(j as i64));
            }
        }
    }
}
