//! Protocol messages for weighted SWOR.
//!
//! Every message carries O(1) machine words (Proposition 7), so counting
//! messages equals counting words up to constants — the paper's cost model.

use crate::item::Item;

/// Site → coordinator messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpMsg {
    /// An item in an unsaturated level, forwarded unfiltered and withheld
    /// from the internal sampler ("early" message in the paper).
    Early {
        /// The withheld item.
        item: Item,
    },
    /// A keyed item that cleared the site's current epoch threshold
    /// ("regular" message).
    Regular {
        /// The item.
        item: Item,
        /// Its precision-sampling key `v = w/t`.
        key: f64,
    },
}

impl UpMsg {
    /// Short label for metrics aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            UpMsg::Early { .. } => "early",
            UpMsg::Regular { .. } => "regular",
        }
    }
}

/// Coordinator → sites broadcasts (each costs `k` messages, one per site).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DownMsg {
    /// Level `level` has filled up; sites stop sending early messages for it.
    LevelSaturated {
        /// Saturated level index.
        level: u32,
    },
    /// The s-th largest key crossed into `[r^j, r^(j+1))`; sites filter keys
    /// at or below `threshold = r^j`.
    UpdateEpoch {
        /// New filtering threshold `r^j`.
        threshold: f64,
    },
}

impl DownMsg {
    /// Short label for metrics aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            DownMsg::LevelSaturated { .. } => "level_saturated",
            DownMsg::UpdateEpoch { .. } => "update_epoch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            UpMsg::Early {
                item: Item::unit(1)
            }
            .kind(),
            "early"
        );
        assert_eq!(
            UpMsg::Regular {
                item: Item::unit(1),
                key: 2.0
            }
            .kind(),
            "regular"
        );
        assert_eq!(
            DownMsg::LevelSaturated { level: 3 }.kind(),
            "level_saturated"
        );
        assert_eq!(
            DownMsg::UpdateEpoch { threshold: 8.0 }.kind(),
            "update_epoch"
        );
    }
}
