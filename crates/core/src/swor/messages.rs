//! Protocol messages for weighted SWOR.
//!
//! Every message carries O(1) machine words (Proposition 7), so counting
//! messages equals counting words up to constants — the paper's cost model.

use crate::item::Item;

/// Site → coordinator messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpMsg {
    /// An item in an unsaturated level, forwarded unfiltered and withheld
    /// from the internal sampler ("early" message in the paper).
    Early {
        /// The withheld item.
        item: Item,
    },
    /// A keyed item that cleared the site's current epoch threshold
    /// ("regular" message).
    Regular {
        /// The item.
        item: Item,
        /// Its precision-sampling key `v = w/t`.
        key: f64,
    },
}

impl UpMsg {
    /// Short label for metrics aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            UpMsg::Early { .. } => "early",
            UpMsg::Regular { .. } => "regular",
        }
    }
}

/// Coordinator → sites broadcasts (each costs `k` messages, one per site).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DownMsg {
    /// Level `level` has filled up; sites stop sending early messages for it.
    LevelSaturated {
        /// Saturated level index.
        level: u32,
    },
    /// The s-th largest key crossed into `[r^j, r^(j+1))`; sites filter keys
    /// at or below `threshold = r^j`.
    UpdateEpoch {
        /// New filtering threshold `r^j`.
        threshold: f64,
    },
}

impl DownMsg {
    /// Short label for metrics aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            DownMsg::LevelSaturated { .. } => "level_saturated",
            DownMsg::UpdateEpoch { .. } => "update_epoch",
        }
    }
}

/// Aggregator → root message in a hierarchical (fan-in) deployment.
///
/// Samples are mergeable (see [`crate::merge`]), so an aggregator that runs
/// the full protocol over its group of sites can periodically ship its
/// *entire current keyed sample* to a root merger; the root's merge of the
/// latest sync from every group is an exact weighted SWOR of everything the
/// groups had seen as of those syncs (bounded staleness). In the paper's
/// accounting each synced sample entry costs one message, so a sync of `s`
/// entries costs `s` messages — the `g·s/sync_every` message-rate overhead
/// of the tree topology.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncMsg {
    /// Index of the group (aggregator) this sample summarizes.
    pub group: u32,
    /// Items the aggregator's group had processed when the sync was taken —
    /// the root's per-group coverage watermark, used for the
    /// bounded-staleness guarantee.
    pub items: u64,
    /// The aggregator's current keyed sample (its top-`s`).
    pub sample: Vec<crate::item::Keyed>,
}

impl SyncMsg {
    /// Short label for metrics aggregation.
    pub fn kind(&self) -> &'static str {
        "sync"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            UpMsg::Early {
                item: Item::unit(1)
            }
            .kind(),
            "early"
        );
        assert_eq!(
            UpMsg::Regular {
                item: Item::unit(1),
                key: 2.0
            }
            .kind(),
            "regular"
        );
        assert_eq!(
            DownMsg::LevelSaturated { level: 3 }.kind(),
            "level_saturated"
        );
        assert_eq!(
            DownMsg::UpdateEpoch { threshold: 8.0 }.kind(),
            "update_epoch"
        );
    }
}
