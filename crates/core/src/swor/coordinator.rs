//! Coordinator-side protocol — paper Algorithms 2 and 3, with the
//! O(s)-space optimization of Proposition 6.
//!
//! State:
//!
//! * `S` — the top-`s` keyed items among everything *released* to the
//!   internal sampler ([`crate::topk::TopK`]);
//! * withheld items — instead of storing each level set `D_j` in full, only
//!   the global top-`s` keyed items across all unsaturated levels are
//!   retained (`Slevel` in Proposition 6) together with an O(log)-bit
//!   counter per level. Dropped withheld items are provably never part of
//!   any query answer (they are beaten by `s` live items, and keys never
//!   change), so query behaviour is identical to Algorithm 2 — this is
//!   property-tested against [`super::faithful::FaithfulCoordinator`].
//!
//! On level saturation the retained items of that level are released into
//! `S` via `Add-to-Sample` (Algorithm 3) and a `LevelSaturated` broadcast is
//! issued. Whenever `u` (s-th largest key, 0 before `S` fills) crosses into
//! a new `[r^j, r^(j+1))`, an `UpdateEpoch(r^j)` broadcast is issued.
//!
//! The query answer at any time is the top-`s` of `S ∪ retained`, a correct
//! weighted SWOR of the whole stream so far (Theorem 3).

use std::collections::HashMap;

use crate::item::{Item, Keyed};
use crate::keys::assign_key;
use crate::rng::Rng;
use crate::topk::{top_s_of, TopK};

use super::config::SworConfig;
use super::levels::{epoch_of, epoch_threshold, level_of};
use super::messages::{DownMsg, UpMsg};

/// Coordinator-side counters (diagnostics only).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordStats {
    /// Early messages received.
    pub early_received: u64,
    /// Regular messages received.
    pub regular_received: u64,
    /// Regular messages that actually entered `S` (beat `u` on arrival).
    pub regular_accepted: u64,
    /// Level saturations (each causes one broadcast).
    pub saturations: u64,
    /// Epoch advances (each causes one broadcast).
    pub epoch_broadcasts: u64,
    /// The first epoch entered (set when `u` first reaches 1). Together
    /// with the final epoch this pins the epoch-broadcast count:
    /// `epoch_broadcasts = final_epoch - first_epoch + 1` — the unified
    /// down-path accounting the run-level invariants verify.
    pub first_epoch: Option<i64>,
    /// Withheld items dropped by the O(s)-space optimization.
    pub withheld_dropped: u64,
    /// Total weight of items known to lie in saturated level sets (the
    /// denominator of Lemma 1, as visible to the coordinator — site-filtered
    /// regular items are missing, making the measured fraction
    /// conservative).
    pub released_weight: f64,
    /// Maximum over releases of `w / released_weight` at release time — the
    /// quantity Lemma 1 bounds by `1/(4s)`.
    pub max_release_fraction: f64,
}

/// Per-level bookkeeping: an O(log rs)-bit counter, the accumulated weight
/// (for the Lemma 1 diagnostic), and the saturation flag.
#[derive(Clone, Copy, Debug, Default)]
struct LevelInfo {
    count: u64,
    weight_sum: f64,
    saturated: bool,
}

/// Retained withheld items: global top-`s` among unsaturated level items.
#[derive(Debug)]
struct Withheld {
    cap: usize,
    entries: Vec<(u32, Keyed)>,
    dropped: u64,
}

impl Withheld {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::with_capacity(cap),
            dropped: 0,
        }
    }

    /// Keeps the top-`cap` by key; linear scan is fine (cap = s, and only
    /// early messages — O(rs·log W/log r) of them in total — pass through).
    fn insert(&mut self, level: u32, keyed: Keyed) {
        if self.entries.len() < self.cap {
            self.entries.push((level, keyed));
            return;
        }
        let (mut min_idx, mut min_key) = (0usize, f64::INFINITY);
        for (i, (_, k)) in self.entries.iter().enumerate() {
            if k.key < min_key {
                min_key = k.key;
                min_idx = i;
            }
        }
        if keyed.key > min_key {
            self.entries[min_idx] = (level, keyed);
        }
        self.dropped += 1;
    }

    /// Removes and returns all retained items of `level`, preserving
    /// insertion order.
    fn drain_level(&mut self, level: u32) -> Vec<Keyed> {
        let mut out = Vec::new();
        self.entries.retain(|&(l, k)| {
            if l == level {
                out.push(k);
                false
            } else {
                true
            }
        });
        out
    }

    fn iter(&self) -> impl Iterator<Item = &Keyed> {
        self.entries.iter().map(|(_, k)| k)
    }
}

/// The weighted SWOR coordinator (Algorithms 2–3, Proposition 6 space
/// optimization).
#[derive(Debug)]
pub struct SworCoordinator {
    cfg: SworConfig,
    r: f64,
    level_capacity: u64,
    sample: TopK,
    withheld: Withheld,
    levels: HashMap<u32, LevelInfo>,
    epoch: Option<i64>,
    rng: Rng,
    /// Diagnostics counters.
    pub stats: CoordStats,
}

impl SworCoordinator {
    /// Creates a coordinator from the shared configuration and a seed for
    /// the keys it draws on behalf of early items.
    pub fn new(cfg: SworConfig, seed: u64) -> Self {
        let r = cfg.r();
        let level_capacity = cfg.level_capacity() as u64;
        let s = cfg.sample_size;
        Self {
            cfg,
            r,
            level_capacity,
            sample: TopK::new(s),
            withheld: Withheld::new(s),
            levels: HashMap::new(),
            epoch: None,
            rng: Rng::new(seed),
            stats: CoordStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SworConfig {
        &self.cfg
    }

    /// Current value of `u`, the s-th largest released key (0 before `S`
    /// fills) — the statistic that drives epochs and the L1 estimator.
    pub fn u(&self) -> f64 {
        self.sample.u()
    }

    /// Current epoch index (None until `u ≥ 1`).
    pub fn epoch(&self) -> Option<i64> {
        self.epoch
    }

    /// Handles one upstream message, appending any broadcasts to `out`.
    pub fn receive(&mut self, msg: UpMsg, out: &mut Vec<DownMsg>) {
        match msg {
            UpMsg::Early { item } => self.receive_early(item, out),
            UpMsg::Regular { item, key } => {
                self.stats.regular_received += 1;
                // Regular items belong to already-saturated levels: they
                // enter the Lemma 1 denominator whether or not accepted.
                self.track_release(item.weight);
                // Algorithm 2: accept iff the key beats the current u.
                if key > self.sample.u() {
                    self.stats.regular_accepted += 1;
                    self.add_to_sample(Keyed::new(item, key), out);
                }
            }
        }
    }

    fn receive_early(&mut self, item: Item, out: &mut Vec<DownMsg>) {
        self.stats.early_received += 1;
        let level = level_of(item.weight, self.r);
        let info = self.levels.entry(level).or_default();
        if info.saturated {
            // A site with a stale saturation bit (possible under delayed
            // broadcast delivery): the level is already released, so treat
            // the item as released immediately.
            self.track_release(item.weight);
            let keyed = assign_key(item, &mut self.rng);
            self.add_to_sample(keyed, out);
            return;
        }
        info.count += 1;
        info.weight_sum += item.weight;
        let now_saturated = info.count >= self.level_capacity;
        // Generate the key at arrival (Algorithm 2 line "generate key").
        let keyed = assign_key(item, &mut self.rng);
        self.withheld.insert(level, keyed);
        self.stats.withheld_dropped = self.withheld.dropped;
        if now_saturated {
            let info = self.levels.get_mut(&level).expect("present");
            info.saturated = true;
            // Lemma 1 denominator: the whole level enters the released
            // weight at once (including any items the O(s)-space
            // optimization dropped from the withheld set).
            self.stats.released_weight += info.weight_sum;
            self.stats.saturations += 1;
            for k in self.withheld.drain_level(level) {
                let frac = k.item.weight / self.stats.released_weight;
                if frac > self.stats.max_release_fraction {
                    self.stats.max_release_fraction = frac;
                }
                self.add_to_sample(k, out);
            }
            out.push(DownMsg::LevelSaturated { level });
        }
    }

    /// Lemma 1 diagnostic update for a single item entering the set of
    /// released (saturated-level) items.
    fn track_release(&mut self, weight: f64) {
        self.stats.released_weight += weight;
        let frac = weight / self.stats.released_weight;
        if frac > self.stats.max_release_fraction {
            self.stats.max_release_fraction = frac;
        }
    }

    /// Algorithm 3: insert into `S`, evicting the minimum if necessary, and
    /// broadcast an epoch update for **every** power of `r` that `u`
    /// crossed.
    ///
    /// One broadcast per epoch crossed — not one per crossing event — keeps
    /// the downstream accounting a function of the epochs visited rather
    /// than of how they were visited. Under delayed delivery (the threaded
    /// and TCP engines) a single accepted key can jump `u` across several
    /// epochs at once; coalescing those into one message made identical
    /// scenarios meter differently across engines (the 224-vs-232
    /// down-message drift between streaming and materialized TCP runs), and
    /// it under-counts against the paper's `O(log(εW))`-epochs analysis,
    /// which charges each epoch its own broadcast.
    fn add_to_sample(&mut self, keyed: Keyed, out: &mut Vec<DownMsg>) {
        self.sample.offer(keyed);
        let new_epoch = epoch_of(self.sample.u(), self.r);
        if new_epoch != self.epoch {
            if let Some(j) = new_epoch {
                // u is nondecreasing, so epochs only move forward. Entering
                // the epoch machinery (None -> Some) announces only the
                // current epoch; afterwards every intermediate epoch is
                // announced in order, ending with the current one.
                let first = match self.epoch {
                    Some(prev) => prev + 1,
                    None => {
                        self.stats.first_epoch = Some(j);
                        j
                    }
                };
                self.epoch = new_epoch;
                for epoch in first..=j {
                    self.stats.epoch_broadcasts += 1;
                    out.push(DownMsg::UpdateEpoch {
                        threshold: epoch_threshold(epoch, self.r),
                    });
                }
            }
        }
    }

    /// The continuously maintained weighted SWOR: top-`s` of
    /// `S ∪ withheld` (Theorem 3's query procedure). Sorted by key,
    /// descending.
    pub fn sample(&self) -> Vec<Keyed> {
        top_s_of(
            self.sample.iter().chain(self.withheld.iter()),
            self.cfg.sample_size,
        )
    }

    /// The contents of the released set `S`, sorted by decreasing key
    /// (diagnostics). Note this is **not** in general the top-`s` of all
    /// released keys: the O(s)-space optimization may have dropped a
    /// withheld key that outranked members of `S` — only the full query
    /// sample ([`Self::sample`]) is an exact top-`s` (of *all* keys).
    pub fn released_sample(&self) -> Vec<Keyed> {
        top_s_of(self.sample.iter(), self.cfg.sample_size)
    }

    /// Number of items currently in the released sample `S` (diagnostics).
    pub fn released_len(&self) -> usize {
        self.sample.len()
    }

    /// Whether `level` has saturated.
    pub fn is_level_saturated(&self, level: u32) -> bool {
        self.levels.get(&level).is_some_and(|i| i.saturated)
    }

    /// Number of items counted into `level` so far.
    pub fn level_count(&self, level: u32) -> u64 {
        self.levels.get(&level).map_or(0, |i| i.count)
    }

    /// Number of withheld items currently retained — at most `s` by the
    /// Proposition 6 space optimization (the faithful coordinator instead
    /// stores up to `4rs` per unsaturated level).
    pub fn withheld_len(&self) -> usize {
        self.withheld.entries.len()
    }

    /// Total weight currently withheld in unsaturated level sets. The
    /// coordinator knows it exactly (every withheld item arrived as an early
    /// message), which is what makes `u·s + withheld_weight` a good L1
    /// estimate (Section 1.2: "once the heavy hitters are withheld, the
    /// values of the keys ... provide good estimates of the total L1").
    pub fn withheld_weight(&self) -> f64 {
        self.levels
            .values()
            .filter(|i| !i.saturated)
            .map(|i| i.weight_sum)
            .sum()
    }

    /// Captures the full coordinator state for checkpointing / failover.
    /// Restoring via [`SworCoordinator::restore`] resumes the protocol with
    /// identical behaviour (keys still pending are preserved; the RNG state
    /// continues the same stream).
    pub fn snapshot(&self) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            config: self.cfg.clone(),
            sample: self.sample.sorted_desc(),
            withheld: self.withheld.entries.clone(),
            withheld_dropped: self.withheld.dropped,
            levels: self
                .levels
                .iter()
                .map(|(&level, info)| LevelSnapshot {
                    level,
                    count: info.count,
                    weight_sum: info.weight_sum,
                    saturated: info.saturated,
                })
                .collect(),
            epoch: self.epoch,
            rng_state: self.rng.state(),
            stats: self.stats,
        }
    }

    /// Rebuilds a coordinator from a snapshot. Behaviour after restore is
    /// identical to the original up to ordering among exactly equal keys
    /// (probability zero under the continuous key distribution).
    pub fn restore(snap: CoordinatorSnapshot) -> Self {
        let r = snap.config.r();
        let level_capacity = snap.config.level_capacity() as u64;
        let s = snap.config.sample_size;
        let mut sample = TopK::new(s);
        // Re-offer in increasing key order so later (larger) entries keep
        // winning deterministic tie-breaks, mirroring the original fill.
        for keyed in snap.sample.iter().rev() {
            sample.offer(*keyed);
        }
        let mut withheld = Withheld::new(s);
        withheld.entries = snap.withheld;
        withheld.dropped = snap.withheld_dropped;
        let levels = snap
            .levels
            .into_iter()
            .map(|l| {
                (
                    l.level,
                    LevelInfo {
                        count: l.count,
                        weight_sum: l.weight_sum,
                        saturated: l.saturated,
                    },
                )
            })
            .collect();
        Self {
            cfg: snap.config,
            r,
            level_capacity,
            sample,
            withheld,
            levels,
            epoch: snap.epoch,
            rng: Rng::from_state(snap.rng_state),
            stats: snap.stats,
        }
    }
}

/// Serializable-by-hand coordinator state (see
/// [`SworCoordinator::snapshot`]).
#[derive(Clone, Debug)]
pub struct CoordinatorSnapshot {
    /// Protocol configuration.
    pub config: SworConfig,
    /// Released sample `S`, sorted by decreasing key.
    pub sample: Vec<Keyed>,
    /// Retained withheld items with their levels.
    pub withheld: Vec<(u32, Keyed)>,
    /// Withheld items dropped so far (diagnostic continuity).
    pub withheld_dropped: u64,
    /// Per-level counters.
    pub levels: Vec<LevelSnapshot>,
    /// Current epoch index.
    pub epoch: Option<i64>,
    /// RNG state (continues the same stream after restore).
    pub rng_state: [u64; 4],
    /// Counters.
    pub stats: CoordStats,
}

/// One level's bookkeeping inside a [`CoordinatorSnapshot`].
#[derive(Clone, Copy, Debug)]
pub struct LevelSnapshot {
    /// Level index.
    pub level: u32,
    /// Items counted into the level.
    pub count: u64,
    /// Total weight counted into the level.
    pub weight_sum: f64,
    /// Whether the level has saturated.
    pub saturated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SworConfig {
        // s=2, k=2 -> r=2, level capacity 16.
        SworConfig::new(2, 2)
    }

    #[test]
    fn early_items_withheld_until_saturation() {
        let cfg = small_cfg();
        let cap = cfg.level_capacity() as u64;
        let mut coord = SworCoordinator::new(cfg, 9);
        let mut out = Vec::new();
        for i in 0..cap - 1 {
            coord.receive(
                UpMsg::Early {
                    item: Item::new(i, 1.0),
                },
                &mut out,
            );
        }
        assert!(!coord.is_level_saturated(0));
        assert!(out.is_empty());
        assert_eq!(
            coord.released_len(),
            0,
            "nothing released before saturation"
        );
        // Saturating message releases the level and broadcasts.
        coord.receive(
            UpMsg::Early {
                item: Item::new(99, 1.0),
            },
            &mut out,
        );
        assert!(coord.is_level_saturated(0));
        assert!(out
            .iter()
            .any(|m| matches!(m, DownMsg::LevelSaturated { level: 0 })));
        assert_eq!(coord.released_len(), 2, "top-s retained items released");
    }

    #[test]
    fn query_includes_withheld_items() {
        let mut coord = SworCoordinator::new(small_cfg(), 1);
        let mut out = Vec::new();
        coord.receive(
            UpMsg::Early {
                item: Item::new(5, 100.0),
            },
            &mut out,
        );
        let sample = coord.sample();
        assert_eq!(sample.len(), 1);
        assert_eq!(sample[0].item.id, 5);
    }

    #[test]
    fn sample_size_is_min_t_s() {
        let mut coord = SworCoordinator::new(small_cfg(), 2);
        let mut out = Vec::new();
        for i in 0..10u64 {
            coord.receive(
                UpMsg::Early {
                    item: Item::new(i, 1.0),
                },
                &mut out,
            );
            let expect = ((i + 1) as usize).min(2);
            assert_eq!(coord.sample().len(), expect, "after {} items", i + 1);
        }
    }

    #[test]
    fn regular_below_u_rejected() {
        let mut coord = SworCoordinator::new(small_cfg(), 3);
        let mut out = Vec::new();
        // Fill S via regular messages with big keys.
        coord.receive(
            UpMsg::Regular {
                item: Item::new(1, 1.0),
                key: 100.0,
            },
            &mut out,
        );
        coord.receive(
            UpMsg::Regular {
                item: Item::new(2, 1.0),
                key: 50.0,
            },
            &mut out,
        );
        assert_eq!(coord.u(), 50.0);
        coord.receive(
            UpMsg::Regular {
                item: Item::new(3, 1.0),
                key: 10.0,
            },
            &mut out,
        );
        assert_eq!(coord.stats.regular_accepted, 2);
        let ids: Vec<u64> = coord.sample().iter().map(|k| k.item.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn epoch_broadcast_on_power_crossing() {
        let mut coord = SworCoordinator::new(small_cfg(), 4);
        let mut out = Vec::new();
        coord.receive(
            UpMsg::Regular {
                item: Item::new(1, 1.0),
                key: 9.0,
            },
            &mut out,
        );
        assert!(out.is_empty(), "no epoch before S fills");
        coord.receive(
            UpMsg::Regular {
                item: Item::new(2, 1.0),
                key: 5.0,
            },
            &mut out,
        );
        // u = 5 in [4, 8) -> epoch 2, threshold 4.
        assert_eq!(coord.epoch(), Some(2));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            DownMsg::UpdateEpoch { threshold } if threshold == 4.0
        ));
        // Raising u within the same epoch does not broadcast.
        out.clear();
        coord.receive(
            UpMsg::Regular {
                item: Item::new(3, 1.0),
                key: 7.0,
            },
            &mut out,
        );
        assert!(out.is_empty());
        // Advancing one epoch broadcasts once with the new threshold.
        coord.receive(
            UpMsg::Regular {
                item: Item::new(4, 1.0),
                key: 64.0,
            },
            &mut out,
        );
        // u = min(9 evicted? keys now {9,64} -> u = 9) in [8,16) -> epoch 3.
        assert_eq!(coord.epoch(), Some(3));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            DownMsg::UpdateEpoch { threshold } if threshold == 8.0
        ));
        // Jumping multiple epochs at once broadcasts every epoch crossed,
        // in order — the down-path accounting counts epochs visited, not
        // crossing events (delayed delivery must meter like instant).
        out.clear();
        coord.receive(
            UpMsg::Regular {
                item: Item::new(5, 1.0),
                key: 1000.0,
            },
            &mut out,
        );
        // Keys now {1000, 64}: u = 64 in [64, 128) -> epoch 6; epochs 4,
        // 5 and 6 are each announced with their own threshold.
        assert_eq!(coord.epoch(), Some(6));
        let thresholds: Vec<f64> = out
            .iter()
            .map(|m| match m {
                DownMsg::UpdateEpoch { threshold } => *threshold,
                other => panic!("unexpected broadcast {other:?}"),
            })
            .collect();
        assert_eq!(thresholds, vec![16.0, 32.0, 64.0]);
        assert_eq!(coord.stats.epoch_broadcasts, 1 + 1 + 3);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Run one coordinator straight through; run another, snapshot and
        // restore it midway; both must answer queries identically at every
        // subsequent step (keys are drawn from identical RNG streams).
        let cfg = SworConfig::new(3, 4);
        let mut a = SworCoordinator::new(cfg.clone(), 99);
        let mut b = SworCoordinator::new(cfg, 99);
        let mut rng = Rng::new(55);
        let mut out = Vec::new();
        let msgs: Vec<UpMsg> = (0..300u64)
            .map(|i| {
                let w = 1.0 + (i % 17) as f64;
                if rng.bernoulli(0.6) {
                    UpMsg::Early {
                        item: Item::new(i, w),
                    }
                } else {
                    UpMsg::Regular {
                        item: Item::new(i, w),
                        key: w / rng.exp(),
                    }
                }
            })
            .collect();
        for (step, msg) in msgs.iter().enumerate() {
            a.receive(*msg, &mut out);
            out.clear();
            b.receive(*msg, &mut out);
            out.clear();
            if step == 150 {
                b = SworCoordinator::restore(b.snapshot());
            }
            let sa: Vec<(u64, u64)> = a
                .sample()
                .iter()
                .map(|k| (k.item.id, k.key.to_bits()))
                .collect();
            let sb: Vec<(u64, u64)> = b
                .sample()
                .iter()
                .map(|k| (k.item.id, k.key.to_bits()))
                .collect();
            assert_eq!(sa, sb, "diverged at step {step}");
            assert_eq!(a.u().to_bits(), b.u().to_bits());
            assert_eq!(a.epoch(), b.epoch());
        }
        assert_eq!(a.stats.early_received, b.stats.early_received);
        assert_eq!(a.stats.saturations, b.stats.saturations);
    }

    #[test]
    fn snapshot_preserves_withheld_weight() {
        let cfg = SworConfig::new(2, 2);
        let mut c = SworCoordinator::new(cfg, 3);
        let mut out = Vec::new();
        for i in 0..10u64 {
            c.receive(
                UpMsg::Early {
                    item: Item::new(i, 100.0),
                },
                &mut out,
            );
        }
        let snap = c.snapshot();
        let restored = SworCoordinator::restore(snap);
        assert_eq!(
            c.withheld_weight().to_bits(),
            restored.withheld_weight().to_bits()
        );
        assert_eq!(c.level_count(7), restored.level_count(7));
    }

    #[test]
    fn stale_early_message_released_directly() {
        let cfg = small_cfg();
        let cap = cfg.level_capacity() as u64;
        let mut coord = SworCoordinator::new(cfg, 5);
        let mut out = Vec::new();
        for i in 0..cap {
            coord.receive(
                UpMsg::Early {
                    item: Item::new(i, 1.0),
                },
                &mut out,
            );
        }
        assert!(coord.is_level_saturated(0));
        let before = coord.level_count(0);
        // A stale early for the saturated level must not re-open it.
        coord.receive(
            UpMsg::Early {
                item: Item::new(1000, 1.0),
            },
            &mut out,
        );
        assert_eq!(coord.level_count(0), before);
        assert!(coord.is_level_saturated(0));
    }
}
