//! Wire encoding of the protocol messages.
//!
//! The paper's accounting equates messages and machine words because every
//! message carries O(1) words (Section 2.1, Proposition 7). This module
//! makes that concrete: a compact, canonical byte encoding for
//! [`UpMsg`]/[`DownMsg`] whose size is verified to stay within 4 machine
//! words, plus exact byte metering used by the simulator.
//!
//! The encoding is little-endian, one discriminant byte followed by fixed
//! fields — deliberately boring, so that sizes are predictable and the
//! round-trip is total on valid frames.

use crate::item::{Item, Keyed};

use super::messages::{DownMsg, SyncMsg, UpMsg};

/// Frame tags.
const TAG_EARLY: u8 = 0x01;
const TAG_REGULAR: u8 = 0x02;
const TAG_LEVEL_SATURATED: u8 = 0x11;
const TAG_UPDATE_EPOCH: u8 = 0x12;
const TAG_SYNC: u8 = 0x21;

/// Encoded size of one [`Keyed`] sample entry inside a [`SyncMsg`] frame.
const SYNC_ENTRY_BYTES: usize = 24;

/// Fixed header size of a [`SyncMsg`] frame: tag, group, items, entry count.
const SYNC_HEADER_BYTES: usize = 1 + 4 + 8 + 4;

/// Errors from decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer was shorter than the frame requires.
    Truncated,
    /// Unknown discriminant byte.
    BadTag(
        /// The offending byte.
        u8,
    ),
    /// A decoded numeric field was out of domain (e.g. non-positive
    /// weight).
    BadField,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#x}"),
            WireError::BadField => write!(f, "field out of domain"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, WireError> {
    buf.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or(WireError::Truncated)
}

fn get_f64(buf: &[u8], at: usize) -> Result<f64, WireError> {
    get_u64(buf, at).map(f64::from_bits)
}

/// Encodes an upstream message, appending to `buf`; returns the frame
/// length in bytes.
pub fn encode_up(msg: &UpMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    match *msg {
        UpMsg::Early { item } => {
            buf.push(TAG_EARLY);
            put_u64(buf, item.id);
            put_f64(buf, item.weight);
        }
        UpMsg::Regular { item, key } => {
            buf.push(TAG_REGULAR);
            put_u64(buf, item.id);
            put_f64(buf, item.weight);
            put_f64(buf, key);
        }
    }
    buf.len() - start
}

/// Encodes a downstream message, appending to `buf`; returns the frame
/// length in bytes.
pub fn encode_down(msg: &DownMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    match *msg {
        DownMsg::LevelSaturated { level } => {
            buf.push(TAG_LEVEL_SATURATED);
            buf.extend_from_slice(&level.to_le_bytes());
        }
        DownMsg::UpdateEpoch { threshold } => {
            buf.push(TAG_UPDATE_EPOCH);
            put_f64(buf, threshold);
        }
    }
    buf.len() - start
}

/// Decodes one upstream frame from the front of `buf`; returns the message
/// and the bytes consumed.
pub fn decode_up(buf: &[u8]) -> Result<(UpMsg, usize), WireError> {
    let tag = *buf.first().ok_or(WireError::Truncated)?;
    match tag {
        TAG_EARLY => {
            let id = get_u64(buf, 1)?;
            let weight = get_f64(buf, 9)?;
            if !(weight > 0.0 && weight.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((
                UpMsg::Early {
                    item: Item { id, weight },
                },
                17,
            ))
        }
        TAG_REGULAR => {
            let id = get_u64(buf, 1)?;
            let weight = get_f64(buf, 9)?;
            let key = get_f64(buf, 17)?;
            if !(weight > 0.0 && weight.is_finite() && key > 0.0 && key.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((
                UpMsg::Regular {
                    item: Item { id, weight },
                    key,
                },
                25,
            ))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Decodes one downstream frame from the front of `buf`.
pub fn decode_down(buf: &[u8]) -> Result<(DownMsg, usize), WireError> {
    let tag = *buf.first().ok_or(WireError::Truncated)?;
    match tag {
        TAG_LEVEL_SATURATED => {
            let level = buf
                .get(1..5)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                .ok_or(WireError::Truncated)?;
            Ok((DownMsg::LevelSaturated { level }, 5))
        }
        TAG_UPDATE_EPOCH => {
            let threshold = get_f64(buf, 1)?;
            if !(threshold > 0.0 && threshold.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((DownMsg::UpdateEpoch { threshold }, 9))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Encodes an aggregator→root sync frame, appending to `buf`; returns the
/// frame length in bytes.
pub fn encode_sync(msg: &SyncMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.push(TAG_SYNC);
    buf.extend_from_slice(&msg.group.to_le_bytes());
    put_u64(buf, msg.items);
    let count = u32::try_from(msg.sample.len()).expect("sample length fits u32");
    buf.extend_from_slice(&count.to_le_bytes());
    for kd in &msg.sample {
        put_u64(buf, kd.item.id);
        put_f64(buf, kd.item.weight);
        put_f64(buf, kd.key);
    }
    buf.len() - start
}

/// Decodes one sync frame from the front of `buf`; returns the message and
/// the bytes consumed.
///
/// The entry count is validated against the available bytes *before* the
/// sample vector is allocated, so a malformed length cannot trigger an
/// unbounded allocation.
pub fn decode_sync(buf: &[u8]) -> Result<(SyncMsg, usize), WireError> {
    let tag = *buf.first().ok_or(WireError::Truncated)?;
    if tag != TAG_SYNC {
        return Err(WireError::BadTag(tag));
    }
    let group = buf
        .get(1..5)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .ok_or(WireError::Truncated)?;
    let items = get_u64(buf, 5)?;
    let count = buf
        .get(13..17)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .ok_or(WireError::Truncated)? as usize;
    // Bound the count by the bytes actually present before any arithmetic
    // on it: `count * SYNC_ENTRY_BYTES` could overflow usize on 32-bit
    // targets, defeating the length check below.
    if count > buf.len().saturating_sub(SYNC_HEADER_BYTES) / SYNC_ENTRY_BYTES {
        return Err(WireError::Truncated);
    }
    let total = SYNC_HEADER_BYTES + count * SYNC_ENTRY_BYTES;
    let mut sample = Vec::with_capacity(count);
    for i in 0..count {
        let at = SYNC_HEADER_BYTES + i * SYNC_ENTRY_BYTES;
        let id = get_u64(buf, at)?;
        let weight = get_f64(buf, at + 8)?;
        let key = get_f64(buf, at + 16)?;
        if !(weight > 0.0 && weight.is_finite() && key > 0.0 && key.is_finite()) {
            return Err(WireError::BadField);
        }
        sample.push(Keyed::new(Item { id, weight }, key));
    }
    Ok((
        SyncMsg {
            group,
            items,
            sample,
        },
        total,
    ))
}

/// Encoded size of an upstream message in bytes (no allocation).
pub fn up_len(msg: &UpMsg) -> usize {
    match msg {
        UpMsg::Early { .. } => 17,
        UpMsg::Regular { .. } => 25,
    }
}

/// Encoded size of a downstream message in bytes.
pub fn down_len(msg: &DownMsg) -> usize {
    match msg {
        DownMsg::LevelSaturated { .. } => 5,
        DownMsg::UpdateEpoch { .. } => 9,
    }
}

/// Encoded size of an aggregator→root sync frame in bytes.
pub fn sync_len(msg: &SyncMsg) -> usize {
    SYNC_HEADER_BYTES + msg.sample.len() * SYNC_ENTRY_BYTES
}

/// The paper's machine-word size assumption: Θ(log nW) bits; 8 bytes here.
pub const WORD_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let ups = [
            UpMsg::Early {
                item: Item::new(42, 3.5),
            },
            UpMsg::Regular {
                item: Item::new(u64::MAX, 1e300),
                key: 2.25e-10,
            },
        ];
        for msg in ups {
            let mut buf = Vec::new();
            let len = encode_up(&msg, &mut buf);
            assert_eq!(len, buf.len());
            assert_eq!(len, up_len(&msg));
            let (back, consumed) = decode_up(&buf).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, len);
        }
        let downs = [
            DownMsg::LevelSaturated { level: 7 },
            DownMsg::UpdateEpoch { threshold: 1024.0 },
        ];
        for msg in downs {
            let mut buf = Vec::new();
            let len = encode_down(&msg, &mut buf);
            assert_eq!(len, down_len(&msg));
            let (back, consumed) = decode_down(&buf).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, len);
        }
    }

    #[test]
    fn every_message_fits_in_o1_words() {
        // Proposition 7 / Section 2.1: messages are O(1) machine words.
        let msgs = [
            up_len(&UpMsg::Early {
                item: Item::new(1, 1.0),
            }),
            up_len(&UpMsg::Regular {
                item: Item::new(1, 1.0),
                key: 1.0,
            }),
            down_len(&DownMsg::LevelSaturated { level: 0 }),
            down_len(&DownMsg::UpdateEpoch { threshold: 1.0 }),
        ];
        for len in msgs {
            assert!(
                len <= 4 * WORD_BYTES,
                "frame of {len} bytes exceeds 4 machine words"
            );
        }
    }

    #[test]
    fn frames_concatenate_and_stream_decode() {
        let msgs = vec![
            UpMsg::Early {
                item: Item::new(1, 2.0),
            },
            UpMsg::Regular {
                item: Item::new(2, 3.0),
                key: 9.5,
            },
            UpMsg::Early {
                item: Item::new(3, 4.0),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_up(m, &mut buf);
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < buf.len() {
            let (m, used) = decode_up(&buf[at..]).expect("frame");
            decoded.push(m);
            at += used;
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn sync_roundtrip_and_exact_size() {
        let msg = SyncMsg {
            group: 3,
            items: 1_000_000,
            sample: vec![
                Keyed::new(Item::new(7, 2.5), 9.75),
                Keyed::new(Item::new(u64::MAX, 1e300), 2.25e-10),
            ],
        };
        let mut buf = Vec::new();
        let len = encode_sync(&msg, &mut buf);
        assert_eq!(len, buf.len());
        assert_eq!(len, sync_len(&msg));
        assert_eq!(len, 17 + 2 * 24);
        let (back, used) = decode_sync(&buf).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(used, len);
        // Empty sample: header only.
        let empty = SyncMsg {
            group: 0,
            items: 0,
            sample: Vec::new(),
        };
        let mut buf = Vec::new();
        assert_eq!(encode_sync(&empty, &mut buf), 17);
        assert_eq!(decode_sync(&buf).unwrap().0, empty);
    }

    #[test]
    fn sync_decode_rejects_malformed() {
        assert_eq!(decode_sync(&[]), Err(WireError::Truncated));
        assert_eq!(decode_sync(&[0xEE]), Err(WireError::BadTag(0xEE)));
        // A count that promises more entries than the buffer holds must be
        // rejected before allocation, not panic.
        let mut buf = Vec::new();
        encode_sync(
            &SyncMsg {
                group: 1,
                items: 5,
                sample: vec![Keyed::new(Item::new(1, 1.0), 2.0)],
            },
            &mut buf,
        );
        buf[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_sync(&buf), Err(WireError::Truncated));
        // Non-positive key in an entry is out of domain.
        let mut buf = Vec::new();
        encode_sync(
            &SyncMsg {
                group: 1,
                items: 5,
                sample: vec![Keyed::new(Item::new(1, 1.0), 2.0)],
            },
            &mut buf,
        );
        let key_at = buf.len() - 8;
        buf[key_at..].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(decode_sync(&buf), Err(WireError::BadField));
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        assert_eq!(decode_up(&[]), Err(WireError::Truncated));
        assert_eq!(decode_up(&[TAG_EARLY, 1, 2]), Err(WireError::Truncated));
        assert_eq!(decode_up(&[0xEE]), Err(WireError::BadTag(0xEE)));
        assert_eq!(decode_down(&[0xEE]), Err(WireError::BadTag(0xEE)));
        // Negative weight rejected.
        let mut buf = Vec::new();
        buf.push(TAG_EARLY);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(decode_up(&buf), Err(WireError::BadField));
    }
}
