//! Wire encoding of the protocol messages.
//!
//! The paper's accounting equates messages and machine words because every
//! message carries O(1) words (Section 2.1, Proposition 7). This module
//! makes that concrete: a compact, canonical byte encoding for
//! [`UpMsg`]/[`DownMsg`] whose size is verified to stay within 4 machine
//! words, plus exact byte metering used by the simulator.
//!
//! The encoding is little-endian, one discriminant byte followed by fixed
//! fields — deliberately boring, so that sizes are predictable and the
//! round-trip is total on valid frames.

use crate::item::Item;

use super::messages::{DownMsg, UpMsg};

/// Frame tags.
const TAG_EARLY: u8 = 0x01;
const TAG_REGULAR: u8 = 0x02;
const TAG_LEVEL_SATURATED: u8 = 0x11;
const TAG_UPDATE_EPOCH: u8 = 0x12;

/// Errors from decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer was shorter than the frame requires.
    Truncated,
    /// Unknown discriminant byte.
    BadTag(
        /// The offending byte.
        u8,
    ),
    /// A decoded numeric field was out of domain (e.g. non-positive
    /// weight).
    BadField,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#x}"),
            WireError::BadField => write!(f, "field out of domain"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, WireError> {
    buf.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or(WireError::Truncated)
}

fn get_f64(buf: &[u8], at: usize) -> Result<f64, WireError> {
    get_u64(buf, at).map(f64::from_bits)
}

/// Encodes an upstream message, appending to `buf`; returns the frame
/// length in bytes.
pub fn encode_up(msg: &UpMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    match *msg {
        UpMsg::Early { item } => {
            buf.push(TAG_EARLY);
            put_u64(buf, item.id);
            put_f64(buf, item.weight);
        }
        UpMsg::Regular { item, key } => {
            buf.push(TAG_REGULAR);
            put_u64(buf, item.id);
            put_f64(buf, item.weight);
            put_f64(buf, key);
        }
    }
    buf.len() - start
}

/// Encodes a downstream message, appending to `buf`; returns the frame
/// length in bytes.
pub fn encode_down(msg: &DownMsg, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    match *msg {
        DownMsg::LevelSaturated { level } => {
            buf.push(TAG_LEVEL_SATURATED);
            buf.extend_from_slice(&level.to_le_bytes());
        }
        DownMsg::UpdateEpoch { threshold } => {
            buf.push(TAG_UPDATE_EPOCH);
            put_f64(buf, threshold);
        }
    }
    buf.len() - start
}

/// Decodes one upstream frame from the front of `buf`; returns the message
/// and the bytes consumed.
pub fn decode_up(buf: &[u8]) -> Result<(UpMsg, usize), WireError> {
    let tag = *buf.first().ok_or(WireError::Truncated)?;
    match tag {
        TAG_EARLY => {
            let id = get_u64(buf, 1)?;
            let weight = get_f64(buf, 9)?;
            if !(weight > 0.0 && weight.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((
                UpMsg::Early {
                    item: Item { id, weight },
                },
                17,
            ))
        }
        TAG_REGULAR => {
            let id = get_u64(buf, 1)?;
            let weight = get_f64(buf, 9)?;
            let key = get_f64(buf, 17)?;
            if !(weight > 0.0 && weight.is_finite() && key > 0.0 && key.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((
                UpMsg::Regular {
                    item: Item { id, weight },
                    key,
                },
                25,
            ))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Decodes one downstream frame from the front of `buf`.
pub fn decode_down(buf: &[u8]) -> Result<(DownMsg, usize), WireError> {
    let tag = *buf.first().ok_or(WireError::Truncated)?;
    match tag {
        TAG_LEVEL_SATURATED => {
            let level = buf
                .get(1..5)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                .ok_or(WireError::Truncated)?;
            Ok((DownMsg::LevelSaturated { level }, 5))
        }
        TAG_UPDATE_EPOCH => {
            let threshold = get_f64(buf, 1)?;
            if !(threshold > 0.0 && threshold.is_finite()) {
                return Err(WireError::BadField);
            }
            Ok((DownMsg::UpdateEpoch { threshold }, 9))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Encoded size of an upstream message in bytes (no allocation).
pub fn up_len(msg: &UpMsg) -> usize {
    match msg {
        UpMsg::Early { .. } => 17,
        UpMsg::Regular { .. } => 25,
    }
}

/// Encoded size of a downstream message in bytes.
pub fn down_len(msg: &DownMsg) -> usize {
    match msg {
        DownMsg::LevelSaturated { .. } => 5,
        DownMsg::UpdateEpoch { .. } => 9,
    }
}

/// The paper's machine-word size assumption: Θ(log nW) bits; 8 bytes here.
pub const WORD_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let ups = [
            UpMsg::Early {
                item: Item::new(42, 3.5),
            },
            UpMsg::Regular {
                item: Item::new(u64::MAX, 1e300),
                key: 2.25e-10,
            },
        ];
        for msg in ups {
            let mut buf = Vec::new();
            let len = encode_up(&msg, &mut buf);
            assert_eq!(len, buf.len());
            assert_eq!(len, up_len(&msg));
            let (back, consumed) = decode_up(&buf).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, len);
        }
        let downs = [
            DownMsg::LevelSaturated { level: 7 },
            DownMsg::UpdateEpoch { threshold: 1024.0 },
        ];
        for msg in downs {
            let mut buf = Vec::new();
            let len = encode_down(&msg, &mut buf);
            assert_eq!(len, down_len(&msg));
            let (back, consumed) = decode_down(&buf).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, len);
        }
    }

    #[test]
    fn every_message_fits_in_o1_words() {
        // Proposition 7 / Section 2.1: messages are O(1) machine words.
        let msgs = [
            up_len(&UpMsg::Early {
                item: Item::new(1, 1.0),
            }),
            up_len(&UpMsg::Regular {
                item: Item::new(1, 1.0),
                key: 1.0,
            }),
            down_len(&DownMsg::LevelSaturated { level: 0 }),
            down_len(&DownMsg::UpdateEpoch { threshold: 1.0 }),
        ];
        for len in msgs {
            assert!(
                len <= 4 * WORD_BYTES,
                "frame of {len} bytes exceeds 4 machine words"
            );
        }
    }

    #[test]
    fn frames_concatenate_and_stream_decode() {
        let msgs = vec![
            UpMsg::Early {
                item: Item::new(1, 2.0),
            },
            UpMsg::Regular {
                item: Item::new(2, 3.0),
                key: 9.5,
            },
            UpMsg::Early {
                item: Item::new(3, 4.0),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_up(m, &mut buf);
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < buf.len() {
            let (m, used) = decode_up(&buf[at..]).expect("frame");
            decoded.push(m);
            at += used;
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        assert_eq!(decode_up(&[]), Err(WireError::Truncated));
        assert_eq!(decode_up(&[TAG_EARLY, 1, 2]), Err(WireError::Truncated));
        assert_eq!(decode_up(&[0xEE]), Err(WireError::BadTag(0xEE)));
        assert_eq!(decode_down(&[0xEE]), Err(WireError::BadTag(0xEE)));
        // Negative weight rejected.
        let mut buf = Vec::new();
        buf.push(TAG_EARLY);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(decode_up(&buf), Err(WireError::BadField));
    }
}
