//! Literal Algorithm 2 coordinator: stores each level set `D_j` in full.
//!
//! This is the verbatim pseudocode version, used to validate that the
//! O(s)-space optimized [`super::coordinator::SworCoordinator`]
//! (Proposition 6) has identical *query* behaviour: fed the same message
//! sequence with the same RNG seed, both produce the same top-`s` answer at
//! every time step (property-tested in this module and in the integration
//! suite).
//!
//! The two may transiently disagree on the *contents of `S`* (an item the
//! optimized variant dropped can sit in the faithful `S` while being beaten
//! by `s` withheld items) — the paper's "without changing its output
//! behavior" claim is about query answers, which we verify.

use std::collections::HashMap;

use crate::item::Keyed;
use crate::keys::assign_key;
use crate::rng::Rng;
use crate::topk::{top_s_of, TopK};

use super::config::SworConfig;
use super::levels::{epoch_of, epoch_threshold, level_of};
use super::messages::{DownMsg, UpMsg};

/// Verbatim Algorithm 2 coordinator with full level-set storage.
#[derive(Debug)]
pub struct FaithfulCoordinator {
    cfg: SworConfig,
    r: f64,
    level_capacity: usize,
    sample: TopK,
    level_sets: HashMap<u32, Vec<Keyed>>,
    saturated: HashMap<u32, bool>,
    epoch: Option<i64>,
    rng: Rng,
}

impl FaithfulCoordinator {
    /// Creates the coordinator; `seed` must match the optimized variant's
    /// seed for lockstep comparisons.
    pub fn new(cfg: SworConfig, seed: u64) -> Self {
        let r = cfg.r();
        let level_capacity = cfg.level_capacity();
        let s = cfg.sample_size;
        Self {
            cfg,
            r,
            level_capacity,
            sample: TopK::new(s),
            level_sets: HashMap::new(),
            saturated: HashMap::new(),
            epoch: None,
            rng: Rng::new(seed),
        }
    }

    /// Current s-th largest released key (0 before `S` fills).
    pub fn u(&self) -> f64 {
        self.sample.u()
    }

    /// Handles one upstream message, appending broadcasts to `out`.
    pub fn receive(&mut self, msg: UpMsg, out: &mut Vec<DownMsg>) {
        match msg {
            UpMsg::Early { item } => {
                let level = level_of(item.weight, self.r);
                if *self.saturated.get(&level).unwrap_or(&false) {
                    let keyed = assign_key(item, &mut self.rng);
                    self.add_to_sample(keyed, out);
                    return;
                }
                let keyed = assign_key(item, &mut self.rng);
                let set = self.level_sets.entry(level).or_default();
                set.push(keyed);
                if set.len() >= self.level_capacity {
                    let items = self.level_sets.remove(&level).unwrap_or_default();
                    self.saturated.insert(level, true);
                    for k in items {
                        self.add_to_sample(k, out);
                    }
                    out.push(DownMsg::LevelSaturated { level });
                }
            }
            UpMsg::Regular { item, key } => {
                if key > self.sample.u() {
                    self.add_to_sample(Keyed::new(item, key), out);
                }
            }
        }
    }

    /// Mirrors [`super::coordinator::SworCoordinator`]'s per-epoch-crossed
    /// broadcasts: every
    /// epoch `u` passes is announced with its own threshold (see the
    /// optimized coordinator for the accounting rationale).
    fn add_to_sample(&mut self, keyed: Keyed, out: &mut Vec<DownMsg>) {
        self.sample.offer(keyed);
        let new_epoch = epoch_of(self.sample.u(), self.r);
        if new_epoch != self.epoch {
            if let Some(j) = new_epoch {
                let first = match self.epoch {
                    Some(prev) => prev + 1,
                    None => j,
                };
                self.epoch = new_epoch;
                for epoch in first..=j {
                    out.push(DownMsg::UpdateEpoch {
                        threshold: epoch_threshold(epoch, self.r),
                    });
                }
            }
        }
    }

    /// Query: top-`s` of `S ∪ (∪_j D_j)` (Theorem 3).
    pub fn sample(&self) -> Vec<Keyed> {
        top_s_of(
            self.sample.iter().chain(self.level_sets.values().flatten()),
            self.cfg.sample_size,
        )
    }

    /// Total items currently withheld across all level sets (space metric;
    /// this is what Proposition 6 reduces to O(s)).
    pub fn withheld_len(&self) -> usize {
        self.level_sets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::swor::coordinator::SworCoordinator;

    /// Feed both coordinators the same message sequence and assert the
    /// query answers match at every step (keys are drawn from identical RNG
    /// streams, so answers must be exactly equal).
    fn lockstep(msgs: Vec<UpMsg>, cfg: SworConfig, seed: u64) {
        let mut fast = SworCoordinator::new(cfg.clone(), seed);
        let mut slow = FaithfulCoordinator::new(cfg, seed);
        let (mut out_f, mut out_s) = (Vec::new(), Vec::new());
        for (step, m) in msgs.into_iter().enumerate() {
            fast.receive(m, &mut out_f);
            slow.receive(m, &mut out_s);
            let a: Vec<(u64, u64)> = fast
                .sample()
                .iter()
                .map(|k| (k.item.id, k.key.to_bits()))
                .collect();
            let b: Vec<(u64, u64)> = slow
                .sample()
                .iter()
                .map(|k| (k.item.id, k.key.to_bits()))
                .collect();
            assert_eq!(a, b, "query answers diverged at step {step}");
        }
    }

    #[test]
    fn optimized_equals_faithful_on_early_heavy_mix() {
        let mut rng = Rng::new(71);
        let cfg = SworConfig::new(3, 4); // r=2, capacity 24
        let mut msgs = Vec::new();
        for i in 0..400u64 {
            // Mix of magnitudes so multiple levels fill at different rates.
            let w = match i % 5 {
                0 => 1.0,
                1 => 3.0,
                2 => 9.0,
                3 => 130.0,
                _ => 1.5,
            };
            if rng.bernoulli(0.7) {
                msgs.push(UpMsg::Early {
                    item: Item::new(i, w),
                });
            } else {
                msgs.push(UpMsg::Regular {
                    item: Item::new(i, w),
                    key: w / rng.exp(),
                });
            }
        }
        lockstep(msgs, cfg, 1234);
    }

    #[test]
    fn faithful_withholds_full_levels() {
        let cfg = SworConfig::new(2, 2); // capacity 16
        let mut c = FaithfulCoordinator::new(cfg, 1);
        let mut out = Vec::new();
        for i in 0..15u64 {
            c.receive(
                UpMsg::Early {
                    item: Item::new(i, 1.0),
                },
                &mut out,
            );
        }
        assert_eq!(c.withheld_len(), 15);
        c.receive(
            UpMsg::Early {
                item: Item::new(99, 1.0),
            },
            &mut out,
        );
        assert_eq!(c.withheld_len(), 0, "level drained on saturation");
        assert!(out
            .iter()
            .any(|m| matches!(m, DownMsg::LevelSaturated { level: 0 })));
    }
}
