//! Configuration shared by sites and coordinator.

/// Parameters of the weighted SWOR protocol.
///
/// The two required parameters are the sample size `s` and the number of
/// sites `k`; everything else defaults to the paper's constants and exists
/// for the ablation experiments.
///
/// ```
/// use dwrs_core::swor::SworConfig;
///
/// // A size-64 continuous weighted sample over 8 sites.
/// let cfg = SworConfig::new(64, 8);
/// assert_eq!(cfg.sample_size, 64);
/// assert_eq!(cfg.num_sites, 8);
/// // The paper's geometric base r = max(2, k/s) and 4rs level capacity:
/// assert_eq!(cfg.r(), 2.0);
/// assert_eq!(cfg.level_capacity(), 512);
/// ```
#[derive(Clone, Debug)]
pub struct SworConfig {
    /// Desired sample size `s`.
    pub sample_size: usize,
    /// Number of sites `k`.
    pub num_sites: usize,
    /// Level-set capacity multiplier: a level saturates after
    /// `ceil(factor · r · s)` items. The paper uses 4 (Definition of `D_j`);
    /// exposed for the ablation experiments.
    pub level_capacity_factor: f64,
    /// Overrides the epoch/level base `r`; `None` selects the paper's
    /// `r = max(2, k/s)`. Exposed for the `r`-sweep ablation (E16).
    pub r_override: Option<f64>,
    /// Disables level sets entirely (plain precision sampling) — the
    /// ablation of the paper's key idea (E15). The protocol stays correct,
    /// only its message complexity degrades on heavy-tailed streams.
    pub level_sets_enabled: bool,
}

impl SworConfig {
    /// Standard configuration for sample size `s` over `k` sites.
    pub fn new(sample_size: usize, num_sites: usize) -> Self {
        assert!(sample_size >= 1, "sample size must be >= 1");
        assert!(num_sites >= 1, "need at least one site");
        Self {
            sample_size,
            num_sites,
            level_capacity_factor: 4.0,
            r_override: None,
            level_sets_enabled: true,
        }
    }

    /// The geometric base `r = max(2, k/s)` (or the override).
    pub fn r(&self) -> f64 {
        match self.r_override {
            Some(r) => {
                assert!(r > 1.0, "r must exceed 1");
                r
            }
            None => (self.num_sites as f64 / self.sample_size as f64).max(2.0),
        }
    }

    /// Level-set capacity: number of items after which a level saturates
    /// (`4rs` in the paper).
    pub fn level_capacity(&self) -> usize {
        let cap = (self.level_capacity_factor * self.r() * self.sample_size as f64).ceil();
        (cap as usize).max(1)
    }

    /// Builder-style: override `r`.
    pub fn with_r(mut self, r: f64) -> Self {
        self.r_override = Some(r);
        self
    }

    /// Builder-style: set the level capacity factor.
    pub fn with_level_capacity_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.level_capacity_factor = f;
        self
    }

    /// Builder-style: toggle level sets (ablation).
    pub fn with_level_sets(mut self, enabled: bool) -> Self {
        self.level_sets_enabled = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_is_two_when_k_small() {
        let cfg = SworConfig::new(10, 5);
        assert_eq!(cfg.r(), 2.0);
    }

    #[test]
    fn r_is_k_over_s_when_large() {
        let cfg = SworConfig::new(10, 100);
        assert_eq!(cfg.r(), 10.0);
    }

    #[test]
    fn level_capacity_matches_4rs() {
        let cfg = SworConfig::new(10, 5); // r = 2
        assert_eq!(cfg.level_capacity(), 80);
        let cfg = SworConfig::new(4, 32); // r = 8
        assert_eq!(cfg.level_capacity(), 128);
    }

    #[test]
    fn overrides_apply() {
        let cfg = SworConfig::new(8, 8)
            .with_r(3.0)
            .with_level_capacity_factor(2.0);
        assert_eq!(cfg.r(), 3.0);
        assert_eq!(cfg.level_capacity(), 48);
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn zero_sample_size_rejected() {
        let _ = SworConfig::new(0, 4);
    }
}
