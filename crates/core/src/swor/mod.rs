//! Distributed weighted sampling **without replacement** — the paper's main
//! contribution (Section 3, Algorithms 1–3, Theorem 3).
//!
//! Protocol overview. Sites tag items with precision-sampling keys
//! `v = w/t`, `t ~ Exp(1)`, and the coordinator continuously holds the
//! top-`s` keys, which form a weighted SWOR (Proposition 1). Two mechanisms
//! keep the message count at the optimal `O(k·log(W/s)/log(1+k/s))`:
//!
//! * **epochs** — the coordinator broadcasts the threshold `r^j` whenever
//!   `u`, the s-th largest key it holds, enters `[r^j, r^(j+1))`, with
//!   `r = max(2, k/s)`. Sites drop keys at or below the current threshold.
//! * **level sets** — an item whose weight lies in `[r^j, r^(j+1))` belongs
//!   to level `j`; the first `4rs` items of each level are forwarded
//!   unconditionally ("early" messages) and *withheld* from the internal
//!   sampler until the level *saturates*. Lemma 1 then guarantees every
//!   released item is at most a `1/(4s)` fraction of released weight, which
//!   is what makes the epoch analysis (and the s-th key concentration used
//!   by the L1 tracker) work.
//!
//! Withheld items still participate in every query: the answer is the
//! top-`s` of `S ∪ (∪_j D_j)` (Theorem 3's proof), so the coordinator's
//! output is a valid weighted SWOR at *every* time step, with no notion of
//! failure.
//!
//! Two coordinator implementations are provided with identical query
//! behaviour (property-tested): [`SworCoordinator`] uses the O(s)-space
//! optimization of Proposition 6 (retain only the global top-`s` among
//! withheld items); [`FaithfulCoordinator`] stores level sets verbatim as in
//! Algorithm 2.
//!
//! **Weight convention.** The paper assumes `w ≥ 1` w.l.o.g. (Section 2.1;
//! weights can be pre-scaled). The implementation accepts any `w > 0` and
//! the sample remains a correct weighted SWOR, but Lemma 1's `1/(4s)`
//! released-fraction bound — and therefore the message/concentration
//! analysis — is only guaranteed under `w ≥ 1`, because level 0 spans the
//! whole interval `[0, r)`.
//!
//! # Example (driving the protocol by hand)
//!
//! ```
//! use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
//! use dwrs_core::Item;
//!
//! let cfg = SworConfig::new(4, 2); // s = 4 over k = 2 sites
//! let mut sites = [SworSite::new(&cfg, 1), SworSite::new(&cfg, 2)];
//! let mut coordinator = SworCoordinator::new(cfg, 3);
//!
//! let mut broadcasts = Vec::new();
//! for t in 0..1000u64 {
//!     let site = (t % 2) as usize;
//!     if let Some(up) = sites[site].observe(Item::new(t, 1.0 + (t % 9) as f64)) {
//!         coordinator.receive(up, &mut broadcasts);
//!         for msg in broadcasts.drain(..) {
//!             for s in &mut sites {
//!                 s.receive(&msg); // broadcast costs k messages
//!             }
//!         }
//!     }
//!     // A valid weighted SWOR is available at *every* step:
//!     assert_eq!(coordinator.sample().len(), ((t + 1) as usize).min(4));
//! }
//! ```

pub mod config;
pub mod coordinator;
pub mod faithful;
pub mod levels;
pub mod messages;
pub mod naive;
pub mod site;
pub mod wire;

pub use config::SworConfig;
pub use coordinator::{CoordStats, SworCoordinator};
pub use faithful::FaithfulCoordinator;
pub use levels::{epoch_of, epoch_threshold, level_of, LevelBits};
pub use messages::{DownMsg, SyncMsg, UpMsg};
pub use naive::{NaiveCoordinator, NaiveSite};
pub use site::{SiteStats, SworSite};
