//! Site-side protocol — paper Algorithm 1.
//!
//! Per arriving item `(e, w)`:
//!
//! * if the item's level is not known to be saturated, forward it unfiltered
//!   as an *early* message (it will be withheld by the coordinator);
//! * otherwise draw `t ~ Exp(1)`, form the key `v = w/t` and forward
//!   `(e, w, v)` as a *regular* message iff `v` exceeds the current epoch
//!   threshold `u_i`.
//!
//! The site keeps O(1) words of state: the threshold and the saturation
//! bitset (Proposition 6), and spends O(1) time per item.

use crate::item::Item;
use crate::keys::key_for;
use crate::rng::Rng;

use super::config::SworConfig;
use super::levels::{level_of, LevelBits};
use super::messages::{DownMsg, UpMsg};

/// Counters a site accumulates (not part of the protocol; zero messages).
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteStats {
    /// Items observed.
    pub observed: u64,
    /// Early messages sent.
    pub early_sent: u64,
    /// Regular messages sent.
    pub regular_sent: u64,
    /// Regular items whose key fell at or below the threshold (no message).
    pub filtered: u64,
}

/// The per-site state of the weighted SWOR protocol (Algorithm 1).
#[derive(Debug)]
pub struct SworSite {
    r: f64,
    level_sets_enabled: bool,
    /// Current epoch threshold `u_i` (0 until the first epoch broadcast).
    threshold: f64,
    saturated: LevelBits,
    rng: Rng,
    /// Local counters.
    pub stats: SiteStats,
}

impl SworSite {
    /// Creates a site from the shared configuration and a per-site seed.
    pub fn new(cfg: &SworConfig, seed: u64) -> Self {
        Self {
            r: cfg.r(),
            level_sets_enabled: cfg.level_sets_enabled,
            threshold: 0.0,
            saturated: LevelBits::new(),
            rng: Rng::new(seed),
            stats: SiteStats::default(),
        }
    }

    /// Current epoch threshold `u_i`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Processes one stream item; returns at most one upstream message.
    pub fn observe(&mut self, item: Item) -> Option<UpMsg> {
        self.stats.observed += 1;
        let level = level_of(item.weight, self.r);
        if self.level_sets_enabled && !self.saturated.get(level) {
            self.stats.early_sent += 1;
            return Some(UpMsg::Early { item });
        }
        let key = key_for(item.weight, &mut self.rng);
        if key > self.threshold {
            self.stats.regular_sent += 1;
            Some(UpMsg::Regular { item, key })
        } else {
            self.stats.filtered += 1;
            None
        }
    }

    /// Applies a coordinator broadcast.
    pub fn receive(&mut self, msg: &DownMsg) {
        match *msg {
            DownMsg::LevelSaturated { level } => self.saturated.set(level),
            DownMsg::UpdateEpoch { threshold } => {
                // Epochs only move forward; ignore stale reordered values
                // defensively (FIFO delivery makes this a no-op in practice).
                if threshold > self.threshold {
                    self.threshold = threshold;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SworConfig {
        SworConfig::new(4, 8) // r = 2
    }

    #[test]
    fn first_item_of_level_goes_early() {
        let mut site = SworSite::new(&cfg(), 1);
        let out = site.observe(Item::new(1, 5.0));
        assert!(matches!(out, Some(UpMsg::Early { .. })));
        assert_eq!(site.stats.early_sent, 1);
    }

    #[test]
    fn saturated_level_goes_regular() {
        let mut site = SworSite::new(&cfg(), 1);
        // weight 5.0, r=2 -> level 2
        site.receive(&DownMsg::LevelSaturated { level: 2 });
        let out = site.observe(Item::new(1, 5.0));
        match out {
            Some(UpMsg::Regular { item, key }) => {
                assert_eq!(item.id, 1);
                assert!(key > 0.0);
            }
            other => panic!("expected regular, got {other:?}"),
        }
    }

    #[test]
    fn threshold_filters_small_keys() {
        let mut site = SworSite::new(&cfg(), 2);
        site.receive(&DownMsg::LevelSaturated { level: 0 });
        site.receive(&DownMsg::UpdateEpoch { threshold: 1e12 });
        let mut sent = 0;
        for i in 0..5000u64 {
            if site.observe(Item::new(i, 1.0)).is_some() {
                sent += 1;
            }
        }
        // P(key > 1e12) = 1 - e^{-1e-12} ~ 1e-12: essentially everything is
        // filtered.
        assert_eq!(sent, 0, "sent {sent} messages over a huge threshold");
        assert_eq!(site.stats.filtered, 5000);
    }

    #[test]
    fn threshold_never_regresses() {
        let mut site = SworSite::new(&cfg(), 3);
        site.receive(&DownMsg::UpdateEpoch { threshold: 8.0 });
        site.receive(&DownMsg::UpdateEpoch { threshold: 2.0 });
        assert_eq!(site.threshold(), 8.0);
    }

    #[test]
    fn level_sets_disabled_sends_regular_immediately() {
        let mut cfg = cfg();
        cfg.level_sets_enabled = false;
        let mut site = SworSite::new(&cfg, 4);
        let out = site.observe(Item::new(9, 1e9));
        assert!(matches!(out, Some(UpMsg::Regular { .. })));
    }

    #[test]
    fn regular_send_rate_matches_key_tail() {
        // With threshold θ and unit weights, P(send) = 1 - e^{-1/θ}.
        let mut site = SworSite::new(&cfg(), 5);
        site.receive(&DownMsg::LevelSaturated { level: 0 });
        let theta = 4.0;
        site.receive(&DownMsg::UpdateEpoch { threshold: theta });
        let n = 200_000;
        let mut sent = 0u64;
        for i in 0..n {
            if site.observe(Item::new(i, 1.0)).is_some() {
                sent += 1;
            }
        }
        let p = crate::keys::p_key_above(1.0, theta);
        let emp = sent as f64 / n as f64;
        let se = (p * (1.0 - p) / n as f64).sqrt();
        assert!((emp - p).abs() < 6.0 * se, "emp {emp} vs p {p}");
    }
}
