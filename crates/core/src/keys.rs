//! Precision-sampling keys (paper Section 3, Proposition 1).
//!
//! Every item `(e, w)` is assigned a key `v = w/t` with `t ~ Exp(1)` drawn
//! independently. The items holding the `s` largest keys form a weighted
//! sample **without replacement** of the stream — this is the Nagaraja /
//! Andoni–Krauthgamer–Onak precision-sampling identity the whole paper rests
//! on.
//!
//! Useful facts implemented here:
//!
//! * `1/v` is exponential with rate `w`, so
//!   `P(v > θ) = P(t < w/θ) = 1 - e^{-w/θ}`;
//! * conditioned on `v > θ`, `t` is a truncated exponential on `(0, w/θ)`,
//!   which we can sample by inversion — this powers the *batched*
//!   duplication used by the L1 tracker without changing any distribution.

use crate::item::{Item, Keyed};
use crate::rng::Rng;

/// Draws the key `v = w/t`, `t ~ Exp(1)`, for weight `weight`.
#[inline]
pub fn key_for(weight: f64, rng: &mut Rng) -> f64 {
    debug_assert!(weight > 0.0);
    let t = rng.exp();
    // t is strictly positive (open01 underneath), so the key is finite.
    weight / t
}

/// Attaches a fresh key to an item.
#[inline]
pub fn assign_key(item: Item, rng: &mut Rng) -> Keyed {
    Keyed::new(item, key_for(item.weight, rng))
}

/// Probability that a fresh key for `weight` exceeds `threshold`:
/// `P(w/t > θ) = 1 - e^{-w/θ}`. For `threshold <= 0` this is 1.
#[inline]
pub fn p_key_above(weight: f64, threshold: f64) -> f64 {
    debug_assert!(weight > 0.0);
    if threshold <= 0.0 {
        return 1.0;
    }
    -(-weight / threshold).exp_m1()
}

/// Draws a key for `weight` **conditioned on exceeding `threshold`**.
///
/// Inversion on the truncated exponential: with `p = 1 - e^{-w/θ}` and
/// `U ~ Uniform(0,1)`, `t = -ln(1 - U·p)` is Exp(1) conditioned on
/// `t < w/θ`, hence `w/t > θ`. Falls back to an unconditioned draw when
/// `threshold <= 0`.
pub fn key_above(weight: f64, threshold: f64, rng: &mut Rng) -> f64 {
    debug_assert!(weight > 0.0);
    if threshold <= 0.0 {
        return key_for(weight, rng);
    }
    let p = p_key_above(weight, threshold);
    let u = rng.open01();
    // 1 - U*p in (1-p, 1); ln is negative, t in (0, w/θ).
    let t = -(-u * p).ln_1p();
    let t = t.max(f64::MIN_POSITIVE);
    let v = weight / t;
    // Numeric guard: inversion can land exactly on the boundary after
    // rounding; nudge into the valid region so callers' invariants hold.
    if v > threshold {
        v
    } else {
        threshold * (1.0 + 1e-15) + f64::MIN_POSITIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_positive_finite() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = key_for(3.5, &mut rng);
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn p_key_above_matches_empirical() {
        let mut rng = Rng::new(2);
        let (w, theta) = (2.0, 5.0);
        let p = p_key_above(w, theta);
        let n = 400_000;
        let hits = (0..n).filter(|_| key_for(w, &mut rng) > theta).count() as f64;
        let emp = hits / n as f64;
        let se = (p * (1.0 - p) / n as f64).sqrt();
        assert!((emp - p).abs() < 6.0 * se, "emp {emp} vs p {p}");
    }

    #[test]
    fn p_key_above_zero_threshold_is_one() {
        assert_eq!(p_key_above(1.0, 0.0), 1.0);
        assert_eq!(p_key_above(1.0, -3.0), 1.0);
    }

    #[test]
    fn conditional_key_exceeds_threshold() {
        let mut rng = Rng::new(3);
        for _ in 0..50_000 {
            let v = key_above(1.5, 10.0, &mut rng);
            assert!(v > 10.0, "conditional key {v} <= threshold");
        }
    }

    #[test]
    fn conditional_key_matches_rejection_sampling() {
        // KS-style comparison between inversion and naive rejection on the
        // conditional distribution of the key above a threshold.
        let (w, theta) = (2.0, 3.0);
        let n = 40_000usize;
        let mut rng = Rng::new(4);
        let mut inv: Vec<f64> = (0..n).map(|_| key_above(w, theta, &mut rng)).collect();
        let mut rej = Vec::with_capacity(n);
        while rej.len() < n {
            let v = key_for(w, &mut rng);
            if v > theta {
                rej.push(v);
            }
        }
        inv.sort_by(f64::total_cmp);
        rej.sort_by(f64::total_cmp);
        // Two-sample KS statistic.
        let (mut i, mut j) = (0usize, 0usize);
        let mut d: f64 = 0.0;
        while i < n && j < n {
            if inv[i] <= rej[j] {
                i += 1;
            } else {
                j += 1;
            }
            d = d.max(((i as f64 - j as f64) / n as f64).abs());
        }
        // Critical value at alpha=0.001 for two-sample KS: ~1.95*sqrt(2/n).
        let crit = 1.95 * (2.0 / n as f64).sqrt();
        assert!(d < crit, "KS statistic {d} >= {crit}");
    }

    #[test]
    fn mean_of_inverse_key_is_one_over_weight() {
        // 1/v = t/w is Exp(rate w), mean 1/w.
        let mut rng = Rng::new(5);
        let w = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| 1.0 / key_for(w, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / w).abs() < 0.003, "mean {mean}");
    }
}
