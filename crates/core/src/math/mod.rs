//! Numeric substrate: special functions and exact discrete samplers.
//!
//! Everything here is implemented from first principles (Lanczos, Lentz,
//! Hörmann) so the distributional guarantees of the sampling algorithms rest
//! on auditable code rather than opaque dependencies.

pub mod binomial;
pub mod special;

pub use binomial::binomial;
pub use special::{gamma_p, gamma_q, ln_gamma};

/// Number of Bernoulli(`p`) trials up to and including the first success
/// (support `1, 2, ...`); returns `u64::MAX` when `p <= 0` (no success ever).
///
/// Used to skip over filtered duplicates in the batched L1 tracker: the
/// gap between consecutive forwarded keys is exactly geometric.
pub fn geometric_trials(rng: &mut crate::rng::Rng, p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let g = (rng.open01().ln() / (-p).ln_1p()).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64 + 1
    }
}

/// Natural log of `n choose k` via `ln_gamma`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `log_b(x)` computed with guard-rails: returns the largest integer `j`
/// with `b^j <= x` (for `b > 1`, `x > 0`), correcting the floating-point
/// `ln(x)/ln(b)` estimate by direct power comparison.
#[inline]
pub fn floor_log_base(b: f64, x: f64) -> i64 {
    debug_assert!(b > 1.0 && x > 0.0);
    let mut j = (x.ln() / b.ln()).floor() as i64;
    // Repair off-by-one from rounding: move until b^j <= x < b^(j+1).
    while powi(b, j) > x {
        j -= 1;
    }
    while powi(b, j + 1) <= x {
        j += 1;
    }
    j
}

/// `b^j` for possibly-negative integer exponents without going through
/// `f64::powf` (keeps the epoch arithmetic exactly reproducible).
#[inline]
pub fn powi(b: f64, j: i64) -> f64 {
    if j >= 0 {
        b.powi(j.min(i32::MAX as i64) as i32)
    } else {
        1.0 / b.powi((-j).min(i32::MAX as i64) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_trials_mean_is_one_over_p() {
        let mut rng = crate::rng::Rng::new(3);
        for &p in &[0.5f64, 0.1, 0.01] {
            let n = 100_000;
            let mean: f64 = (0..n)
                .map(|_| geometric_trials(&mut rng, p) as f64)
                .sum::<f64>()
                / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean - expect).abs() < 0.05 * expect,
                "p={p}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn geometric_trials_edge_cases() {
        let mut rng = crate::rng::Rng::new(4);
        assert_eq!(geometric_trials(&mut rng, 1.0), 1);
        assert_eq!(geometric_trials(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric_trials(&mut rng, -0.5), u64::MAX);
    }

    #[test]
    fn ln_choose_small_values() {
        // C(5,2) = 10
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        // C(10,0) = 1
        assert!(ln_choose(10, 0).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn floor_log_base_exact_powers() {
        for j in 0..40i64 {
            let x = 2f64.powi(j as i32);
            assert_eq!(floor_log_base(2.0, x), j, "x = 2^{j}");
            // Just below the power belongs to the previous bucket.
            if j > 0 {
                assert_eq!(floor_log_base(2.0, x * (1.0 - 1e-12)), j - 1);
            }
        }
    }

    #[test]
    fn floor_log_base_fractional_base() {
        let b = 3.7;
        for j in 0..20i64 {
            let x = powi(b, j) * 1.0001;
            assert_eq!(floor_log_base(b, x), j);
        }
    }

    #[test]
    fn powi_negative() {
        assert!((powi(2.0, -3) - 0.125).abs() < 1e-15);
        assert!((powi(10.0, 0) - 1.0).abs() < 1e-15);
    }
}
