//! Special functions: log-gamma and the regularized incomplete gamma
//! functions, used by the exact binomial sampler and by the statistics crate
//! (chi-square p-values).
//!
//! Implementations follow the classic Lanczos approximation and the
//! series/continued-fraction split of Numerical Recipes; accuracies are
//! verified in tests against independently known values.

/// Natural logarithm of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients). Absolute error below ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Godfrey / Press et al.).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; monotone from 0 (at x=0) to 1 (x→∞). This is
/// the CDF of a Gamma(a, 1) random variable; `P(k/2, x/2)` is the chi-square
/// CDF with `k` degrees of freedom.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a>0, x>=0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * sum).clamp(0.0, 1.0)
}

/// Continued-fraction (modified Lentz) evaluation of `Q(a, x)`, for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * h).clamp(0.0, 1.0)
}

/// Error function via its relation to the incomplete gamma function:
/// `erf(x) = P(1/2, x²)` for `x ≥ 0`, odd elsewhere.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers_match_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // Γ(n) = (n-1)!
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n = {n}");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (30.0, 25.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a}, x={x}");
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x = {x}"
            );
        }
        // Chi-square with 2 dof at its median ~1.386...: P(1, 0.6931) = 0.5.
        assert!((gamma_p(1.0, std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.0, 0.5, 1.0, 1.96, 3.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
    }
}
