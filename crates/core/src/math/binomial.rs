//! Exact Binomial(n, p) sampling.
//!
//! Needed by the weighted-SWR duplication reduction (Section 2.2 of the
//! paper: decide how many of the `s` independent samplers receive a
//! duplicated item in one shot) and by the batched L1-tracking duplication.
//! Three exact regimes:
//!
//! * tiny `n`: direct Bernoulli counting;
//! * small mean (`n·p ≤ 10`): geometric-skip (BG) inversion;
//! * otherwise: Hörmann's BTRS transformed-rejection sampler, exact and
//!   O(1) expected time.

use crate::math::special::ln_gamma;
use crate::rng::Rng;

/// Draws an exact Binomial(n, p) variate.
pub fn binomial(rng: &mut Rng, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p) || p.is_nan(),
        "p must be in [0,1], got {p}"
    );
    assert!(!p.is_nan(), "p must not be NaN");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial_le_half(rng, n, 1.0 - p);
    }
    binomial_le_half(rng, n, p)
}

fn binomial_le_half(rng: &mut Rng, n: u64, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 0.5);
    let mean = n as f64 * p;
    if n <= 64 {
        direct(rng, n, p)
    } else if mean <= 10.0 {
        geometric_skip(rng, n, p)
    } else {
        btrs(rng, n, p)
    }
}

/// n independent Bernoulli trials.
fn direct(rng: &mut Rng, n: u64, p: f64) -> u64 {
    let mut c = 0;
    for _ in 0..n {
        if rng.f64() < p {
            c += 1;
        }
    }
    c
}

/// BG algorithm: skip over failures with geometric jumps. Exact; expected
/// time O(n·p + 1).
fn geometric_skip(rng: &mut Rng, n: u64, p: f64) -> u64 {
    let lq = (-p).ln_1p(); // ln(1 - p), stable for small p
    debug_assert!(lq < 0.0);
    let mut count = 0u64;
    let mut trials = 0u64;
    loop {
        // Geometric(p) number of trials to next success (support 1, 2, ...).
        let g = (rng.open01().ln() / lq).floor() as u64 + 1;
        trials = trials.saturating_add(g);
        if trials > n {
            return count;
        }
        count += 1;
    }
}

/// BTRS: binomial transformed rejection with squeeze (Hörmann 1993). Exact
/// for `n·p ≥ 10`, `p ≤ 0.5`.
fn btrs(rng: &mut Rng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let spq = (nf * p * q).sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let us_vr = 0.86 * v_r;
    let alpha = (2.83 + 5.1 / b) * spq;
    let lpq = (p / q).ln();
    let m = ((nf + 1.0) * p).floor();
    let h = ln_gamma(m + 1.0) + ln_gamma(nf - m + 1.0);
    loop {
        let mut v = rng.f64();
        let u: f64;
        if v <= us_vr {
            // Inside the "safe" region: accept immediately.
            u = v / v_r - 0.43;
            let k = ((2.0 * a / (0.5 - u.abs()) + b) * u + c).floor();
            if k >= 0.0 && k <= nf {
                return k as u64;
            }
            continue;
        }
        if v >= v_r {
            u = rng.f64() - 0.5;
        } else {
            let w = v / v_r - 0.93;
            u = if w < 0.0 { -0.5 - w } else { 0.5 - w };
            v = rng.f64() * v_r;
        }
        let us = 0.5 - u.abs();
        if us < 0.013 && v > us {
            continue;
        }
        let k = ((2.0 * a / us + b) * u + c).floor();
        if k < 0.0 || k > nf {
            continue;
        }
        let accept_ln = (v * alpha / (a / (us * us) + b)).ln();
        let target = h - ln_gamma(k + 1.0) - ln_gamma(nf - k + 1.0) + (k - m) * lpq;
        if accept_ln <= target {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moments(n: u64, p: f64, trials: u32, seed: u64) {
        let mut rng = Rng::new(seed);
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..trials {
            let x = binomial(&mut rng, n, p) as f64;
            assert!(x <= n as f64);
            sum += x;
            sumsq += x * x;
        }
        let t = trials as f64;
        let mean = sum / t;
        let var = sumsq / t - mean * mean;
        let expect_mean = n as f64 * p;
        let expect_var = n as f64 * p * (1.0 - p);
        // Standard error of the sample mean is sqrt(var/trials); allow 6σ.
        let se_mean = (expect_var / t).sqrt().max(1e-9);
        assert!(
            (mean - expect_mean).abs() < 6.0 * se_mean + 1e-9,
            "n={n} p={p}: mean {mean} vs {expect_mean}"
        );
        assert!(
            (var - expect_var).abs() < 0.05 * expect_var + 0.05,
            "n={n} p={p}: var {var} vs {expect_var}"
        );
    }

    #[test]
    fn edge_cases() {
        let mut rng = Rng::new(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn direct_regime_moments() {
        check_moments(20, 0.3, 60_000, 2);
        check_moments(50, 0.02, 60_000, 3);
    }

    #[test]
    fn geometric_skip_regime_moments() {
        check_moments(10_000, 0.0005, 60_000, 4);
        check_moments(500, 0.01, 60_000, 5);
    }

    #[test]
    fn btrs_regime_moments() {
        check_moments(1_000, 0.2, 60_000, 6);
        check_moments(100_000, 0.47, 30_000, 7);
    }

    #[test]
    fn symmetry_regime_moments() {
        check_moments(1_000, 0.8, 60_000, 8);
        check_moments(40, 0.95, 60_000, 9);
    }

    #[test]
    fn btrs_pmf_chi_square_like_check() {
        // Compare empirical frequencies of Binomial(200, 0.25) on a coarse
        // grid against exact pmf; a gross distribution bug would fail this.
        let n = 200u64;
        let p = 0.25f64;
        let trials = 200_000u32;
        let mut rng = Rng::new(10);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..trials {
            *counts.entry(binomial(&mut rng, n, p)).or_insert(0u64) += 1;
        }
        // exact pmf at mode +- 3
        let mode = ((n + 1) as f64 * p).floor() as u64;
        for k in mode.saturating_sub(3)..=mode + 3 {
            let ln_pmf =
                crate::math::ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
            let expect = ln_pmf.exp() * trials as f64;
            let got = *counts.get(&k).unwrap_or(&0) as f64;
            assert!(
                (got - expect).abs() < 6.0 * expect.sqrt() + 6.0,
                "k={k}: got {got}, expect {expect}"
            );
        }
    }
}
