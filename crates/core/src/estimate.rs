//! Subset-sum estimation from a keyed weighted sample.
//!
//! The paper's L1 tracker exploits the fact that the precision-sampling key
//! order statistics carry magnitude information (Section 1.2, Section 5);
//! the same structure — bottom-k sketches with exponential ranks
//! (Cohen–Kaplan), called *priority sampling* in the paper's reference \[17\]
//! (Duffield–Lund–Thorup) — yields **unbiased estimates of arbitrary subset
//! sums** from the very sample the distributed protocol maintains.
//!
//! Rank-conditioning estimator: fix the sample's smallest key `τ` (the s-th
//! largest overall). Conditioned on `τ`, each of the other `s-1` retained
//! items was included independently with probability
//! `P(w/t > τ) = 1 - e^{-w/τ}`, so Horvitz–Thompson weights
//! `ŵ = w / (1 - e^{-w/τ})` give an unbiased estimate of `Σ_{i ∈ S} w_i`
//! for any fixed item predicate `S`.
//!
//! # Example
//!
//! ```
//! use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
//! use dwrs_core::estimate::{subset_sum, total_weight_estimate};
//! use dwrs_core::Item;
//!
//! let mut sampler = ExpClockSwor::new(64, 7);
//! for i in 0..10_000u64 {
//!     sampler.observe(Item::new(i, 1.0 + (i % 5) as f64));
//! }
//! let sample = sampler.sample_keyed();
//! let w_hat = total_weight_estimate(&sample, false);
//! assert!((w_hat - 30_000.0).abs() / 30_000.0 < 0.5);
//! // Any fixed subset works, e.g. the even-id items:
//! let even = subset_sum(&sample, false, |it| it.id % 2 == 0);
//! assert!(even > 0.0);
//! ```

use crate::item::{Item, Keyed};
use crate::keys::p_key_above;

/// Unbiased subset-sum estimate from a weighted SWOR with keys.
///
/// `sample` must be the **top-`s` keyed items sorted by decreasing key**
/// (exactly what [`crate::swor::SworCoordinator::sample`] returns), and
/// `saw_fewer_than_s` must be true iff the stream so far contained fewer
/// than `s` items (in which case the sample is the whole stream and the sum
/// is exact).
///
/// Estimates `Σ w_i` over all stream items satisfying `pred`. For
/// `pred = |_| true` this estimates the total weight `W`.
pub fn subset_sum<F>(sample: &[Keyed], saw_fewer_than_s: bool, pred: F) -> f64
where
    F: Fn(&Item) -> bool,
{
    if saw_fewer_than_s || sample.len() <= 1 {
        // The sample is the entire stream: sum exactly.
        return sample
            .iter()
            .filter(|k| pred(&k.item))
            .map(|k| k.item.weight)
            .sum();
    }
    debug_assert!(
        sample.windows(2).all(|w| w[0].key >= w[1].key),
        "sample must be sorted by decreasing key"
    );
    let tau = sample[sample.len() - 1].key;
    sample[..sample.len() - 1]
        .iter()
        .filter(|k| pred(&k.item))
        .map(|k| {
            let w = k.item.weight;
            w / p_key_above(w, tau)
        })
        .sum()
}

/// Estimate of the total stream weight `W` (the `pred = true` special
/// case) — the statistic whose concentration powers Theorem 6.
pub fn total_weight_estimate(sample: &[Keyed], saw_fewer_than_s: bool) -> f64 {
    subset_sum(sample, saw_fewer_than_s, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{ExpClockSwor, StreamSampler};
    use crate::rng::Rng;

    /// Build a keyed top-s sample of the given weights via the reference
    /// centralized sampler (same key law as the distributed protocol).
    fn sample_of(weights: &[f64], s: usize, seed: u64) -> Vec<Keyed> {
        let mut sampler = ExpClockSwor::new(s, seed);
        for (i, &w) in weights.iter().enumerate() {
            sampler.observe(Item::new(i as u64, w));
        }
        sampler.sample_keyed()
    }

    #[test]
    fn exact_when_stream_smaller_than_s() {
        let weights = [2.0, 3.0, 5.0];
        let sample = sample_of(&weights, 10, 1);
        let est = total_weight_estimate(&sample, true);
        assert!((est - 10.0).abs() < 1e-9);
        let est_even = subset_sum(&sample, true, |it| it.id % 2 == 0);
        assert!((est_even - 7.0).abs() < 1e-9);
    }

    #[test]
    fn total_weight_estimator_unbiased() {
        let mut rng = Rng::new(2);
        let weights: Vec<f64> = (0..200).map(|_| 1.0 + rng.f64() * 9.0).collect();
        let w: f64 = weights.iter().sum();
        let s = 30;
        let trials = 4_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for t in 0..trials {
            let est = total_weight_estimate(&sample_of(&weights, s, 100 + t), false);
            sum += est;
            sumsq += est * est;
        }
        let mean = sum / trials as f64;
        let var = sumsq / trials as f64 - mean * mean;
        let se = (var / trials as f64).sqrt();
        assert!(
            (mean - w).abs() < 5.0 * se + 1e-9,
            "mean {mean} vs true {w} (se {se})"
        );
    }

    #[test]
    fn subset_sum_unbiased_for_sparse_subset() {
        // Estimate the weight of items with id divisible by 7 (~14% of
        // items) — a subset the sample only partially intersects.
        let mut rng = Rng::new(3);
        let weights: Vec<f64> = (0..150).map(|_| 1.0 + rng.exp() * 3.0).collect();
        let subset_true: f64 = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 == 0)
            .map(|(_, &w)| w)
            .sum();
        let s = 25;
        let trials = 6_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for t in 0..trials {
            let est = subset_sum(&sample_of(&weights, s, 900_000 + t), false, |it| {
                it.id % 7 == 0
            });
            sum += est;
            sumsq += est * est;
        }
        let mean = sum / trials as f64;
        let var = sumsq / trials as f64 - mean * mean;
        let se = (var / trials as f64).sqrt();
        assert!(
            (mean - subset_true).abs() < 5.0 * se + 1e-9,
            "mean {mean} vs true {subset_true} (se {se})"
        );
    }

    #[test]
    fn estimator_concentrates_with_s() {
        // Relative error of the W estimate shrinks roughly like 1/sqrt(s).
        let mut rng = Rng::new(4);
        let weights: Vec<f64> = (0..2_000).map(|_| 1.0 + rng.f64()).collect();
        let w: f64 = weights.iter().sum();
        let rel_err = |s: usize, seed: u64| {
            let trials = 300;
            let mut acc = 0.0;
            for t in 0..trials {
                let est = total_weight_estimate(&sample_of(&weights, s, seed + t), false);
                acc += ((est - w) / w).abs();
            }
            acc / trials as f64
        };
        let coarse = rel_err(10, 10_000);
        let fine = rel_err(160, 20_000);
        assert!(
            fine < coarse / 2.0,
            "error did not shrink: s=10 -> {coarse}, s=160 -> {fine}"
        );
    }

    #[test]
    fn works_on_distributed_sample() {
        // End-to-end: the estimator applies directly to the distributed
        // coordinator's query answer.
        use crate::swor::{SworConfig, SworCoordinator, UpMsg};
        let weights: Vec<f64> = (0..300).map(|i| 1.0 + (i % 13) as f64).collect();
        let w: f64 = weights.iter().sum();
        let trials = 2_000u64;
        let s = 20;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut coord = SworCoordinator::new(SworConfig::new(s, 4), 42 + t);
            let mut site_rng = Rng::new(7_000 + t);
            let mut out = Vec::new();
            for (i, &wt) in weights.iter().enumerate() {
                // Feed everything as unfiltered regular messages — a valid
                // (if chatty) execution of the protocol.
                let key = wt / site_rng.exp();
                coord.receive(
                    UpMsg::Regular {
                        item: Item::new(i as u64, wt),
                        key,
                    },
                    &mut out,
                );
            }
            sum += total_weight_estimate(&coord.sample(), false);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - w).abs() / w < 0.05,
            "distributed-sample estimate {mean} vs {w}"
        );
    }
}
