//! Stream item types.
//!
//! A stream item is a pair `(e, w)` of an identifier and a positive weight
//! (paper, Section 1). Identifiers may repeat across and within streams; each
//! occurrence is sampled as if it were a distinct item, so the sampling
//! machinery additionally tags occurrences with arrival sequence numbers
//! where a total order is needed.

/// Identifier of a stream item. The paper assumes identifiers fit in O(1)
/// machine words; we use a `u64`. Applications with richer keys intern them.
pub type ItemId = u64;

/// A weighted stream item `(e, w)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Item {
    /// Item identifier `e`.
    pub id: ItemId,
    /// Positive weight `w`. The paper assumes `w >= 1` w.l.o.g. (weights can
    /// be pre-scaled); the algorithms here only require `w > 0` and finite.
    pub weight: f64,
}

impl Item {
    /// Creates an item, validating the weight.
    ///
    /// # Panics
    /// Panics if `weight` is not strictly positive and finite.
    pub fn new(id: ItemId, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "item weight must be positive and finite, got {weight}"
        );
        Self { id, weight }
    }

    /// Creates a unit-weight item (the unweighted special case).
    pub fn unit(id: ItemId) -> Self {
        Self { id, weight: 1.0 }
    }
}

/// An item together with its precision-sampling key `v = w/t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Keyed {
    /// The underlying item.
    pub item: Item,
    /// The key `v = w/t`, `t ~ Exp(1)`. Larger keys win.
    pub key: f64,
}

impl Keyed {
    /// Bundles an item with a key.
    pub fn new(item: Item, key: f64) -> Self {
        Self { item, key }
    }
}

/// Sums weights of a slice of items (used pervasively by tests/oracles).
pub fn total_weight(items: &[Item]) -> f64 {
    items.iter().map(|it| it.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_construction() {
        let it = Item::new(7, 2.5);
        assert_eq!(it.id, 7);
        assert_eq!(it.weight, 2.5);
        assert_eq!(Item::unit(3).weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Item::new(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_weight_rejected() {
        let _ = Item::new(1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn inf_weight_rejected() {
        let _ = Item::new(1, f64::INFINITY);
    }

    #[test]
    fn total_weight_sums() {
        let items = vec![Item::new(0, 1.0), Item::new(1, 2.0), Item::new(2, 3.5)];
        assert!((total_weight(&items) - 6.5).abs() < 1e-12);
    }
}
