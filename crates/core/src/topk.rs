//! Bounded "top-s by key" sample container — the coordinator's set `S`.
//!
//! A min-heap of capacity `s` retaining the items with the largest keys.
//! Exposes the paper's threshold `u`: the smallest key in `S` once `S` is
//! full, and `0` before that (Algorithm 2 initializes `u ← 0`).
//!
//! Ties are broken by an arrival sequence number so that behaviour is a
//! deterministic function of the key sequence (keys are continuous so ties
//! have probability 0, but determinism matters for reproducible tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::item::Keyed;

/// Entry in the heap: key plus arrival sequence for total ordering.
#[derive(Clone, Copy, Debug)]
struct Entry {
    key: f64,
    seq: u64,
    keyed: Keyed,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: primary by key, secondary by seq (later arrival wins
        // ties, an arbitrary but fixed convention).
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Result of offering an item to the sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Offer {
    /// Inserted without eviction (sample was not yet full).
    Inserted,
    /// Inserted, evicting the previous minimum (returned).
    Replaced(Keyed),
    /// Rejected: key did not beat the current minimum of a full sample.
    Rejected,
}

/// Bounded top-`s` sample keyed by `Keyed::key`.
#[derive(Clone, Debug)]
pub struct TopK {
    cap: usize,
    // Min-heap via Reverse ordering on Entry.
    heap: BinaryHeap<std::cmp::Reverse<Entry>>,
    seq: u64,
}

impl TopK {
    /// Creates an empty sample with capacity `cap` (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "sample capacity must be at least 1");
        Self {
            cap,
            heap: BinaryHeap::with_capacity(cap + 1),
            seq: 0,
        }
    }

    /// Capacity `s`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the sample holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the sample is at capacity.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.cap
    }

    /// The paper's threshold `u`: smallest retained key once full, else 0.
    #[inline]
    pub fn u(&self) -> f64 {
        if self.is_full() {
            self.min_key().unwrap_or(0.0)
        } else {
            0.0
        }
    }

    /// Smallest retained key, if any (regardless of fullness).
    pub fn min_key(&self) -> Option<f64> {
        self.heap.peek().map(|r| r.0.key)
    }

    /// Offers an item; keeps the top-`cap` by key.
    #[inline]
    pub fn offer(&mut self, keyed: Keyed) -> Offer {
        let entry = Entry {
            key: keyed.key,
            seq: self.seq,
            keyed,
        };
        self.seq += 1;
        if self.heap.len() < self.cap {
            self.heap.push(std::cmp::Reverse(entry));
            return Offer::Inserted;
        }
        // Full: compare against the minimum.
        let min = self.heap.peek().expect("non-empty full heap").0;
        if entry > min {
            let evicted = self.heap.pop().expect("heap non-empty").0.keyed;
            self.heap.push(std::cmp::Reverse(entry));
            Offer::Replaced(evicted)
        } else {
            Offer::Rejected
        }
    }

    /// Iterates over retained items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Keyed> {
        self.heap.iter().map(|r| &r.0.keyed)
    }

    /// Returns retained items sorted by decreasing key.
    pub fn sorted_desc(&self) -> Vec<Keyed> {
        let mut v: Vec<Keyed> = self.iter().copied().collect();
        v.sort_by(|a, b| b.key.total_cmp(&a.key));
        v
    }
}

/// Merges several keyed collections and returns the global top-`s` by key
/// (used by the coordinator's query: top-s of `S ∪ (∪_j D_j)`).
pub fn top_s_of<'a, I>(parts: I, s: usize) -> Vec<Keyed>
where
    I: IntoIterator<Item = &'a Keyed>,
{
    let mut all: Vec<Keyed> = parts.into_iter().copied().collect();
    all.sort_by(|a, b| b.key.total_cmp(&a.key));
    all.truncate(s);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn kd(id: u64, key: f64) -> Keyed {
        Keyed::new(Item::new(id, 1.0), key)
    }

    #[test]
    fn fills_then_evicts_minimum() {
        let mut t = TopK::new(3);
        assert_eq!(t.offer(kd(1, 5.0)), Offer::Inserted);
        assert_eq!(t.offer(kd(2, 1.0)), Offer::Inserted);
        assert_eq!(t.offer(kd(3, 3.0)), Offer::Inserted);
        assert!(t.is_full());
        assert_eq!(t.u(), 1.0);
        // 2.0 beats min 1.0: evicts item 2.
        match t.offer(kd(4, 2.0)) {
            Offer::Replaced(e) => assert_eq!(e.item.id, 2),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert_eq!(t.u(), 2.0);
        // 0.5 does not beat min 2.0.
        assert_eq!(t.offer(kd(5, 0.5)), Offer::Rejected);
    }

    #[test]
    fn u_is_zero_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.u(), 0.0);
        t.offer(kd(1, 10.0));
        assert_eq!(t.u(), 0.0);
        t.offer(kd(2, 20.0));
        assert_eq!(t.u(), 10.0);
    }

    #[test]
    fn sorted_desc_is_sorted() {
        let mut t = TopK::new(4);
        for (i, k) in [3.0, 9.0, 1.0, 7.0, 5.0, 8.0].iter().enumerate() {
            t.offer(kd(i as u64, *k));
        }
        let v = t.sorted_desc();
        let keys: Vec<f64> = v.iter().map(|x| x.key).collect();
        assert_eq!(keys, vec![9.0, 8.0, 7.0, 5.0]);
    }

    #[test]
    fn retains_exact_top_k_against_reference() {
        let mut rng = crate::rng::Rng::new(42);
        let mut t = TopK::new(10);
        let mut all = Vec::new();
        for i in 0..1000u64 {
            let k = rng.f64() * 100.0;
            all.push(k);
            t.offer(kd(i, k));
        }
        all.sort_by(|a, b| b.total_cmp(a));
        let expect: Vec<f64> = all.into_iter().take(10).collect();
        let got: Vec<f64> = t.sorted_desc().iter().map(|x| x.key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn u_monotone_nondecreasing() {
        let mut rng = crate::rng::Rng::new(7);
        let mut t = TopK::new(5);
        let mut last_u = 0.0;
        for i in 0..2000u64 {
            t.offer(kd(i, rng.exp()));
            let u = t.u();
            assert!(u >= last_u, "u decreased: {u} < {last_u}");
            last_u = u;
        }
    }

    #[test]
    fn top_s_of_merges() {
        let a = [kd(1, 5.0), kd(2, 1.0)];
        let b = [kd(3, 4.0), kd(4, 9.0)];
        let top = top_s_of(a.iter().chain(b.iter()), 2);
        let ids: Vec<u64> = top.iter().map(|k| k.item.id).collect();
        assert_eq!(ids, vec![4, 1]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = TopK::new(0);
    }
}
