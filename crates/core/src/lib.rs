//! # dwrs-core
//!
//! Core algorithms for **weighted reservoir sampling from distributed
//! streams**, reproducing Jayaram, Sharma, Tirthapura and Woodruff,
//! *"Weighted Reservoir Sampling from Distributed Streams"*, PODS 2019
//! (arXiv:1904.04126).
//!
//! The model: `k` physically distributed *sites* each observe a local stream
//! of weighted items `(e, w)` and communicate with a single *coordinator*,
//! which must **continuously** maintain a weighted random sample of size `s`
//! over the union of all streams. The cost metric is the number of messages.
//!
//! The flagship algorithm ([`swor`]) maintains a weighted sample **without
//! replacement** using an expected `O(k·log(W/s)/log(1+k/s))` messages, which
//! is optimal. It combines three ingredients from the paper:
//!
//! * **precision sampling** ([`keys`], [`precision`]): every item gets a key
//!   `v = w/t` with `t ~ Exp(1)`; the top-`s` keys form a weighted SWOR
//!   (Proposition 1);
//! * **epochs**: the coordinator broadcasts a geometrically growing key
//!   threshold `r^j` (with `r = max(2, k/s)`) under which sites filter;
//! * **level sets** ([`swor::levels`]): heavy items are withheld from the
//!   internal sampler until enough same-magnitude items arrive (Lemma 1),
//!   while still being included in every query answer.
//!
//! Also provided: the weighted sampling-**with**-replacement reduction
//! ([`swr`], Corollary 1), unweighted distributed samplers used as substrates
//! and baselines ([`unweighted`]), centralized reference samplers
//! ([`centralized`]), an exact small-instance oracle ([`exact`]), and the
//! deterministic math/RNG substrate ([`math`], [`rng`]).
//!
//! Everything is deterministic given a seed: the crate deliberately has no
//! runtime dependencies.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod centralized;
pub mod ctrl;
pub mod estimate;
pub mod exact;
pub mod framed;
pub mod item;
pub mod keys;
pub mod math;
pub mod merge;
pub mod precision;
pub mod rng;
pub mod swor;
pub mod swr;
pub mod topk;
pub mod unweighted;

pub use item::{Item, ItemId, Keyed};
pub use rng::Rng;
