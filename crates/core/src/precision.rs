//! Bit-precision lazy exponential generation (paper Proposition 7).
//!
//! The paper argues its algorithm can generate each exponential *lazily*:
//! to decide whether a key `v = w/t` clears a threshold `θ`, it suffices to
//! compare the underlying uniform `U` (with `t = -ln U`) against
//! `q = e^{-w/θ}` bit by bit, consuming an expected **O(1)** bits, and O(log
//! W) bits with high probability. This module implements that machinery and
//! meters the bits so the claim can be validated empirically (experiment E8).
//!
//! The production samplers use plain 53-bit f64 draws (identical
//! distribution at word precision); this module exists to *demonstrate* the
//! bit-complexity claim and to provide the lazy comparator for anyone
//! embedding the protocol where entropy is expensive.

use crate::rng::Rng;

/// Outcome of a lazy threshold comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LazyDecision {
    /// Whether the key `w/t` exceeds the threshold (i.e. the item must be
    /// forwarded).
    pub above: bool,
    /// Number of random bits consumed to reach the decision.
    pub bits: u32,
    /// A full-precision exponential `t` consistent with the decision (the
    /// remaining bits are filled in after the decision, exactly as the paper
    /// describes).
    pub t: f64,
}

/// Maximum bits before declaring the comparison resolved by fiat; at 1100
/// bits the interval width is far below subnormal f64 resolution, so the
/// decision is determined for every representable `q`.
const MAX_BITS: u32 = 1100;

/// Lazily decides whether `w/t > θ` for a fresh `t ~ Exp(1)`, consuming
/// uniform bits one at a time (Proposition 7).
///
/// Internally maintains the dyadic interval of the uniform `U`; each bit
/// halves it; the decision falls out as soon as the interval no longer
/// straddles `q = e^{-w/θ}`. Afterwards `U` is completed to full `f64`
/// precision inside the decided interval and `t = -ln U` is returned.
pub fn lazy_key_above(weight: f64, threshold: f64, rng: &mut Rng) -> LazyDecision {
    debug_assert!(weight > 0.0);
    if threshold <= 0.0 {
        // Everything clears a non-positive threshold; no bits needed.
        let t = rng.exp();
        return LazyDecision {
            above: true,
            bits: 0,
            t,
        };
    }
    // v = w/t > θ  ⟺  t < w/θ  ⟺  U > e^{-w/θ} = q.
    let q = (-weight / threshold).exp();
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut bits = 0u32;
    let above = loop {
        if lo >= q {
            break true;
        }
        if hi <= q {
            break false;
        }
        if bits >= MAX_BITS {
            // Interval width is 2^-1100: it cannot actually straddle a
            // normal f64 q; treat the midpoint side deterministically.
            break (lo + hi) * 0.5 >= q;
        }
        let mid = 0.5 * (lo + hi);
        if rng.next_u64() & 1 == 1 {
            lo = mid;
        } else {
            hi = mid;
        }
        bits += 1;
    };
    // Complete U to full precision uniformly within the decided interval.
    let u = (lo + (hi - lo) * rng.f64()).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    let t = -u.ln();
    LazyDecision { above, bits, t }
}

/// Average bits consumed over `trials` comparisons at the given weight and
/// threshold — the quantity Proposition 7 bounds by O(1) in expectation.
pub fn mean_bits(weight: f64, threshold: f64, trials: u32, rng: &mut Rng) -> f64 {
    let mut total = 0u64;
    for _ in 0..trials {
        total += lazy_key_above(weight, threshold, rng).bits as u64;
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_matches_returned_t() {
        let mut rng = Rng::new(1);
        for _ in 0..20_000 {
            let d = lazy_key_above(2.0, 5.0, &mut rng);
            let v = 2.0 / d.t;
            assert_eq!(
                d.above,
                v > 5.0,
                "decision {} inconsistent with v {v}",
                d.above
            );
        }
    }

    #[test]
    fn expected_bits_is_small_constant() {
        // Proposition 7: O(1) bits in expectation, for any threshold.
        let mut rng = Rng::new(2);
        for &(w, theta) in &[(1.0, 1.0), (1.0, 100.0), (50.0, 3.0), (1.0, 1e9)] {
            let m = mean_bits(w, theta, 20_000, &mut rng);
            assert!(m <= 4.0, "mean bits {m} for w={w}, θ={theta}");
        }
    }

    #[test]
    fn acceptance_probability_matches_closed_form() {
        let mut rng = Rng::new(3);
        let (w, theta) = (3.0, 7.0);
        let p = crate::keys::p_key_above(w, theta);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| lazy_key_above(w, theta, &mut rng).above)
            .count() as f64;
        let emp = hits / n as f64;
        let se = (p * (1.0 - p) / n as f64).sqrt();
        assert!((emp - p).abs() < 6.0 * se, "emp {emp}, p {p}");
    }

    #[test]
    fn t_is_exponential_ks() {
        // The completed t must be Exp(1) unconditionally.
        let mut rng = Rng::new(4);
        let n = 50_000usize;
        let mut ts: Vec<f64> = (0..n)
            .map(|_| lazy_key_above(1.0, 2.0, &mut rng).t)
            .collect();
        ts.sort_by(f64::total_cmp);
        let mut d: f64 = 0.0;
        for (i, &t) in ts.iter().enumerate() {
            let cdf = 1.0 - (-t).exp();
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((cdf - lo).abs().max((cdf - hi).abs()));
        }
        // One-sample KS critical value at alpha ~ 1e-3: 1.95/sqrt(n).
        assert!(d < 1.95 / (n as f64).sqrt(), "KS {d}");
    }

    #[test]
    fn zero_threshold_consumes_no_bits() {
        let mut rng = Rng::new(5);
        let d = lazy_key_above(1.0, 0.0, &mut rng);
        assert!(d.above);
        assert_eq!(d.bits, 0);
    }
}
