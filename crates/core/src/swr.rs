//! Distributed weighted sampling **with replacement** (Section 2.2,
//! Corollary 1).
//!
//! Reduction to unweighted SWR: an item `(e, w)` with integer weight `w`
//! stands for `w` unit copies. The unweighted substrate is `s` independent
//! single-item min-tag samplers (the structure of reference \[14\]): each unit
//! copy gets an independent `Uniform(0,1)` tag per sampler, and each
//! sampler's current sample is the item holding its minimum tag — a uniform
//! random unit copy, i.e. item `e_i` with probability `w_i / W`.
//!
//! The naive reduction costs `O(w)` site work per item; the paper's
//! **binomial trick** brings it to `O(1)` amortized:
//!
//! * the probability that *some* copy of `(e, w)` clears the current
//!   threshold `τ` in one sampler is `α(w, τ) = 1 - (1-τ)^w`;
//! * the number of samplers receiving a candidate is `X ~ Binomial(s, α)`,
//!   drawn in one shot, and `X` distinct samplers are picked uniformly;
//! * for each, the forwarded tag is the minimum of `w` uniforms conditioned
//!   below `τ`, sampled exactly by inversion: `tag = 1 - (1 - V·α)^{1/w}`.
//!
//! The coordinator broadcasts thresholds lazily at powers of
//! `β = 2 + k/s`, giving the `O((k + s·log s)·log W / log(2 + k/s))`
//! message bound of Corollary 1.

use crate::item::Item;
use crate::math::binomial::binomial;
use crate::math::{floor_log_base, powi};
use crate::rng::Rng;

/// Configuration of the distributed SWR protocol.
#[derive(Clone, Debug)]
pub struct SwrConfig {
    /// Sample size `s` (number of independent single-item samplers).
    pub sample_size: usize,
    /// Number of sites `k`.
    pub num_sites: usize,
    /// Epoch base override; default `2 + k/s` (Theorem 1's `log(2+k/s)`).
    pub beta_override: Option<f64>,
}

impl SwrConfig {
    /// Standard configuration.
    pub fn new(sample_size: usize, num_sites: usize) -> Self {
        assert!(sample_size >= 1 && num_sites >= 1);
        Self {
            sample_size,
            num_sites,
            beta_override: None,
        }
    }

    /// The epoch base `β = 2 + k/s`.
    pub fn beta(&self) -> f64 {
        match self.beta_override {
            Some(b) => {
                assert!(b > 1.0);
                b
            }
            None => 2.0 + self.num_sites as f64 / self.sample_size as f64,
        }
    }
}

/// Site → coordinator: a candidate for one sampler instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwrUp {
    /// The weighted item.
    pub item: Item,
    /// Which of the `s` samplers this candidate targets.
    pub instance: u32,
    /// The candidate tag (minimum over the item's unit copies, conditioned
    /// below the threshold in force when it was sent).
    pub tag: f64,
}

/// Coordinator → sites: new tag threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwrDown {
    /// Tags at or above this value are dropped at sites.
    pub threshold: f64,
}

/// Site state of the distributed weighted SWR protocol.
#[derive(Debug)]
pub struct WeightedSwrSite {
    s: usize,
    threshold: f64,
    rng: Rng,
    scratch: Vec<u32>,
    /// Candidate messages sent.
    pub sent: u64,
}

impl WeightedSwrSite {
    /// Creates a site from the shared configuration and a per-site seed.
    pub fn new(cfg: &SwrConfig, seed: u64) -> Self {
        Self {
            s: cfg.sample_size,
            threshold: 1.0,
            rng: Rng::new(seed),
            scratch: Vec::new(),
            /* one message per candidate */
            sent: 0,
        }
    }

    /// Current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Observes an item with **integer** weight; emits one candidate per
    /// chosen sampler instance into `out`.
    ///
    /// # Panics
    /// Panics if the weight is not a positive integer (the reduction
    /// requires integral weights, as in the paper).
    pub fn observe(&mut self, item: Item, out: &mut Vec<SwrUp>) {
        let w = item.weight;
        assert!(
            w >= 1.0 && w.fract() == 0.0 && w <= 2f64.powi(53),
            "SWR reduction requires integer weights >= 1, got {w}"
        );
        let tau = self.threshold;
        // α(w, τ) = 1 - (1-τ)^w, computed stably in log-space.
        let alpha = if tau >= 1.0 {
            1.0
        } else {
            -(w * (-tau).ln_1p()).exp_m1()
        };
        let x = binomial(&mut self.rng, self.s as u64, alpha) as usize;
        if x == 0 {
            return;
        }
        self.choose_instances(x);
        for i in 0..x {
            let instance = self.scratch[i];
            // Minimum of w uniforms conditioned < τ, by inversion:
            // tag = 1 - (1 - V·α)^{1/w}.
            let v = self.rng.open01();
            let tag = -((-v * alpha).ln_1p() / w).exp_m1();
            let tag = tag.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
            self.sent += 1;
            out.push(SwrUp {
                item,
                instance,
                tag,
            });
        }
    }

    /// Fills `scratch[..x]` with `x` distinct instance indices chosen
    /// uniformly from `0..s`.
    fn choose_instances(&mut self, x: usize) {
        self.scratch.clear();
        if x >= self.s {
            self.scratch.extend(0..self.s as u32);
            return;
        }
        if x * 4 >= self.s {
            // Dense case: partial Fisher–Yates over a fresh index array.
            let mut idx: Vec<u32> = (0..self.s as u32).collect();
            for i in 0..x {
                let j = i + self.rng.index(self.s - i);
                idx.swap(i, j);
                self.scratch.push(idx[i]);
            }
            return;
        }
        // Sparse case: Floyd's algorithm; membership scans are O(x^2) with
        // tiny x, cheaper than hashing.
        for j in (self.s - x)..self.s {
            let t = self.rng.index(j + 1) as u32;
            if self.scratch.contains(&t) {
                self.scratch.push(j as u32);
            } else {
                self.scratch.push(t);
            }
        }
    }

    /// Applies a threshold broadcast (thresholds only shrink).
    pub fn receive(&mut self, msg: &SwrDown) {
        if msg.threshold < self.threshold {
            self.threshold = msg.threshold;
        }
    }
}

/// Coordinator state: the `s` sampler instances plus epoch broadcasting.
#[derive(Debug)]
pub struct WeightedSwrCoordinator {
    cfg: SwrConfig,
    beta: f64,
    winners: Vec<Option<(f64, Item)>>,
    epoch: Option<i64>,
    /// Threshold broadcasts issued.
    pub broadcasts: u64,
}

impl WeightedSwrCoordinator {
    /// Creates a coordinator.
    pub fn new(cfg: SwrConfig) -> Self {
        let beta = cfg.beta();
        let s = cfg.sample_size;
        Self {
            cfg,
            beta,
            winners: vec![None; s],
            epoch: None,
            broadcasts: 0,
        }
    }

    /// The largest winner tag across instances (1.0 while any instance is
    /// still empty) — the statistic driving threshold broadcasts.
    pub fn tau_star(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for w in &self.winners {
            match w {
                None => return 1.0,
                Some((tag, _)) => worst = worst.max(*tag),
            }
        }
        worst
    }

    /// Handles a candidate; may emit a threshold broadcast.
    pub fn receive(&mut self, msg: SwrUp, out: &mut Vec<SwrDown>) {
        let slot = &mut self.winners[msg.instance as usize];
        let improves = match slot {
            None => true,
            Some((tag, _)) => msg.tag < *tag,
        };
        if !improves {
            return;
        }
        *slot = Some((msg.tag, msg.item));
        let tau = self.tau_star();
        if tau < 1.0 {
            let l = floor_log_base(self.beta, tau);
            let e = if powi(self.beta, l) == tau { l } else { l + 1 };
            let j = (-e).max(0);
            if self.epoch.is_none_or(|cur| j > cur) {
                self.epoch = Some(j);
                self.broadcasts += 1;
                out.push(SwrDown {
                    threshold: powi(self.beta, -j),
                });
            }
        }
    }

    /// The weighted SWR: one item per instance (instances still empty are
    /// skipped, which only happens before the first item arrives).
    pub fn sample(&self) -> Vec<Item> {
        self.winners.iter().flatten().map(|(_, it)| *it).collect()
    }

    /// Sample size `s`.
    pub fn capacity(&self) -> usize {
        self.cfg.sample_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix;

    fn run(weights: &[f64], k: usize, s: usize, seed: u64) -> (WeightedSwrCoordinator, u64, u64) {
        let cfg = SwrConfig::new(s, k);
        let mut sites: Vec<WeightedSwrSite> = (0..k)
            .map(|i| WeightedSwrSite::new(&cfg, mix(seed, i as u64)))
            .collect();
        let mut coord = WeightedSwrCoordinator::new(cfg);
        let (mut up, mut down) = (0u64, 0u64);
        let mut ups = Vec::new();
        let mut downs = Vec::new();
        for (t, &w) in weights.iter().enumerate() {
            let site = t % k;
            sites[site].observe(Item::new(t as u64, w), &mut ups);
            for u in ups.drain(..) {
                up += 1;
                coord.receive(u, &mut downs);
                for d in downs.drain(..) {
                    down += k as u64;
                    for st in &mut sites {
                        st.receive(&d);
                    }
                }
            }
        }
        (coord, up, down)
    }

    #[test]
    fn sample_has_s_entries_after_first_item() {
        let (coord, _, _) = run(&[5.0, 1.0, 2.0], 2, 6, 1);
        assert_eq!(coord.sample().len(), 6);
    }

    #[test]
    fn marginals_proportional_to_weight() {
        let weights = [1.0, 3.0, 6.0, 2.0];
        let total: f64 = weights.iter().sum();
        let s = 4usize;
        let trials = 30_000u64;
        let mut counts = vec![0u64; weights.len()];
        for t in 0..trials {
            let (coord, _, _) = run(&weights, 2, s, 500 + t);
            for it in coord.sample() {
                counts[it.id as usize] += 1;
            }
        }
        let draws = trials * s as u64;
        for (i, &c) in counts.iter().enumerate() {
            let p = weights[i] / total;
            let emp = c as f64 / draws as f64;
            let se = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (emp - p).abs() < 6.0 * se,
                "item {i}: emp {emp:.4} vs p {p:.4}"
            );
        }
    }

    #[test]
    fn instances_behave_independently() {
        // P(two given instances both hold the heavy item) ~ p^2.
        let weights = [2.0, 2.0]; // heavy = either; use item 0, p = 1/2
        let trials = 40_000u64;
        let mut both = 0u64;
        for t in 0..trials {
            let (coord, _, _) = run(&weights, 1, 2, 90_000 + t);
            let s = coord.sample();
            if s[0].id == 0 && s[1].id == 0 {
                both += 1;
            }
        }
        let emp = both as f64 / trials as f64;
        let se = (0.25 * 0.75 / trials as f64).sqrt();
        assert!((emp - 0.25).abs() < 6.0 * se, "emp {emp}");
    }

    #[test]
    fn message_count_sublinear_in_total_weight() {
        // Stream with large integer weights: messages must track log W, not W.
        let n = 30_000usize;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 50) as f64).collect();
        let (_, up, down) = run(&weights, 8, 8, 77);
        let total = up + down;
        assert!(
            total < (n / 10) as u64,
            "messages {total} not sublinear in n {n}"
        );
    }

    #[test]
    #[should_panic(expected = "integer weights")]
    fn fractional_weight_rejected() {
        let cfg = SwrConfig::new(2, 1);
        let mut site = WeightedSwrSite::new(&cfg, 1);
        let mut out = Vec::new();
        site.observe(Item::new(0, 1.5), &mut out);
    }

    #[test]
    fn choose_instances_distinct_and_in_range() {
        let cfg = SwrConfig::new(16, 1);
        let mut site = WeightedSwrSite::new(&cfg, 9);
        for x in [1usize, 3, 8, 15, 16] {
            site.choose_instances(x);
            let mut v = site.scratch.clone();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), x, "x = {x} produced duplicates");
            assert!(v.iter().all(|&i| (i as usize) < 16));
        }
    }

    #[test]
    fn conditional_tag_stays_below_threshold() {
        let cfg = SwrConfig::new(4, 1);
        let mut site = WeightedSwrSite::new(&cfg, 4);
        site.receive(&SwrDown { threshold: 0.01 });
        let mut out = Vec::new();
        for i in 0..20_000u64 {
            site.observe(Item::new(i, 7.0), &mut out);
        }
        for msg in &out {
            assert!(msg.tag < 0.01, "tag {} ≥ threshold", msg.tag);
        }
    }
}
