//! Mergeability of keyed weighted samples.
//!
//! Precision-sampling samples are *mergeable*: if `A` is the top-`s` keyed
//! sample of stream 1 and `B` the top-`s` keyed sample of a disjoint stream
//! 2 (keys drawn independently), then the top-`s` of `A ∪ B` is distributed
//! exactly as a weighted SWOR of the concatenated stream. This is the
//! one-shot analogue of the paper's coordinator (which merges continuously)
//! and is what makes the sketch usable in fan-in topologies — e.g. a tree
//! of aggregators, or reconciling two coordinators after a failover.
//!
//! Correctness: keys are item-wise independent, so the union of the two key
//! assignments is a valid key assignment for the union stream, and any item
//! outside `A` (resp. `B`) is beaten by `s` items within its own stream, so
//! it cannot be in the union's top-`s`.
//!
//! # Example
//!
//! ```
//! use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
//! use dwrs_core::merge::merge_two;
//! use dwrs_core::Item;
//!
//! // Two disjoint substreams, sampled independently...
//! let mut east = ExpClockSwor::new(8, 1);
//! let mut west = ExpClockSwor::new(8, 2);
//! for i in 0..500u64 {
//!     east.observe(Item::new(i, 1.0));
//!     west.observe(Item::new(1_000 + i, 2.0));
//! }
//! // ...merge into a valid weighted SWOR of the union:
//! let union = merge_two(&east.sample_keyed(), &west.sample_keyed(), 8);
//! assert_eq!(union.len(), 8);
//! ```

use crate::item::Keyed;
use crate::topk::top_s_of;

/// Merges any number of keyed top-`s'` samples (each with `s' ≥ s` or
/// covering its entire substream) into the top-`s` sample of the union.
///
/// This is the primitive behind fan-in trees: a root holding one sample per
/// group merges them into a valid weighted SWOR of the union stream.
///
/// ```
/// use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
/// use dwrs_core::merge::merge_samples;
/// use dwrs_core::{Item, Keyed};
///
/// // Three disjoint regional substreams, each sampled independently...
/// let regions: Vec<Vec<Keyed>> = (0..3u64)
///     .map(|r| {
///         let mut sampler = ExpClockSwor::new(4, r + 1);
///         for i in 0..200u64 {
///             sampler.observe(Item::new(r * 1_000 + i, 1.0 + (i % 5) as f64));
///         }
///         sampler.sample_keyed()
///     })
///     .collect();
/// // ...merged at the root into one top-4 weighted SWOR of the union:
/// let parts: Vec<&[Keyed]> = regions.iter().map(Vec::as_slice).collect();
/// let root = merge_samples(&parts, 4);
/// assert_eq!(root.len(), 4);
/// // The merge keeps exactly the globally largest keys.
/// let min_kept = root.iter().map(|k| k.key).fold(f64::MAX, f64::min);
/// assert!(regions
///     .iter()
///     .flatten()
///     .all(|k| k.key <= min_kept || root.iter().any(|r| r.key == k.key)));
/// ```
pub fn merge_samples(parts: &[&[Keyed]], s: usize) -> Vec<Keyed> {
    top_s_of(parts.iter().flat_map(|p| p.iter()), s)
}

/// Merges exactly two samples (convenience wrapper).
pub fn merge_two(a: &[Keyed], b: &[Keyed], s: usize) -> Vec<Keyed> {
    merge_samples(&[a, b], s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{ExpClockSwor, StreamSampler};
    use crate::exact::inclusion_probabilities;
    use crate::item::Item;

    fn keyed_sample(weights: &[f64], base_id: u64, s: usize, seed: u64) -> Vec<Keyed> {
        let mut sampler = ExpClockSwor::new(s, seed);
        for (i, &w) in weights.iter().enumerate() {
            sampler.observe(Item::new(base_id + i as u64, w));
        }
        sampler.sample_keyed()
    }

    #[test]
    fn merged_sample_matches_oracle() {
        let w1 = [1.0, 4.0, 2.0];
        let w2 = [8.0, 1.0, 1.0, 3.0];
        let all: Vec<f64> = w1.iter().chain(w2.iter()).copied().collect();
        let s = 2;
        let exact = inclusion_probabilities(&all, s);
        let trials = 40_000u64;
        let mut counts = vec![0u64; all.len()];
        for t in 0..trials {
            let a = keyed_sample(&w1, 0, s, 2 * t + 1);
            let b = keyed_sample(&w2, w1.len() as u64, s, 2 * t + 2);
            for kd in merge_two(&a, &b, s) {
                counts[kd.item.id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = exact[i];
            let emp = c as f64 / trials as f64;
            let se = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (emp - p).abs() < 6.0 * se,
                "item {i}: {emp:.4} vs exact {p:.4}"
            );
        }
    }

    #[test]
    fn merge_is_associative_on_fixed_keys() {
        let mk = |id: u64, key: f64| Keyed::new(Item::new(id, 1.0), key);
        let a = vec![mk(1, 9.0), mk(2, 3.0)];
        let b = vec![mk(3, 7.0), mk(4, 1.0)];
        let c = vec![mk(5, 8.0), mk(6, 2.0)];
        let left = merge_two(&merge_two(&a, &b, 2), &c, 2);
        let right = merge_two(&a, &merge_two(&b, &c, 2), 2);
        let flat = merge_samples(&[&a, &b, &c], 2);
        let ids = |v: &[Keyed]| v.iter().map(|k| k.item.id).collect::<Vec<_>>();
        assert_eq!(ids(&left), ids(&right));
        assert_eq!(ids(&left), ids(&flat));
        assert_eq!(ids(&flat), vec![1, 5]);
    }

    #[test]
    fn merge_of_empty_parts() {
        let a: Vec<Keyed> = Vec::new();
        let b = vec![Keyed::new(Item::new(1, 1.0), 4.0)];
        assert_eq!(merge_two(&a, &b, 3).len(), 1);
        assert!(merge_samples(&[], 3).is_empty());
    }

    #[test]
    fn fan_in_tree_equals_flat_merge() {
        // 4 substreams merged pairwise then at the root vs merged flat.
        let parts: Vec<Vec<Keyed>> = (0..4u64)
            .map(|p| keyed_sample(&[1.0, 2.0, 3.0, 4.0], p * 10, 3, 77 + p))
            .collect();
        let s = 3;
        let l = merge_two(&parts[0], &parts[1], s);
        let r = merge_two(&parts[2], &parts[3], s);
        let root = merge_two(&l, &r, s);
        let refs: Vec<&[Keyed]> = parts.iter().map(Vec::as_slice).collect();
        let flat = merge_samples(&refs, s);
        let ids = |v: &[Keyed]| {
            v.iter()
                .map(|k| (k.item.id, k.key.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&root), ids(&flat));
    }
}
