//! Control-protocol frames for the long-lived sampling daemon.
//!
//! The daemon (`dwrs-runtime::daemon`) hosts many concurrent *named
//! streams* and answers live queries while they run. Clients speak a small
//! request/response protocol over the same `[u32 LE length][payload]`
//! framing as the data plane ([`crate::framed`]): every control payload is
//! one [`CtrlMsg`] (client → daemon) or [`CtrlResp`] (daemon → client).
//!
//! Layouts follow the `swor::wire` conventions exactly: a one-byte tag,
//! little-endian fixed-width integers, `f64` as IEEE-754 bits, and strings
//! as a `u16` length followed by UTF-8 bytes. Decoding is *total* — any
//! byte string either decodes or returns a [`WireError`], never panics —
//! and validates counts against the available bytes **before** allocating
//! (the same discipline as `swor::wire::decode_sync`). The framing layer's
//! `MAX_FRAME_LEN` guard applies unchanged.
//!
//! The byte layout of every frame is documented operator-facing in
//! `docs/DAEMON.md`; a doc-sync test asserts the two stay aligned.

use crate::framed::FrameCodec;
use crate::item::{Item, Keyed};
use crate::swor::wire::WireError;

/// Tag byte of [`CtrlMsg::Create`].
pub const TAG_CREATE: u8 = 0x40;
/// Tag byte of [`CtrlMsg::Attach`].
pub const TAG_ATTACH: u8 = 0x41;
/// Tag byte of [`CtrlMsg::Query`].
pub const TAG_QUERY: u8 = 0x42;
/// Tag byte of [`CtrlMsg::Drain`].
pub const TAG_DRAIN: u8 = 0x43;
/// Tag byte of [`CtrlMsg::Shutdown`].
pub const TAG_SHUTDOWN: u8 = 0x44;
/// Tag byte of [`CtrlResp::Ok`].
pub const TAG_OK: u8 = 0x50;
/// Tag byte of [`CtrlResp::Err`].
pub const TAG_ERR: u8 = 0x51;
/// Tag byte of [`CtrlResp::Attached`].
pub const TAG_ATTACHED: u8 = 0x52;
/// Tag byte of [`CtrlResp::Answer`].
pub const TAG_ANSWER: u8 = 0x53;

/// Bytes per encoded sample entry in a [`LiveSnapshot`]: `u64` id,
/// `f64` weight, `f64` key.
pub const SNAPSHOT_ENTRY_BYTES: usize = 24;

/// The live query kinds a running stream can answer mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveQueryKind {
    /// The coordinator's current weighted sample (query set).
    CurrentSample,
    /// The L1 estimate `W̃ = s·u/ℓ` at this instant.
    L1Now,
    /// The residual-heavy-hitter candidate set so far (top `2/ε` sample
    /// items by weight).
    RhhSoFar,
    /// The sample filtered to the trailing window of arrivals.
    WindowNow,
    /// Per-tier message/byte accounting only (no sample entries).
    Stats,
}

impl LiveQueryKind {
    /// The wire discriminant byte.
    pub fn as_u8(self) -> u8 {
        match self {
            LiveQueryKind::CurrentSample => 0,
            LiveQueryKind::L1Now => 1,
            LiveQueryKind::RhhSoFar => 2,
            LiveQueryKind::WindowNow => 3,
            LiveQueryKind::Stats => 4,
        }
    }

    /// Decodes a wire discriminant byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(LiveQueryKind::CurrentSample),
            1 => Some(LiveQueryKind::L1Now),
            2 => Some(LiveQueryKind::RhhSoFar),
            3 => Some(LiveQueryKind::WindowNow),
            4 => Some(LiveQueryKind::Stats),
            _ => None,
        }
    }

    /// The operator-facing name (`dwrs query --kind <name>`).
    pub fn name(self) -> &'static str {
        match self {
            LiveQueryKind::CurrentSample => "current-sample",
            LiveQueryKind::L1Now => "l1-now",
            LiveQueryKind::RhhSoFar => "rhh-so-far",
            LiveQueryKind::WindowNow => "window-now",
            LiveQueryKind::Stats => "stats",
        }
    }

    /// Parses an operator-facing name (aliases: `sample`, `l1`, `rhh`,
    /// `window`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "current-sample" | "sample" => Some(LiveQueryKind::CurrentSample),
            "l1-now" | "l1" => Some(LiveQueryKind::L1Now),
            "rhh-so-far" | "rhh" => Some(LiveQueryKind::RhhSoFar),
            "window-now" | "window" => Some(LiveQueryKind::WindowNow),
            "stats" => Some(LiveQueryKind::Stats),
            _ => None,
        }
    }

    /// All kinds, in wire-discriminant order.
    pub fn all() -> [LiveQueryKind; 5] {
        [
            LiveQueryKind::CurrentSample,
            LiveQueryKind::L1Now,
            LiveQueryKind::RhhSoFar,
            LiveQueryKind::WindowNow,
            LiveQueryKind::Stats,
        ]
    }
}

/// A client → daemon control request.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlMsg {
    /// Creates stream `stream` with `k` site slots, base sample size `s`,
    /// and application query `query` (a `Query::parse` spec such as
    /// `"swor"` or `"l1:0.2,0.25"`). Creating an existing stream is a
    /// no-op acknowledged with [`CtrlResp::Ok`]; the original
    /// configuration wins.
    Create {
        /// Stream name (non-empty, at most `u16::MAX` UTF-8 bytes).
        stream: String,
        /// Number of site slots `k` (≥ 1).
        k: u32,
        /// Base sample size `s` (≥ 1); the query may derive a larger
        /// effective size.
        s: u32,
        /// Application query spec.
        query: String,
    },
    /// Attaches this connection as site `site` of stream `stream`; the
    /// connection then switches to the data-plane framing (`TAG_BATCH` /
    /// `TAG_EOF`). Reattaching a previously detached slot resumes it.
    Attach {
        /// Stream name.
        stream: String,
        /// Site slot in `0..k`.
        site: u32,
    },
    /// Answers a live query against the stream's current state.
    Query {
        /// Stream name.
        stream: String,
        /// Which live answer to extract.
        kind: LiveQueryKind,
        /// Kind-specific argument: the window length in arrivals for
        /// [`LiveQueryKind::WindowNow`] (0 = the stream's own window);
        /// ignored otherwise.
        arg: u64,
    },
    /// Waits until every attached site has sent Eof or detached, then
    /// returns the final snapshot and removes the stream.
    Drain {
        /// Stream name.
        stream: String,
    },
    /// Drains every stream and stops the daemon.
    Shutdown,
}

/// A daemon → client control response.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlResp {
    /// Generic acknowledgement.
    Ok {
        /// Human-readable detail (e.g. `"created"` / `"exists"`).
        info: String,
    },
    /// The request failed; the stream (if any) is unaffected.
    Err {
        /// Human-readable reason.
        msg: String,
    },
    /// An [`CtrlMsg::Attach`] was accepted; the connection is now the
    /// slot's data link.
    Attached {
        /// The confirmed site slot.
        site: u32,
        /// Whether the slot had fed items before (reconnect).
        resumed: bool,
        /// Items the slot had contributed before this attach.
        items: u64,
    },
    /// A live answer ([`CtrlMsg::Query`] or [`CtrlMsg::Drain`]).
    Answer {
        /// The snapshot at the instant the stream processor answered.
        snapshot: LiveSnapshot,
    },
}

/// A stream's state at one instant, as carried by [`CtrlResp::Answer`].
///
/// This is the incremental form of a `RunReport`: items observed so far,
/// the current epoch/threshold, the kind-specific estimate, and the
/// per-tier message/byte accounting at that instant. Because the threaded
/// engines run in the delayed-delivery regime, a snapshot reflects the
/// frames the coordinator has *processed*, which may trail what sites
/// have sent.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveSnapshot {
    /// Which live answer the `sample`/`estimate` fields carry.
    pub kind: LiveQueryKind,
    /// Items observed across all site slots (sum of batch watermarks).
    pub items: u64,
    /// The coordinator's current epoch `j` (`None` before the first
    /// epoch broadcast).
    pub epoch: Option<i64>,
    /// The current threshold statistic `u` (the `s`-th largest released
    /// key; 0 until the sample fills).
    pub u: f64,
    /// Kind-specific estimate: `W̃ = s·u/ℓ` for `l1-now`, the retained
    /// weight sum for the sample-carrying kinds, 0 for `stats`.
    pub estimate: f64,
    /// The duplication factor `ℓ` in force (1 unless the stream runs the
    /// L1 query).
    pub ell: u64,
    /// Site slots currently attached.
    pub sites_attached: u32,
    /// Site slots that have completed with Eof.
    pub sites_eof: u32,
    /// Site → coordinator messages processed.
    pub up_msgs: u64,
    /// Coordinator → site messages sent (broadcasts count `k`).
    pub down_msgs: u64,
    /// Upstream bytes (exact wire sizes).
    pub up_bytes: u64,
    /// Downstream bytes (broadcast bytes count `k`-fold).
    pub down_bytes: u64,
    /// Broadcast events (each costing `k` messages).
    pub broadcast_events: u64,
    /// The kind-specific entry set: the current sample, the heavy-hitter
    /// candidates (heaviest first), or the window survivors; empty for
    /// `stats`.
    pub sample: Vec<Keyed>,
}

impl LiveSnapshot {
    /// Serializes the snapshot as a single-line JSON object. Shared by
    /// `dwrs serve`, `dwrs query --format json`, and the daemon-smoke
    /// artifacts so every path emits the identical shape.
    pub fn to_json(&self, stream: &str) -> String {
        let epoch = match self.epoch {
            Some(e) => e.to_string(),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\"stream\":\"{}\",\"kind\":\"{}\",\"items\":{},",
                "\"epoch\":{},\"u\":{},\"estimate\":{},\"ell\":{},",
                "\"sites_attached\":{},\"sites_eof\":{},",
                "\"up_messages\":{},\"down_messages\":{},",
                "\"up_bytes\":{},\"down_bytes\":{},\"broadcast_events\":{},",
                "\"sample_size\":{}}}"
            ),
            json_escape(stream),
            self.kind.name(),
            self.items,
            epoch,
            json_f64(self.u),
            json_f64(self.estimate),
            self.ell,
            self.sites_attached,
            self.sites_eof,
            self.up_msgs,
            self.down_msgs,
            self.up_bytes,
            self.down_bytes,
            self.broadcast_events,
            self.sample.len(),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers (the swor::wire conventions).

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, WireError> {
    let bytes = buf
        .get(at..at + 8)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u64::from_le_bytes(bytes))
}

fn get_u32(buf: &[u8], at: usize) -> Result<u32, WireError> {
    let bytes = buf
        .get(at..at + 4)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u32::from_le_bytes(bytes))
}

fn get_f64(buf: &[u8], at: usize) -> Result<f64, WireError> {
    get_u64(buf, at).map(f64::from_bits)
}

/// Reads a `u16`-length-prefixed UTF-8 string at `at`, returning the
/// string and the offset just past it.
fn get_str(buf: &[u8], at: usize) -> Result<(String, usize), WireError> {
    let len_bytes = buf
        .get(at..at + 2)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    let len = u16::from_le_bytes(len_bytes) as usize;
    let bytes = buf.get(at + 2..at + 2 + len).ok_or(WireError::Truncated)?;
    let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadField)?;
    Ok((s.to_string(), at + 2 + len))
}

fn check_finite_positive(x: f64) -> Result<f64, WireError> {
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(WireError::BadField)
    }
}

// ---------------------------------------------------------------------------
// CtrlMsg codec.

impl FrameCodec for CtrlMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtrlMsg::Create {
                stream,
                k,
                s,
                query,
            } => {
                buf.push(TAG_CREATE);
                put_str(buf, stream);
                put_u32(buf, *k);
                put_u32(buf, *s);
                put_str(buf, query);
            }
            CtrlMsg::Attach { stream, site } => {
                buf.push(TAG_ATTACH);
                put_str(buf, stream);
                put_u32(buf, *site);
            }
            CtrlMsg::Query { stream, kind, arg } => {
                buf.push(TAG_QUERY);
                put_str(buf, stream);
                buf.push(kind.as_u8());
                put_u64(buf, *arg);
            }
            CtrlMsg::Drain { stream } => {
                buf.push(TAG_DRAIN);
                put_str(buf, stream);
            }
            CtrlMsg::Shutdown => buf.push(TAG_SHUTDOWN),
        }
    }

    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        match tag {
            TAG_CREATE => {
                let (stream, at) = get_str(buf, 1)?;
                let k = get_u32(buf, at)?;
                let s = get_u32(buf, at + 4)?;
                let (query, end) = get_str(buf, at + 8)?;
                if stream.is_empty() || k == 0 || s == 0 {
                    return Err(WireError::BadField);
                }
                Ok((
                    CtrlMsg::Create {
                        stream,
                        k,
                        s,
                        query,
                    },
                    end,
                ))
            }
            TAG_ATTACH => {
                let (stream, at) = get_str(buf, 1)?;
                let site = get_u32(buf, at)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Attach { stream, site }, at + 4))
            }
            TAG_QUERY => {
                let (stream, at) = get_str(buf, 1)?;
                let kind_byte = *buf.get(at).ok_or(WireError::Truncated)?;
                let kind = LiveQueryKind::from_u8(kind_byte).ok_or(WireError::BadField)?;
                let arg = get_u64(buf, at + 1)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Query { stream, kind, arg }, at + 9))
            }
            TAG_DRAIN => {
                let (stream, end) = get_str(buf, 1)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Drain { stream }, end))
            }
            TAG_SHUTDOWN => Ok((CtrlMsg::Shutdown, 1)),
            other => Err(WireError::BadTag(other)),
        }
    }
}

// ---------------------------------------------------------------------------
// CtrlResp codec.

/// Fixed bytes of an encoded snapshot before the variable parts: tag-free
/// header of kind, items, epoch flag, u, estimate, ell, attached, eof and
/// the five accounting counters, then the `u32` entry count. The optional
/// 8-byte epoch value and the entries follow.
const SNAPSHOT_HEADER_BYTES: usize = 1 + 8 + 1 + 8 + 8 + 8 + 4 + 4 + 5 * 8 + 4;

fn encode_snapshot(snap: &LiveSnapshot, buf: &mut Vec<u8>) {
    buf.push(snap.kind.as_u8());
    put_u64(buf, snap.items);
    match snap.epoch {
        Some(e) => {
            buf.push(1);
            put_u64(buf, e as u64);
        }
        None => buf.push(0),
    }
    put_f64(buf, snap.u);
    put_f64(buf, snap.estimate);
    put_u64(buf, snap.ell);
    put_u32(buf, snap.sites_attached);
    put_u32(buf, snap.sites_eof);
    put_u64(buf, snap.up_msgs);
    put_u64(buf, snap.down_msgs);
    put_u64(buf, snap.up_bytes);
    put_u64(buf, snap.down_bytes);
    put_u64(buf, snap.broadcast_events);
    debug_assert!(snap.sample.len() <= u32::MAX as usize);
    put_u32(buf, snap.sample.len() as u32);
    for kd in &snap.sample {
        put_u64(buf, kd.item.id);
        put_f64(buf, kd.item.weight);
        put_f64(buf, kd.key);
    }
}

fn decode_snapshot(buf: &[u8], at: usize) -> Result<(LiveSnapshot, usize), WireError> {
    let kind_byte = *buf.get(at).ok_or(WireError::Truncated)?;
    let kind = LiveQueryKind::from_u8(kind_byte).ok_or(WireError::BadField)?;
    let items = get_u64(buf, at + 1)?;
    let epoch_flag = *buf.get(at + 9).ok_or(WireError::Truncated)?;
    let (epoch, mut off) = match epoch_flag {
        0 => (None, at + 10),
        1 => (Some(get_u64(buf, at + 10)? as i64), at + 18),
        _ => return Err(WireError::BadField),
    };
    let u = get_f64(buf, off)?;
    let estimate = get_f64(buf, off + 8)?;
    let ell = get_u64(buf, off + 16)?;
    let sites_attached = get_u32(buf, off + 24)?;
    let sites_eof = get_u32(buf, off + 28)?;
    let up_msgs = get_u64(buf, off + 32)?;
    let down_msgs = get_u64(buf, off + 40)?;
    let up_bytes = get_u64(buf, off + 48)?;
    let down_bytes = get_u64(buf, off + 56)?;
    let broadcast_events = get_u64(buf, off + 64)?;
    let count = get_u32(buf, off + 72)? as usize;
    off += 76;
    if !u.is_finite() || u < 0.0 || !estimate.is_finite() || ell == 0 {
        return Err(WireError::BadField);
    }
    // Bound the claimed entry count by the bytes actually present before
    // allocating (the decode_sync discipline): a hostile count cannot
    // force a large allocation.
    if count > buf.len().saturating_sub(off) / SNAPSHOT_ENTRY_BYTES {
        return Err(WireError::Truncated);
    }
    let mut sample = Vec::with_capacity(count);
    for _ in 0..count {
        let id = get_u64(buf, off)?;
        let weight = check_finite_positive(get_f64(buf, off + 8)?)?;
        let key = check_finite_positive(get_f64(buf, off + 16)?)?;
        sample.push(Keyed::new(Item::new(id, weight), key));
        off += SNAPSHOT_ENTRY_BYTES;
    }
    Ok((
        LiveSnapshot {
            kind,
            items,
            epoch,
            u,
            estimate,
            ell,
            sites_attached,
            sites_eof,
            up_msgs,
            down_msgs,
            up_bytes,
            down_bytes,
            broadcast_events,
            sample,
        },
        off,
    ))
}

/// Exact encoded size of a snapshot (excluding the response tag byte).
pub fn snapshot_len(sample_len: usize, epoch_present: bool) -> usize {
    SNAPSHOT_HEADER_BYTES + if epoch_present { 8 } else { 0 } + sample_len * SNAPSHOT_ENTRY_BYTES
}

impl FrameCodec for CtrlResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtrlResp::Ok { info } => {
                buf.push(TAG_OK);
                put_str(buf, info);
            }
            CtrlResp::Err { msg } => {
                buf.push(TAG_ERR);
                put_str(buf, msg);
            }
            CtrlResp::Attached {
                site,
                resumed,
                items,
            } => {
                buf.push(TAG_ATTACHED);
                put_u32(buf, *site);
                buf.push(u8::from(*resumed));
                put_u64(buf, *items);
            }
            CtrlResp::Answer { snapshot } => {
                buf.push(TAG_ANSWER);
                encode_snapshot(snapshot, buf);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        match tag {
            TAG_OK => {
                let (info, end) = get_str(buf, 1)?;
                Ok((CtrlResp::Ok { info }, end))
            }
            TAG_ERR => {
                let (msg, end) = get_str(buf, 1)?;
                Ok((CtrlResp::Err { msg }, end))
            }
            TAG_ATTACHED => {
                let site = get_u32(buf, 1)?;
                let resumed = match *buf.get(5).ok_or(WireError::Truncated)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadField),
                };
                let items = get_u64(buf, 6)?;
                Ok((
                    CtrlResp::Attached {
                        site,
                        resumed,
                        items,
                    },
                    14,
                ))
            }
            TAG_ANSWER => {
                let (snapshot, end) = decode_snapshot(buf, 1)?;
                Ok((CtrlResp::Answer { snapshot }, end))
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> LiveSnapshot {
        LiveSnapshot {
            kind: LiveQueryKind::L1Now,
            items: 123_456,
            epoch: Some(-3),
            u: 17.5,
            estimate: 120_000.0,
            ell: 9,
            sites_attached: 3,
            sites_eof: 1,
            up_msgs: 512,
            down_msgs: 64,
            up_bytes: 10_240,
            down_bytes: 576,
            broadcast_events: 8,
            sample: vec![
                Keyed::new(Item::new(7, 2.0), 40.0),
                Keyed::new(Item::new(9, 1.0), 11.25),
            ],
        }
    }

    fn roundtrip<T: FrameCodec + PartialEq + std::fmt::Debug>(msg: &T) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let (back, used) = T::decode(&buf).expect("decode");
        assert_eq!(&back, msg);
        assert_eq!(used, buf.len(), "must consume the whole encoding");
    }

    #[test]
    fn roundtrip_all_msg_variants() {
        roundtrip(&CtrlMsg::Create {
            stream: "clicks".into(),
            k: 8,
            s: 64,
            query: "l1:0.2,0.25".into(),
        });
        roundtrip(&CtrlMsg::Attach {
            stream: "clicks".into(),
            site: 3,
        });
        for kind in LiveQueryKind::all() {
            roundtrip(&CtrlMsg::Query {
                stream: "x".into(),
                kind,
                arg: 100_000,
            });
        }
        roundtrip(&CtrlMsg::Drain {
            stream: "clicks".into(),
        });
        roundtrip(&CtrlMsg::Shutdown);
    }

    #[test]
    fn roundtrip_all_resp_variants() {
        roundtrip(&CtrlResp::Ok {
            info: "created".into(),
        });
        roundtrip(&CtrlResp::Err {
            msg: "no such stream".into(),
        });
        roundtrip(&CtrlResp::Attached {
            site: 2,
            resumed: true,
            items: 5000,
        });
        roundtrip(&CtrlResp::Answer {
            snapshot: sample_snapshot(),
        });
        let mut no_epoch = sample_snapshot();
        no_epoch.epoch = None;
        no_epoch.sample.clear();
        no_epoch.kind = LiveQueryKind::Stats;
        roundtrip(&CtrlResp::Answer { snapshot: no_epoch });
    }

    #[test]
    fn snapshot_len_matches_encoding() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        CtrlResp::Answer {
            snapshot: snap.clone(),
        }
        .encode(&mut buf);
        assert_eq!(buf.len(), 1 + snapshot_len(snap.sample.len(), true));
        let mut no_epoch = snap;
        no_epoch.epoch = None;
        let mut buf2 = Vec::new();
        CtrlResp::Answer { snapshot: no_epoch }.encode(&mut buf2);
        assert_eq!(buf2.len(), buf.len() - 8);
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(CtrlMsg::decode(&[0x7f]), Err(WireError::BadTag(0x7f)));
        assert_eq!(CtrlResp::decode(&[0x7f]), Err(WireError::BadTag(0x7f)));
        assert_eq!(CtrlMsg::decode(&[]), Err(WireError::Truncated));
        assert_eq!(CtrlResp::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        CtrlMsg::Create {
            stream: "s".into(),
            k: 2,
            s: 4,
            query: "swor".into(),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                CtrlMsg::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut resp = Vec::new();
        CtrlResp::Answer {
            snapshot: sample_snapshot(),
        }
        .encode(&mut resp);
        for cut in 0..resp.len() {
            assert!(CtrlResp::decode(&resp[..cut]).is_err());
        }
    }

    #[test]
    fn domain_violations_are_bad_fields() {
        // Empty stream name.
        let mut buf = Vec::new();
        CtrlMsg::Drain { stream: "x".into() }.encode(&mut buf);
        buf[1] = 0;
        buf[2] = 0;
        let truncated = &buf[..3];
        assert_eq!(CtrlMsg::decode(truncated), Err(WireError::BadField));

        // k = 0 in Create.
        let mut create = Vec::new();
        CtrlMsg::Create {
            stream: "s".into(),
            k: 1,
            s: 1,
            query: "swor".into(),
        }
        .encode(&mut create);
        create[4] = 0; // k's low byte (tag + u16 len + 1-byte name)
        assert_eq!(CtrlMsg::decode(&create), Err(WireError::BadField));

        // Invalid UTF-8 in a string field.
        let mut bad_utf8 = vec![TAG_DRAIN, 1, 0, 0xff];
        assert_eq!(CtrlMsg::decode(&bad_utf8), Err(WireError::BadField));
        bad_utf8[3] = b'x';
        assert!(CtrlMsg::decode(&bad_utf8).is_ok());

        // Unknown query kind byte.
        let mut q = Vec::new();
        CtrlMsg::Query {
            stream: "s".into(),
            kind: LiveQueryKind::Stats,
            arg: 0,
        }
        .encode(&mut q);
        let kind_at = 1 + 2 + 1;
        q[kind_at] = 99;
        assert_eq!(CtrlMsg::decode(&q), Err(WireError::BadField));

        // Bool bytes other than 0/1.
        let mut att = Vec::new();
        CtrlResp::Attached {
            site: 0,
            resumed: false,
            items: 0,
        }
        .encode(&mut att);
        att[5] = 2;
        assert_eq!(CtrlResp::decode(&att), Err(WireError::BadField));
    }

    #[test]
    fn snapshot_rejects_nonpositive_entries() {
        let mut snap = sample_snapshot();
        snap.sample[0].item.weight = 1.0;
        let mut buf = Vec::new();
        CtrlResp::Answer { snapshot: snap }.encode(&mut buf);
        // Overwrite the first entry's weight with -1.0 in place.
        let entry_at = buf.len() - 2 * SNAPSHOT_ENTRY_BYTES;
        buf[entry_at + 8..entry_at + 16].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));
        // And a NaN key likewise.
        buf[entry_at + 8..entry_at + 16].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        buf[entry_at + 16..entry_at + 24].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));
    }

    #[test]
    fn hostile_entry_count_is_bounded_before_allocation() {
        let mut snap = sample_snapshot();
        snap.sample.clear();
        let mut buf = Vec::new();
        CtrlResp::Answer { snapshot: snap }.encode(&mut buf);
        // Claim u32::MAX entries with no entry bytes present: must fail
        // with Truncated (checked before any allocation), not OOM.
        let count_at = buf.len() - 4;
        buf[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn json_shape_is_stable() {
        let snap = sample_snapshot();
        let js = snap.to_json("clicks");
        assert!(js.starts_with("{\"stream\":\"clicks\",\"kind\":\"l1-now\","));
        assert!(js.contains("\"items\":123456"));
        assert!(js.contains("\"epoch\":-3"));
        assert!(js.contains("\"sample_size\":2"));
        let mut none = snap;
        none.epoch = None;
        assert!(none.to_json("a\"b").contains("\"stream\":\"a\\\"b\""));
        assert!(none.to_json("x").contains("\"epoch\":null"));
    }
}
