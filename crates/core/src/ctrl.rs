//! Control-protocol frames for the long-lived sampling daemon.
//!
//! The daemon (`dwrs-runtime::daemon`) hosts many concurrent *named
//! streams* and answers live queries while they run. Clients speak a small
//! request/response protocol over the same `[u32 LE length][payload]`
//! framing as the data plane ([`crate::framed`]): every control payload is
//! one [`CtrlMsg`] (client → daemon) or [`CtrlResp`] (daemon → client).
//!
//! Layouts follow the `swor::wire` conventions exactly: a one-byte tag,
//! little-endian fixed-width integers, `f64` as IEEE-754 bits, and strings
//! as a `u16` length followed by UTF-8 bytes. Decoding is *total* — any
//! byte string either decodes or returns a [`WireError`], never panics —
//! and validates counts against the available bytes **before** allocating
//! (the same discipline as `swor::wire::decode_sync`). The framing layer's
//! `MAX_FRAME_LEN` guard applies unchanged.
//!
//! The byte layout of every frame is documented operator-facing in
//! `docs/DAEMON.md`; a doc-sync test asserts the two stay aligned.

use crate::framed::FrameCodec;
use crate::item::{Item, Keyed};
use crate::swor::wire::WireError;

/// Tag byte of [`CtrlMsg::Create`].
pub const TAG_CREATE: u8 = 0x40;
/// Tag byte of [`CtrlMsg::Attach`].
pub const TAG_ATTACH: u8 = 0x41;
/// Tag byte of [`CtrlMsg::Query`].
pub const TAG_QUERY: u8 = 0x42;
/// Tag byte of [`CtrlMsg::Drain`].
pub const TAG_DRAIN: u8 = 0x43;
/// Tag byte of [`CtrlMsg::Shutdown`].
pub const TAG_SHUTDOWN: u8 = 0x44;
/// Tag byte of [`CtrlMsg::Metrics`].
pub const TAG_METRICS: u8 = 0x45;
/// Tag byte of [`CtrlResp::Ok`].
pub const TAG_OK: u8 = 0x50;
/// Tag byte of [`CtrlResp::Err`].
pub const TAG_ERR: u8 = 0x51;
/// Tag byte of [`CtrlResp::Attached`].
pub const TAG_ATTACHED: u8 = 0x52;
/// Tag byte of [`CtrlResp::Answer`].
pub const TAG_ANSWER: u8 = 0x53;
/// Tag byte of [`CtrlResp::Metrics`].
pub const TAG_METRICS_REPORT: u8 = 0x54;

/// Bytes per encoded sample entry in a [`LiveSnapshot`]: `u64` id,
/// `f64` weight, `f64` key.
pub const SNAPSHOT_ENTRY_BYTES: usize = 24;

/// The live query kinds a running stream can answer mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveQueryKind {
    /// The coordinator's current weighted sample (query set).
    CurrentSample,
    /// The L1 estimate `W̃ = s·u/ℓ` at this instant.
    L1Now,
    /// The residual-heavy-hitter candidate set so far (top `2/ε` sample
    /// items by weight).
    RhhSoFar,
    /// The sample filtered to the trailing window of arrivals.
    WindowNow,
    /// Per-tier message/byte accounting only (no sample entries).
    Stats,
}

impl LiveQueryKind {
    /// The wire discriminant byte.
    pub fn as_u8(self) -> u8 {
        match self {
            LiveQueryKind::CurrentSample => 0,
            LiveQueryKind::L1Now => 1,
            LiveQueryKind::RhhSoFar => 2,
            LiveQueryKind::WindowNow => 3,
            LiveQueryKind::Stats => 4,
        }
    }

    /// Decodes a wire discriminant byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(LiveQueryKind::CurrentSample),
            1 => Some(LiveQueryKind::L1Now),
            2 => Some(LiveQueryKind::RhhSoFar),
            3 => Some(LiveQueryKind::WindowNow),
            4 => Some(LiveQueryKind::Stats),
            _ => None,
        }
    }

    /// The operator-facing name (`dwrs query --kind <name>`).
    pub fn name(self) -> &'static str {
        match self {
            LiveQueryKind::CurrentSample => "current-sample",
            LiveQueryKind::L1Now => "l1-now",
            LiveQueryKind::RhhSoFar => "rhh-so-far",
            LiveQueryKind::WindowNow => "window-now",
            LiveQueryKind::Stats => "stats",
        }
    }

    /// Parses an operator-facing name (aliases: `sample`, `l1`, `rhh`,
    /// `window`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "current-sample" | "sample" => Some(LiveQueryKind::CurrentSample),
            "l1-now" | "l1" => Some(LiveQueryKind::L1Now),
            "rhh-so-far" | "rhh" => Some(LiveQueryKind::RhhSoFar),
            "window-now" | "window" => Some(LiveQueryKind::WindowNow),
            "stats" => Some(LiveQueryKind::Stats),
            _ => None,
        }
    }

    /// All kinds, in wire-discriminant order.
    pub fn all() -> [LiveQueryKind; 5] {
        [
            LiveQueryKind::CurrentSample,
            LiveQueryKind::L1Now,
            LiveQueryKind::RhhSoFar,
            LiveQueryKind::WindowNow,
            LiveQueryKind::Stats,
        ]
    }
}

/// A client → daemon control request.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlMsg {
    /// Creates stream `stream` with `k` site slots, base sample size `s`,
    /// and application query `query` (a `Query::parse` spec such as
    /// `"swor"` or `"l1:0.2,0.25"`). Creating an existing stream is a
    /// no-op acknowledged with [`CtrlResp::Ok`]; the original
    /// configuration wins.
    Create {
        /// Stream name (non-empty, at most `u16::MAX` UTF-8 bytes).
        stream: String,
        /// Number of site slots `k` (≥ 1).
        k: u32,
        /// Base sample size `s` (≥ 1); the query may derive a larger
        /// effective size.
        s: u32,
        /// Application query spec.
        query: String,
    },
    /// Attaches this connection as site `site` of stream `stream`; the
    /// connection then switches to the data-plane framing (`TAG_BATCH` /
    /// `TAG_EOF`). Reattaching a previously detached slot resumes it.
    Attach {
        /// Stream name.
        stream: String,
        /// Site slot in `0..k`.
        site: u32,
    },
    /// Answers a live query against the stream's current state.
    Query {
        /// Stream name.
        stream: String,
        /// Which live answer to extract.
        kind: LiveQueryKind,
        /// Kind-specific argument: the window length in arrivals for
        /// [`LiveQueryKind::WindowNow`] (0 = the stream's own window);
        /// ignored otherwise.
        arg: u64,
    },
    /// Waits until every attached site has sent Eof or detached, then
    /// returns the final snapshot and removes the stream.
    Drain {
        /// Stream name.
        stream: String,
    },
    /// Drains every stream and stops the daemon.
    Shutdown,
    /// Scrapes the daemon's telemetry: global registry samples plus one
    /// [`StreamMetrics`] per live stream, each captured through the
    /// stream's own command queue (the same consistent cut live queries
    /// get).
    Metrics {
        /// Most-recent trace events to include per ring (0 = counters and
        /// gauges only, no event history).
        events: u32,
    },
}

/// A daemon → client control response.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlResp {
    /// Generic acknowledgement.
    Ok {
        /// Human-readable detail (e.g. `"created"` / `"exists"`).
        info: String,
    },
    /// The request failed; the stream (if any) is unaffected.
    Err {
        /// Human-readable reason.
        msg: String,
    },
    /// An [`CtrlMsg::Attach`] was accepted; the connection is now the
    /// slot's data link.
    Attached {
        /// The confirmed site slot.
        site: u32,
        /// Whether the slot had fed items before (reconnect).
        resumed: bool,
        /// Items the slot had contributed before this attach.
        items: u64,
    },
    /// A live answer ([`CtrlMsg::Query`] or [`CtrlMsg::Drain`]).
    Answer {
        /// The snapshot at the instant the stream processor answered.
        snapshot: LiveSnapshot,
    },
    /// A telemetry scrape ([`CtrlMsg::Metrics`]).
    Metrics {
        /// The daemon-wide report at the instant of the scrape.
        report: MetricsReport,
    },
}

/// A stream's state at one instant, as carried by [`CtrlResp::Answer`].
///
/// This is the incremental form of a `RunReport`: items observed so far,
/// the current epoch/threshold, the kind-specific estimate, and the
/// per-tier message/byte accounting at that instant. Because the threaded
/// engines run in the delayed-delivery regime, a snapshot reflects the
/// frames the coordinator has *processed*, which may trail what sites
/// have sent.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveSnapshot {
    /// Which live answer the `sample`/`estimate` fields carry.
    pub kind: LiveQueryKind,
    /// Items observed across all site slots (sum of batch watermarks).
    pub items: u64,
    /// The coordinator's current epoch `j` (`None` before the first
    /// epoch broadcast).
    pub epoch: Option<i64>,
    /// The current threshold statistic `u` (the `s`-th largest released
    /// key; 0 until the sample fills).
    pub u: f64,
    /// Kind-specific estimate: `W̃ = s·u/ℓ` for `l1-now`, the retained
    /// weight sum for the sample-carrying kinds, 0 for `stats`.
    pub estimate: f64,
    /// The duplication factor `ℓ` in force (1 unless the stream runs the
    /// L1 query).
    pub ell: u64,
    /// Site slots currently attached.
    pub sites_attached: u32,
    /// Site slots that have completed with Eof.
    pub sites_eof: u32,
    /// Site → coordinator messages processed.
    pub up_msgs: u64,
    /// Coordinator → site messages sent (broadcasts count `k`).
    pub down_msgs: u64,
    /// Upstream bytes (exact wire sizes).
    pub up_bytes: u64,
    /// Downstream bytes (broadcast bytes count `k`-fold).
    pub down_bytes: u64,
    /// Broadcast events (each costing `k` messages).
    pub broadcast_events: u64,
    /// The kind-specific entry set: the current sample, the heavy-hitter
    /// candidates (heaviest first), or the window survivors; empty for
    /// `stats`.
    pub sample: Vec<Keyed>,
}

impl LiveSnapshot {
    /// Serializes the snapshot as a single-line JSON object. Shared by
    /// `dwrs serve`, `dwrs query --format json`, and the daemon-smoke
    /// artifacts so every path emits the identical shape.
    pub fn to_json(&self, stream: &str) -> String {
        let epoch = match self.epoch {
            Some(e) => e.to_string(),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\"stream\":\"{}\",\"kind\":\"{}\",\"items\":{},",
                "\"epoch\":{},\"u\":{},\"estimate\":{},\"ell\":{},",
                "\"sites_attached\":{},\"sites_eof\":{},",
                "\"up_messages\":{},\"down_messages\":{},",
                "\"up_bytes\":{},\"down_bytes\":{},\"broadcast_events\":{},",
                "\"sample_size\":{}}}"
            ),
            json_escape(stream),
            self.kind.name(),
            self.items,
            epoch,
            json_f64(self.u),
            json_f64(self.estimate),
            self.ell,
            self.sites_attached,
            self.sites_eof,
            self.up_msgs,
            self.down_msgs,
            self.up_bytes,
            self.down_bytes,
            self.broadcast_events,
            self.sample.len(),
        )
    }
}

/// What a metric's single `value` means in a [`MetricSample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Instantaneous level that can move both ways.
    Gauge,
    /// ε-approximate distribution; `value` is the observation count and
    /// the percentiles ride in the attached [`HistSummary`].
    Histogram,
}

impl MetricKind {
    /// The wire discriminant byte.
    pub fn as_u8(self) -> u8 {
        match self {
            MetricKind::Counter => 0,
            MetricKind::Gauge => 1,
            MetricKind::Histogram => 2,
        }
    }

    /// Decodes a wire discriminant byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(MetricKind::Counter),
            1 => Some(MetricKind::Gauge),
            2 => Some(MetricKind::Histogram),
            _ => None,
        }
    }

    /// The Prometheus exposition `# TYPE` name (histograms render as
    /// `summary` because the sketch reports quantiles, not buckets).
    pub fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

/// Sketch-backed percentile digest of one histogram metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSummary {
    /// Observations folded into the sketch.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum observation.
    pub max: f64,
}

/// One named metric in a scrape: a counter/gauge value, or a histogram's
/// count plus its [`HistSummary`] percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Metric name (`dwrs_..._total` style, stable across releases).
    pub name: String,
    /// How to read `value`.
    pub kind: MetricKind,
    /// Counter/gauge value, or the histogram observation count.
    pub value: f64,
    /// Percentiles for histogram metrics; `None` for counters/gauges or
    /// empty histograms.
    pub hist: Option<HistSummary>,
}

/// One structured event from a fixed-capacity trace ring.
///
/// Events carry two untyped payload words whose meaning depends on the
/// code (documented per event in `docs/DAEMON.md`); codes map to names via
/// the `dwrs-telemetry` trace catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-ring sequence number (gaps mean the ring wrapped).
    pub seq: u64,
    /// Nanoseconds since the owning process's telemetry epoch
    /// (monotonic; comparable within one report, not across daemons).
    pub nanos: u64,
    /// Event code (see the trace catalog).
    pub code: u8,
    /// First payload word (e.g. a site slot).
    pub a: u64,
    /// Second payload word (e.g. an item count).
    pub b: u64,
}

/// Encoded size of one [`TraceEvent`]: `u64` seq + `u64` nanos + code byte
/// + two `u64` payload words.
pub const TRACE_EVENT_BYTES: usize = 8 + 8 + 1 + 8 + 8;

/// Per-stream telemetry captured through the stream's command queue, so
/// every number reflects one consistent instant of that stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamMetrics {
    /// Stream name.
    pub stream: String,
    /// The application query spec the stream runs.
    pub query: String,
    /// Items observed across all site slots.
    pub items: u64,
    /// Site slots currently attached.
    pub sites_attached: u32,
    /// Site slots completed with Eof.
    pub sites_eof: u32,
    /// Commands waiting in the stream's queue when the scrape ran.
    pub queue_depth: u32,
    /// The queue's bound.
    pub queue_capacity: u32,
    /// Live queries answered so far (drains are not counted).
    pub queries: u64,
    /// Per-query service latency percentiles in nanoseconds, measured
    /// from dequeue to answer inside the stream processor.
    pub latency: Option<HistSummary>,
    /// Most recent trace-ring events for this stream, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A whole-daemon telemetry scrape: registry samples, daemon-level trace
/// events, and one [`StreamMetrics`] per live stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Monotonic nanoseconds since the daemon's telemetry epoch at the
    /// instant the report was assembled. Consecutive scrapes subtract
    /// these to turn item counters into rates.
    pub now_nanos: u64,
    /// Nanoseconds the daemon has been up.
    pub uptime_nanos: u64,
    /// Streams created over the daemon's lifetime (a counter; `streams`
    /// holds only the live ones).
    pub streams_created: u64,
    /// Global registry contents, sorted by name.
    pub samples: Vec<MetricSample>,
    /// Daemon-level trace events (accepts, ctrl errors, shutdown),
    /// oldest first.
    pub events: Vec<TraceEvent>,
    /// Per-stream sections, sorted by stream name.
    pub streams: Vec<StreamMetrics>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers (the swor::wire conventions).

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, WireError> {
    let bytes = buf
        .get(at..at + 8)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u64::from_le_bytes(bytes))
}

fn get_u32(buf: &[u8], at: usize) -> Result<u32, WireError> {
    let bytes = buf
        .get(at..at + 4)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u32::from_le_bytes(bytes))
}

fn get_f64(buf: &[u8], at: usize) -> Result<f64, WireError> {
    get_u64(buf, at).map(f64::from_bits)
}

/// Reads a `u16`-length-prefixed UTF-8 string at `at`, returning the
/// string and the offset just past it.
fn get_str(buf: &[u8], at: usize) -> Result<(String, usize), WireError> {
    let len_bytes = buf
        .get(at..at + 2)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("slice length checked");
    let len = u16::from_le_bytes(len_bytes) as usize;
    let bytes = buf.get(at + 2..at + 2 + len).ok_or(WireError::Truncated)?;
    let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadField)?;
    Ok((s.to_string(), at + 2 + len))
}

fn check_finite_positive(x: f64) -> Result<f64, WireError> {
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(WireError::BadField)
    }
}

// ---------------------------------------------------------------------------
// CtrlMsg codec.

impl FrameCodec for CtrlMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtrlMsg::Create {
                stream,
                k,
                s,
                query,
            } => {
                buf.push(TAG_CREATE);
                put_str(buf, stream);
                put_u32(buf, *k);
                put_u32(buf, *s);
                put_str(buf, query);
            }
            CtrlMsg::Attach { stream, site } => {
                buf.push(TAG_ATTACH);
                put_str(buf, stream);
                put_u32(buf, *site);
            }
            CtrlMsg::Query { stream, kind, arg } => {
                buf.push(TAG_QUERY);
                put_str(buf, stream);
                buf.push(kind.as_u8());
                put_u64(buf, *arg);
            }
            CtrlMsg::Drain { stream } => {
                buf.push(TAG_DRAIN);
                put_str(buf, stream);
            }
            CtrlMsg::Shutdown => buf.push(TAG_SHUTDOWN),
            CtrlMsg::Metrics { events } => {
                buf.push(TAG_METRICS);
                put_u32(buf, *events);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        match tag {
            TAG_CREATE => {
                let (stream, at) = get_str(buf, 1)?;
                let k = get_u32(buf, at)?;
                let s = get_u32(buf, at + 4)?;
                let (query, end) = get_str(buf, at + 8)?;
                if stream.is_empty() || k == 0 || s == 0 {
                    return Err(WireError::BadField);
                }
                Ok((
                    CtrlMsg::Create {
                        stream,
                        k,
                        s,
                        query,
                    },
                    end,
                ))
            }
            TAG_ATTACH => {
                let (stream, at) = get_str(buf, 1)?;
                let site = get_u32(buf, at)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Attach { stream, site }, at + 4))
            }
            TAG_QUERY => {
                let (stream, at) = get_str(buf, 1)?;
                let kind_byte = *buf.get(at).ok_or(WireError::Truncated)?;
                let kind = LiveQueryKind::from_u8(kind_byte).ok_or(WireError::BadField)?;
                let arg = get_u64(buf, at + 1)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Query { stream, kind, arg }, at + 9))
            }
            TAG_DRAIN => {
                let (stream, end) = get_str(buf, 1)?;
                if stream.is_empty() {
                    return Err(WireError::BadField);
                }
                Ok((CtrlMsg::Drain { stream }, end))
            }
            TAG_SHUTDOWN => Ok((CtrlMsg::Shutdown, 1)),
            TAG_METRICS => {
                let events = get_u32(buf, 1)?;
                Ok((CtrlMsg::Metrics { events }, 5))
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

// ---------------------------------------------------------------------------
// CtrlResp codec.

/// Fixed bytes of an encoded snapshot before the variable parts: tag-free
/// header of kind, items, epoch flag, u, estimate, ell, attached, eof and
/// the five accounting counters, then the `u32` entry count. The optional
/// 8-byte epoch value and the entries follow.
const SNAPSHOT_HEADER_BYTES: usize = 1 + 8 + 1 + 8 + 8 + 8 + 4 + 4 + 5 * 8 + 4;

fn encode_snapshot(snap: &LiveSnapshot, buf: &mut Vec<u8>) {
    buf.push(snap.kind.as_u8());
    put_u64(buf, snap.items);
    match snap.epoch {
        Some(e) => {
            buf.push(1);
            put_u64(buf, e as u64);
        }
        None => buf.push(0),
    }
    put_f64(buf, snap.u);
    put_f64(buf, snap.estimate);
    put_u64(buf, snap.ell);
    put_u32(buf, snap.sites_attached);
    put_u32(buf, snap.sites_eof);
    put_u64(buf, snap.up_msgs);
    put_u64(buf, snap.down_msgs);
    put_u64(buf, snap.up_bytes);
    put_u64(buf, snap.down_bytes);
    put_u64(buf, snap.broadcast_events);
    debug_assert!(snap.sample.len() <= u32::MAX as usize);
    put_u32(buf, snap.sample.len() as u32);
    for kd in &snap.sample {
        put_u64(buf, kd.item.id);
        put_f64(buf, kd.item.weight);
        put_f64(buf, kd.key);
    }
}

fn decode_snapshot(buf: &[u8], at: usize) -> Result<(LiveSnapshot, usize), WireError> {
    let kind_byte = *buf.get(at).ok_or(WireError::Truncated)?;
    let kind = LiveQueryKind::from_u8(kind_byte).ok_or(WireError::BadField)?;
    let items = get_u64(buf, at + 1)?;
    let epoch_flag = *buf.get(at + 9).ok_or(WireError::Truncated)?;
    let (epoch, mut off) = match epoch_flag {
        0 => (None, at + 10),
        1 => (Some(get_u64(buf, at + 10)? as i64), at + 18),
        _ => return Err(WireError::BadField),
    };
    let u = get_f64(buf, off)?;
    let estimate = get_f64(buf, off + 8)?;
    let ell = get_u64(buf, off + 16)?;
    let sites_attached = get_u32(buf, off + 24)?;
    let sites_eof = get_u32(buf, off + 28)?;
    let up_msgs = get_u64(buf, off + 32)?;
    let down_msgs = get_u64(buf, off + 40)?;
    let up_bytes = get_u64(buf, off + 48)?;
    let down_bytes = get_u64(buf, off + 56)?;
    let broadcast_events = get_u64(buf, off + 64)?;
    let count = get_u32(buf, off + 72)? as usize;
    off += 76;
    if !u.is_finite() || u < 0.0 || !estimate.is_finite() || ell == 0 {
        return Err(WireError::BadField);
    }
    // Bound the claimed entry count by the bytes actually present before
    // allocating (the decode_sync discipline): a hostile count cannot
    // force a large allocation.
    if count > buf.len().saturating_sub(off) / SNAPSHOT_ENTRY_BYTES {
        return Err(WireError::Truncated);
    }
    let mut sample = Vec::with_capacity(count);
    for _ in 0..count {
        let id = get_u64(buf, off)?;
        let weight = check_finite_positive(get_f64(buf, off + 8)?)?;
        let key = check_finite_positive(get_f64(buf, off + 16)?)?;
        sample.push(Keyed::new(Item::new(id, weight), key));
        off += SNAPSHOT_ENTRY_BYTES;
    }
    Ok((
        LiveSnapshot {
            kind,
            items,
            epoch,
            u,
            estimate,
            ell,
            sites_attached,
            sites_eof,
            up_msgs,
            down_msgs,
            up_bytes,
            down_bytes,
            broadcast_events,
            sample,
        },
        off,
    ))
}

/// Exact encoded size of a snapshot (excluding the response tag byte).
pub fn snapshot_len(sample_len: usize, epoch_present: bool) -> usize {
    SNAPSHOT_HEADER_BYTES + if epoch_present { 8 } else { 0 } + sample_len * SNAPSHOT_ENTRY_BYTES
}

// ---------------------------------------------------------------------------
// MetricsReport codec.

/// Smallest possible encoded [`MetricSample`]: empty name, kind byte,
/// value, absent-hist flag. Bounds hostile sample counts before allocation.
const SAMPLE_MIN_BYTES: usize = 2 + 1 + 8 + 1;

/// Smallest possible encoded [`StreamMetrics`]: two empty strings, the
/// fixed counters, absent-latency flag, empty event list.
const STREAM_MIN_BYTES: usize = 2 + 2 + 8 + 4 + 4 + 4 + 4 + 8 + 1 + 4;

fn check_finite(x: f64) -> Result<f64, WireError> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(WireError::BadField)
    }
}

fn encode_hist(h: &Option<HistSummary>, buf: &mut Vec<u8>) {
    match h {
        None => buf.push(0),
        Some(h) => {
            buf.push(1);
            put_u64(buf, h.count);
            put_f64(buf, h.p50);
            put_f64(buf, h.p90);
            put_f64(buf, h.p95);
            put_f64(buf, h.p99);
            put_f64(buf, h.max);
        }
    }
}

fn decode_hist(buf: &[u8], at: usize) -> Result<(Option<HistSummary>, usize), WireError> {
    match *buf.get(at).ok_or(WireError::Truncated)? {
        0 => Ok((None, at + 1)),
        1 => {
            let count = get_u64(buf, at + 1)?;
            let p50 = check_finite(get_f64(buf, at + 9)?)?;
            let p90 = check_finite(get_f64(buf, at + 17)?)?;
            let p95 = check_finite(get_f64(buf, at + 25)?)?;
            let p99 = check_finite(get_f64(buf, at + 33)?)?;
            let max = check_finite(get_f64(buf, at + 41)?)?;
            Ok((
                Some(HistSummary {
                    count,
                    p50,
                    p90,
                    p95,
                    p99,
                    max,
                }),
                at + 49,
            ))
        }
        _ => Err(WireError::BadField),
    }
}

fn encode_events(events: &[TraceEvent], buf: &mut Vec<u8>) {
    debug_assert!(events.len() <= u32::MAX as usize);
    put_u32(buf, events.len() as u32);
    for e in events {
        put_u64(buf, e.seq);
        put_u64(buf, e.nanos);
        buf.push(e.code);
        put_u64(buf, e.a);
        put_u64(buf, e.b);
    }
}

fn decode_events(buf: &[u8], at: usize) -> Result<(Vec<TraceEvent>, usize), WireError> {
    let count = get_u32(buf, at)? as usize;
    let mut off = at + 4;
    if count > buf.len().saturating_sub(off) / TRACE_EVENT_BYTES {
        return Err(WireError::Truncated);
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let seq = get_u64(buf, off)?;
        let nanos = get_u64(buf, off + 8)?;
        let code = *buf.get(off + 16).ok_or(WireError::Truncated)?;
        let a = get_u64(buf, off + 17)?;
        let b = get_u64(buf, off + 25)?;
        events.push(TraceEvent {
            seq,
            nanos,
            code,
            a,
            b,
        });
        off += TRACE_EVENT_BYTES;
    }
    Ok((events, off))
}

fn encode_report(report: &MetricsReport, buf: &mut Vec<u8>) {
    put_u64(buf, report.now_nanos);
    put_u64(buf, report.uptime_nanos);
    put_u64(buf, report.streams_created);
    debug_assert!(report.samples.len() <= u32::MAX as usize);
    put_u32(buf, report.samples.len() as u32);
    for s in &report.samples {
        put_str(buf, &s.name);
        buf.push(s.kind.as_u8());
        put_f64(buf, s.value);
        encode_hist(&s.hist, buf);
    }
    encode_events(&report.events, buf);
    debug_assert!(report.streams.len() <= u32::MAX as usize);
    put_u32(buf, report.streams.len() as u32);
    for st in &report.streams {
        put_str(buf, &st.stream);
        put_str(buf, &st.query);
        put_u64(buf, st.items);
        put_u32(buf, st.sites_attached);
        put_u32(buf, st.sites_eof);
        put_u32(buf, st.queue_depth);
        put_u32(buf, st.queue_capacity);
        put_u64(buf, st.queries);
        encode_hist(&st.latency, buf);
        encode_events(&st.events, buf);
    }
}

fn decode_report(buf: &[u8], at: usize) -> Result<(MetricsReport, usize), WireError> {
    let now_nanos = get_u64(buf, at)?;
    let uptime_nanos = get_u64(buf, at + 8)?;
    let streams_created = get_u64(buf, at + 16)?;
    let sample_count = get_u32(buf, at + 24)? as usize;
    let mut off = at + 28;
    if sample_count > buf.len().saturating_sub(off) / SAMPLE_MIN_BYTES {
        return Err(WireError::Truncated);
    }
    let mut samples = Vec::with_capacity(sample_count);
    for _ in 0..sample_count {
        let (name, next) = get_str(buf, off)?;
        let kind_byte = *buf.get(next).ok_or(WireError::Truncated)?;
        let kind = MetricKind::from_u8(kind_byte).ok_or(WireError::BadField)?;
        let value = check_finite(get_f64(buf, next + 1)?)?;
        let (hist, next) = decode_hist(buf, next + 9)?;
        if name.is_empty() {
            return Err(WireError::BadField);
        }
        samples.push(MetricSample {
            name,
            kind,
            value,
            hist,
        });
        off = next;
    }
    let (events, next) = decode_events(buf, off)?;
    off = next;
    let stream_count = get_u32(buf, off)? as usize;
    off += 4;
    if stream_count > buf.len().saturating_sub(off) / STREAM_MIN_BYTES {
        return Err(WireError::Truncated);
    }
    let mut streams = Vec::with_capacity(stream_count);
    for _ in 0..stream_count {
        let (stream, next) = get_str(buf, off)?;
        let (query, next) = get_str(buf, next)?;
        let items = get_u64(buf, next)?;
        let sites_attached = get_u32(buf, next + 8)?;
        let sites_eof = get_u32(buf, next + 12)?;
        let queue_depth = get_u32(buf, next + 16)?;
        let queue_capacity = get_u32(buf, next + 20)?;
        let queries = get_u64(buf, next + 24)?;
        let (latency, next) = decode_hist(buf, next + 32)?;
        let (stream_events, next) = decode_events(buf, next)?;
        if stream.is_empty() {
            return Err(WireError::BadField);
        }
        streams.push(StreamMetrics {
            stream,
            query,
            items,
            sites_attached,
            sites_eof,
            queue_depth,
            queue_capacity,
            queries,
            latency,
            events: stream_events,
        });
        off = next;
    }
    Ok((
        MetricsReport {
            now_nanos,
            uptime_nanos,
            streams_created,
            samples,
            events,
            streams,
        },
        off,
    ))
}

impl FrameCodec for CtrlResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtrlResp::Ok { info } => {
                buf.push(TAG_OK);
                put_str(buf, info);
            }
            CtrlResp::Err { msg } => {
                buf.push(TAG_ERR);
                put_str(buf, msg);
            }
            CtrlResp::Attached {
                site,
                resumed,
                items,
            } => {
                buf.push(TAG_ATTACHED);
                put_u32(buf, *site);
                buf.push(u8::from(*resumed));
                put_u64(buf, *items);
            }
            CtrlResp::Answer { snapshot } => {
                buf.push(TAG_ANSWER);
                encode_snapshot(snapshot, buf);
            }
            CtrlResp::Metrics { report } => {
                buf.push(TAG_METRICS_REPORT);
                encode_report(report, buf);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        match tag {
            TAG_OK => {
                let (info, end) = get_str(buf, 1)?;
                Ok((CtrlResp::Ok { info }, end))
            }
            TAG_ERR => {
                let (msg, end) = get_str(buf, 1)?;
                Ok((CtrlResp::Err { msg }, end))
            }
            TAG_ATTACHED => {
                let site = get_u32(buf, 1)?;
                let resumed = match *buf.get(5).ok_or(WireError::Truncated)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadField),
                };
                let items = get_u64(buf, 6)?;
                Ok((
                    CtrlResp::Attached {
                        site,
                        resumed,
                        items,
                    },
                    14,
                ))
            }
            TAG_ANSWER => {
                let (snapshot, end) = decode_snapshot(buf, 1)?;
                Ok((CtrlResp::Answer { snapshot }, end))
            }
            TAG_METRICS_REPORT => {
                let (report, end) = decode_report(buf, 1)?;
                Ok((CtrlResp::Metrics { report }, end))
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> LiveSnapshot {
        LiveSnapshot {
            kind: LiveQueryKind::L1Now,
            items: 123_456,
            epoch: Some(-3),
            u: 17.5,
            estimate: 120_000.0,
            ell: 9,
            sites_attached: 3,
            sites_eof: 1,
            up_msgs: 512,
            down_msgs: 64,
            up_bytes: 10_240,
            down_bytes: 576,
            broadcast_events: 8,
            sample: vec![
                Keyed::new(Item::new(7, 2.0), 40.0),
                Keyed::new(Item::new(9, 1.0), 11.25),
            ],
        }
    }

    fn roundtrip<T: FrameCodec + PartialEq + std::fmt::Debug>(msg: &T) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let (back, used) = T::decode(&buf).expect("decode");
        assert_eq!(&back, msg);
        assert_eq!(used, buf.len(), "must consume the whole encoding");
    }

    #[test]
    fn roundtrip_all_msg_variants() {
        roundtrip(&CtrlMsg::Create {
            stream: "clicks".into(),
            k: 8,
            s: 64,
            query: "l1:0.2,0.25".into(),
        });
        roundtrip(&CtrlMsg::Attach {
            stream: "clicks".into(),
            site: 3,
        });
        for kind in LiveQueryKind::all() {
            roundtrip(&CtrlMsg::Query {
                stream: "x".into(),
                kind,
                arg: 100_000,
            });
        }
        roundtrip(&CtrlMsg::Drain {
            stream: "clicks".into(),
        });
        roundtrip(&CtrlMsg::Shutdown);
    }

    #[test]
    fn roundtrip_all_resp_variants() {
        roundtrip(&CtrlResp::Ok {
            info: "created".into(),
        });
        roundtrip(&CtrlResp::Err {
            msg: "no such stream".into(),
        });
        roundtrip(&CtrlResp::Attached {
            site: 2,
            resumed: true,
            items: 5000,
        });
        roundtrip(&CtrlResp::Answer {
            snapshot: sample_snapshot(),
        });
        let mut no_epoch = sample_snapshot();
        no_epoch.epoch = None;
        no_epoch.sample.clear();
        no_epoch.kind = LiveQueryKind::Stats;
        roundtrip(&CtrlResp::Answer { snapshot: no_epoch });
    }

    #[test]
    fn snapshot_len_matches_encoding() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        CtrlResp::Answer {
            snapshot: snap.clone(),
        }
        .encode(&mut buf);
        assert_eq!(buf.len(), 1 + snapshot_len(snap.sample.len(), true));
        let mut no_epoch = snap;
        no_epoch.epoch = None;
        let mut buf2 = Vec::new();
        CtrlResp::Answer { snapshot: no_epoch }.encode(&mut buf2);
        assert_eq!(buf2.len(), buf.len() - 8);
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(CtrlMsg::decode(&[0x7f]), Err(WireError::BadTag(0x7f)));
        assert_eq!(CtrlResp::decode(&[0x7f]), Err(WireError::BadTag(0x7f)));
        assert_eq!(CtrlMsg::decode(&[]), Err(WireError::Truncated));
        assert_eq!(CtrlResp::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        CtrlMsg::Create {
            stream: "s".into(),
            k: 2,
            s: 4,
            query: "swor".into(),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                CtrlMsg::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut resp = Vec::new();
        CtrlResp::Answer {
            snapshot: sample_snapshot(),
        }
        .encode(&mut resp);
        for cut in 0..resp.len() {
            assert!(CtrlResp::decode(&resp[..cut]).is_err());
        }
    }

    #[test]
    fn domain_violations_are_bad_fields() {
        // Empty stream name.
        let mut buf = Vec::new();
        CtrlMsg::Drain { stream: "x".into() }.encode(&mut buf);
        buf[1] = 0;
        buf[2] = 0;
        let truncated = &buf[..3];
        assert_eq!(CtrlMsg::decode(truncated), Err(WireError::BadField));

        // k = 0 in Create.
        let mut create = Vec::new();
        CtrlMsg::Create {
            stream: "s".into(),
            k: 1,
            s: 1,
            query: "swor".into(),
        }
        .encode(&mut create);
        create[4] = 0; // k's low byte (tag + u16 len + 1-byte name)
        assert_eq!(CtrlMsg::decode(&create), Err(WireError::BadField));

        // Invalid UTF-8 in a string field.
        let mut bad_utf8 = vec![TAG_DRAIN, 1, 0, 0xff];
        assert_eq!(CtrlMsg::decode(&bad_utf8), Err(WireError::BadField));
        bad_utf8[3] = b'x';
        assert!(CtrlMsg::decode(&bad_utf8).is_ok());

        // Unknown query kind byte.
        let mut q = Vec::new();
        CtrlMsg::Query {
            stream: "s".into(),
            kind: LiveQueryKind::Stats,
            arg: 0,
        }
        .encode(&mut q);
        let kind_at = 1 + 2 + 1;
        q[kind_at] = 99;
        assert_eq!(CtrlMsg::decode(&q), Err(WireError::BadField));

        // Bool bytes other than 0/1.
        let mut att = Vec::new();
        CtrlResp::Attached {
            site: 0,
            resumed: false,
            items: 0,
        }
        .encode(&mut att);
        att[5] = 2;
        assert_eq!(CtrlResp::decode(&att), Err(WireError::BadField));
    }

    #[test]
    fn snapshot_rejects_nonpositive_entries() {
        let mut snap = sample_snapshot();
        snap.sample[0].item.weight = 1.0;
        let mut buf = Vec::new();
        CtrlResp::Answer { snapshot: snap }.encode(&mut buf);
        // Overwrite the first entry's weight with -1.0 in place.
        let entry_at = buf.len() - 2 * SNAPSHOT_ENTRY_BYTES;
        buf[entry_at + 8..entry_at + 16].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));
        // And a NaN key likewise.
        buf[entry_at + 8..entry_at + 16].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        buf[entry_at + 16..entry_at + 24].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));
    }

    #[test]
    fn hostile_entry_count_is_bounded_before_allocation() {
        let mut snap = sample_snapshot();
        snap.sample.clear();
        let mut buf = Vec::new();
        CtrlResp::Answer { snapshot: snap }.encode(&mut buf);
        // Claim u32::MAX entries with no entry bytes present: must fail
        // with Truncated (checked before any allocation), not OOM.
        let count_at = buf.len() - 4;
        buf[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::Truncated));
    }

    fn sample_report() -> MetricsReport {
        MetricsReport {
            now_nanos: 1_000_000_007,
            uptime_nanos: 999_999_999,
            streams_created: 3,
            samples: vec![
                MetricSample {
                    name: "dwrs_items_total".into(),
                    kind: MetricKind::Counter,
                    value: 123456.0,
                    hist: None,
                },
                MetricSample {
                    name: "dwrs_queue_depth".into(),
                    kind: MetricKind::Gauge,
                    value: 3.0,
                    hist: None,
                },
                MetricSample {
                    name: "dwrs_query_latency_ns".into(),
                    kind: MetricKind::Histogram,
                    value: 17.0,
                    hist: Some(HistSummary {
                        count: 17,
                        p50: 1200.0,
                        p90: 2500.0,
                        p95: 3000.0,
                        p99: 8000.0,
                        max: 9000.0,
                    }),
                },
            ],
            events: vec![TraceEvent {
                seq: 1,
                nanos: 42,
                code: 9,
                a: 0,
                b: 0,
            }],
            streams: vec![StreamMetrics {
                stream: "clicks".into(),
                query: "l1:0.2,0.25".into(),
                items: 50_000,
                sites_attached: 4,
                sites_eof: 1,
                queue_depth: 2,
                queue_capacity: 64,
                queries: 9,
                latency: Some(HistSummary {
                    count: 9,
                    p50: 900.0,
                    p90: 1500.0,
                    p95: 1700.0,
                    p99: 2000.0,
                    max: 2100.0,
                }),
                events: vec![
                    TraceEvent {
                        seq: 10,
                        nanos: 100,
                        code: 1,
                        a: 2,
                        b: 0,
                    },
                    TraceEvent {
                        seq: 11,
                        nanos: 200,
                        code: 4,
                        a: 0,
                        b: 7,
                    },
                ],
            }],
        }
    }

    #[test]
    fn roundtrip_metrics_frames() {
        roundtrip(&CtrlMsg::Metrics { events: 32 });
        roundtrip(&CtrlResp::Metrics {
            report: sample_report(),
        });
        // Degenerate report: nothing registered, no streams.
        roundtrip(&CtrlResp::Metrics {
            report: MetricsReport {
                now_nanos: 0,
                uptime_nanos: 0,
                streams_created: 0,
                samples: vec![],
                events: vec![],
                streams: vec![],
            },
        });
    }

    #[test]
    fn truncated_metrics_report_is_rejected() {
        let mut buf = Vec::new();
        CtrlResp::Metrics {
            report: sample_report(),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                CtrlResp::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn hostile_metrics_counts_are_bounded_before_allocation() {
        let empty = MetricsReport {
            now_nanos: 0,
            uptime_nanos: 0,
            streams_created: 0,
            samples: vec![],
            events: vec![],
            streams: vec![],
        };
        // Claim u32::MAX samples / events / streams with no bytes present:
        // each must fail Truncated, before any allocation.
        let mut buf = Vec::new();
        CtrlResp::Metrics {
            report: empty.clone(),
        }
        .encode(&mut buf);
        // Layout after the tag: 3×u64, then sample count at offset 25.
        for count_at in [25usize, 29, 33] {
            let mut hostile = buf.clone();
            hostile[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert_eq!(
                CtrlResp::decode(&hostile),
                Err(WireError::Truncated),
                "count at {count_at}"
            );
        }
        let _ = empty;
    }

    #[test]
    fn metrics_report_domain_violations() {
        // Unknown metric kind byte.
        let mut report = sample_report();
        report.streams.clear();
        report.events.clear();
        report.samples.truncate(1);
        let mut buf = Vec::new();
        CtrlResp::Metrics {
            report: report.clone(),
        }
        .encode(&mut buf);
        let name_len = report.samples[0].name.len();
        let kind_at = 1 + 24 + 4 + 2 + name_len;
        buf[kind_at] = 99;
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));

        // NaN metric value.
        buf[kind_at] = MetricKind::Counter.as_u8();
        buf[kind_at + 1..kind_at + 9].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));

        // Hist flag byte other than 0/1.
        buf[kind_at + 1..kind_at + 9].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        buf[kind_at + 9] = 2;
        assert_eq!(CtrlResp::decode(&buf), Err(WireError::BadField));
    }

    #[test]
    fn json_shape_is_stable() {
        let snap = sample_snapshot();
        let js = snap.to_json("clicks");
        assert!(js.starts_with("{\"stream\":\"clicks\",\"kind\":\"l1-now\","));
        assert!(js.contains("\"items\":123456"));
        assert!(js.contains("\"epoch\":-3"));
        assert!(js.contains("\"sample_size\":2"));
        let mut none = snap;
        none.epoch = None;
        assert!(none.to_json("a\"b").contains("\"stream\":\"a\\\"b\""));
        assert!(none.to_json("x").contains("\"epoch\":null"));
    }
}
