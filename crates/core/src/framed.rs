//! Generic length-prefixed framing over any byte stream.
//!
//! [`super::swor::wire`] fixes the *payload* encoding of each protocol
//! message; this module adds the transport-facing layer on top: a
//! [`FrameCodec`] trait (implemented for [`UpMsg`]/[`DownMsg`] by delegating
//! to `swor::wire`) and [`FramedWriter`]/[`FramedReader`], which move
//! `u32`-length-prefixed blobs over any `std::io` stream. The runtime's
//! loopback-TCP transport is built from exactly these pieces, so bytes on a
//! real socket are byte-identical to what the simulator meters.
//!
//! Framing format: `[len: u32 LE][payload: len bytes]`, with `len` capped by
//! [`MAX_FRAME_LEN`] so a corrupt or adversarial peer cannot trigger an
//! unbounded allocation.

use std::io::{self, Read, Write};

use crate::swor::messages::{DownMsg, SyncMsg, UpMsg};
use crate::swor::wire::{self, WireError};

/// Hard cap on a single frame's payload size (1 MiB). Protocol messages are
/// O(1) machine words; even a maximal up-batch stays far below this. The
/// largest frame in practice is a [`SyncMsg`] carrying a whole keyed sample
/// (24 bytes per entry), which fits sample sizes up to ~43 000 under the
/// cap.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// A self-delimiting binary codec: values encode to a byte sequence whose
/// length is recoverable during decode, so frames can be concatenated.
pub trait FrameCodec: Sized {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`, returning it together
    /// with the number of bytes consumed.
    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError>;
}

impl FrameCodec for UpMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::encode_up(self, buf);
    }
    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        wire::decode_up(buf)
    }
}

impl FrameCodec for DownMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::encode_down(self, buf);
    }
    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        wire::decode_down(buf)
    }
}

impl FrameCodec for SyncMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::encode_sync(self, buf);
    }
    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        wire::decode_sync(buf)
    }
}

/// Encodes a sequence of codec values back-to-back into one payload.
pub fn encode_seq<T: FrameCodec>(msgs: &[T], buf: &mut Vec<u8>) {
    for m in msgs {
        m.encode(buf);
    }
}

/// Decodes a payload of back-to-back frames produced by [`encode_seq`].
/// Trailing garbage (a frame boundary that does not land exactly on the end
/// of the payload) is an error: framed transports deliver whole payloads.
pub fn decode_seq<T: FrameCodec>(mut buf: &[u8]) -> Result<Vec<T>, WireError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (msg, used) = T::decode(buf)?;
        out.push(msg);
        buf = &buf[used..];
    }
    Ok(out)
}

/// Maps a payload-level decode failure into `io::ErrorKind::InvalidData`.
fn invalid(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Writes `u32`-length-prefixed frames to an underlying byte sink.
///
/// Every frame is assembled — length prefix and payload — in one reusable
/// scratch buffer and shipped with a *single* `write_all`, so a steady
/// send loop performs one syscall per frame and no allocations once the
/// scratch has grown to the working frame size (pre-sizable via
/// [`FramedWriter::reserve_frame`]).
#[derive(Debug)]
pub struct FramedWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FramedWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// Pre-sizes the internal scratch for frames up to `payload_len` bytes
    /// (clamped to [`MAX_FRAME_LEN`]), so the first frames of a hot send
    /// loop do not regrow it.
    pub fn reserve_frame(&mut self, payload_len: usize) {
        let want = payload_len.min(MAX_FRAME_LEN as usize) + 4;
        if self.scratch.capacity() < want {
            self.scratch.reserve(want - self.scratch.len());
        }
    }

    /// Writes one frame whose payload is produced by `fill` directly into
    /// the writer's scratch buffer — the zero-copy, single-syscall path the
    /// transport send loops use. The length prefix is patched in after
    /// `fill` returns; an over-[`MAX_FRAME_LEN`] payload is rejected before
    /// anything reaches the sink.
    pub fn write_frame_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; 4]);
        fill(&mut self.scratch);
        let payload_len = self.scratch.len() - 4;
        let len = u32::try_from(payload_len)
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("frame of {payload_len} bytes exceeds MAX_FRAME_LEN"),
                )
            })?;
        self.scratch[..4].copy_from_slice(&len.to_le_bytes());
        self.inner.write_all(&self.scratch)
    }

    /// Writes one raw payload as a frame.
    pub fn write_blob(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
            ));
        }
        self.write_frame_with(|buf| buf.extend_from_slice(payload))
    }

    /// Encodes one codec value and writes it as a single frame.
    pub fn write_msg<T: FrameCodec>(&mut self, msg: &T) -> io::Result<()> {
        self.write_frame_with(|buf| msg.encode(buf))
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Borrows the underlying sink (e.g. to half-close a socket).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Returns the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads `u32`-length-prefixed frames from an underlying byte source.
#[derive(Debug)]
pub struct FramedReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FramedReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
        }
    }

    /// Reads the next frame's payload. Returns `Ok(None)` on a clean EOF at
    /// a frame boundary; an EOF mid-frame is `UnexpectedEof`.
    pub fn read_blob(&mut self) -> io::Result<Option<&[u8]>> {
        let mut len_bytes = [0u8; 4];
        match self.inner.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        self.buf.resize(len as usize, 0);
        self.inner.read_exact(&mut self.buf)?;
        Ok(Some(&self.buf))
    }

    /// Borrows the underlying byte source.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Returns the underlying byte source.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads and decodes the next frame as a single codec value. The frame
    /// must contain exactly one value — trailing bytes are `InvalidData`.
    pub fn read_msg<T: FrameCodec>(&mut self) -> io::Result<Option<T>> {
        let Some(payload) = self.read_blob()? else {
            return Ok(None);
        };
        let (msg, used) = T::decode(payload).map_err(invalid)?;
        if used != payload.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after frame payload",
            ));
        }
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Item;
    use std::io::Cursor;

    fn sample_ups() -> Vec<UpMsg> {
        vec![
            UpMsg::Early {
                item: Item::new(1, 2.0),
            },
            UpMsg::Regular {
                item: Item::new(2, 3.0),
                key: 9.5,
            },
            UpMsg::Early {
                item: Item::new(3, 4.5),
            },
        ]
    }

    #[test]
    fn msg_roundtrip_through_stream() {
        let mut w = FramedWriter::new(Vec::new());
        for m in &sample_ups() {
            w.write_msg(m).unwrap();
        }
        w.write_msg(&DownMsg::UpdateEpoch { threshold: 8.0 })
            .unwrap();
        let bytes = w.into_inner();
        let mut r = FramedReader::new(Cursor::new(bytes));
        for want in &sample_ups() {
            let got: UpMsg = r.read_msg().unwrap().expect("frame");
            assert_eq!(got, *want);
        }
        let down: DownMsg = r.read_msg().unwrap().expect("frame");
        assert_eq!(down, DownMsg::UpdateEpoch { threshold: 8.0 });
        assert!(r.read_msg::<UpMsg>().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn seq_roundtrip_as_one_blob() {
        let msgs = sample_ups();
        let mut payload = Vec::new();
        encode_seq(&msgs, &mut payload);
        let back: Vec<UpMsg> = decode_seq(&payload).unwrap();
        assert_eq!(back, msgs);
        let mut w = FramedWriter::new(Vec::new());
        w.write_blob(&payload).unwrap();
        let mut r = FramedReader::new(Cursor::new(w.into_inner()));
        let blob = r.read_blob().unwrap().expect("frame").to_vec();
        assert_eq!(decode_seq::<UpMsg>(&blob).unwrap(), msgs);
    }

    #[test]
    fn truncated_payload_is_unexpected_eof() {
        let mut w = FramedWriter::new(Vec::new());
        w.write_msg(&DownMsg::LevelSaturated { level: 3 }).unwrap();
        let mut bytes = w.into_inner();
        bytes.truncate(bytes.len() - 2);
        let mut r = FramedReader::new(Cursor::new(bytes));
        let err = r.read_msg::<DownMsg>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut r = FramedReader::new(Cursor::new(bytes));
        let err = r.read_blob().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_rejected() {
        let mut w = FramedWriter::new(Vec::new());
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        assert!(w.write_blob(&huge).is_err());
        // The in-place builder rejects too, after fill but before the sink
        // sees a byte (the buffer holds the 4-byte length prefix plus the
        // payload, so an oversize payload means > MAX + 4 bytes total).
        let err = w
            .write_frame_with(|buf| buf.resize(MAX_FRAME_LEN as usize + 5, 0))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(w.get_ref().is_empty(), "nothing reached the sink");
    }

    #[test]
    fn write_frame_with_builds_in_place() {
        let mut w = FramedWriter::new(Vec::new());
        w.reserve_frame(64);
        w.write_frame_with(|buf| {
            buf.push(0xAB);
            buf.extend_from_slice(&7u64.to_le_bytes());
        })
        .unwrap();
        let bytes = w.into_inner();
        // [len = 9][tag][u64] — one contiguous frame.
        assert_eq!(&bytes[..4], &9u32.to_le_bytes());
        assert_eq!(bytes[4], 0xAB);
        assert_eq!(&bytes[5..], &7u64.to_le_bytes());
    }

    #[test]
    fn garbage_payload_is_invalid_data() {
        let mut w = FramedWriter::new(Vec::new());
        w.write_blob(&[0xEE, 1, 2, 3]).unwrap();
        let mut r = FramedReader::new(Cursor::new(w.into_inner()));
        let err = r.read_msg::<UpMsg>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_in_single_msg_frame_rejected() {
        let mut payload = Vec::new();
        DownMsg::LevelSaturated { level: 1 }.encode(&mut payload);
        payload.push(0x00);
        let mut w = FramedWriter::new(Vec::new());
        w.write_blob(&payload).unwrap();
        let mut r = FramedReader::new(Cursor::new(w.into_inner()));
        let err = r.read_msg::<DownMsg>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_seq_rejects_split_frame() {
        let mut payload = Vec::new();
        encode_seq(&sample_ups(), &mut payload);
        payload.pop();
        assert_eq!(
            decode_seq::<UpMsg>(&payload),
            Err(WireError::Truncated),
            "mid-frame cut must surface as Truncated"
        );
    }
}
