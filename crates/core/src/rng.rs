//! Deterministic pseudo-random number generation.
//!
//! The crate owns its RNG (xoshiro256++ seeded through SplitMix64) instead of
//! depending on an external crate so that
//!
//! * every protocol component (each site, the coordinator, each workload
//!   generator) can be handed an independent, reproducible sub-stream;
//! * the exact samplers built on top (exponential, binomial, truncated
//!   exponential) are auditable in one place, which the distribution-level
//!   correctness proofs/tests rely on.
//!
//! xoshiro256++ is the recommended general-purpose generator of Blackman &
//! Vigna; SplitMix64 is the recommended seeder for it.

/// SplitMix64 stream, used for seeding and for cheap stateless mixing.
///
/// Passes through all 2^64 states; every call advances by the golden-ratio
/// increment and applies the finalizer of Stafford's Mix13 variant.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stateless mix of two words into one, used to derive component seeds
/// (e.g. `mix(master_seed, site_index)`).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut sm = SplitMix64::new(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let x = sm.next_u64();
    sm.next_u64() ^ x.rotate_left(23)
}

/// The crate-wide deterministic RNG: xoshiro256++.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64, as
    /// recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Self { s }
    }

    /// Derives an independent child generator; deterministic function of the
    /// parent state (advances the parent).
    pub fn fork(&mut self) -> Rng {
        Rng::new(mix(self.next_u64(), self.next_u64()))
    }

    /// Exposes the raw state (checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a generator from a previously captured state.
    ///
    /// # Panics
    /// Panics on the all-zero state (not reachable from any seed).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in the *open* interval `(0, 1)`; safe input for `ln`.
    #[inline]
    pub fn open01(&mut self) -> f64 {
        // (x + 0.5) * 2^-53 with x in [0, 2^53) lies in (0, 1).
        (((self.next_u64() >> 11) as f64) + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponential random variable with rate 1 (mean 1).
    #[inline]
    pub fn exp(&mut self) -> f64 {
        -self.open01().ln()
    }

    /// An exponential random variable with rate `lambda`.
    #[inline]
    pub fn exp_rate(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        self.exp() / lambda
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection method. Panics if `n == 0`.
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.range(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Standard normal variate (polar Marsaglia method).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Known first output for seed 0.
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut a = Rng::new(7);
        let mut c1 = a.fork();
        let mut c2 = a.fork();
        let x: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let y: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.open01();
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn range_unbiased_small_bound() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.range(5) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 5.0;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn exp_has_mean_one() {
        let mut r = Rng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng::new(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-1.0));
        assert!(r.bernoulli(2.0));
    }
}
