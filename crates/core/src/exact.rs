//! Exact weighted-SWOR oracle for small instances.
//!
//! Computes, by exhaustive dynamic programming, the exact inclusion
//! probability of every item in a weighted sample without replacement of
//! size `s` (Definition 1 of the paper: draw `s` times, each draw
//! proportional to weight among the not-yet-drawn items).
//!
//! Used as ground truth by the statistical correctness experiments (E4): the
//! empirical inclusion frequencies of any correct sampler must converge to
//! these values.
//!
//! Complexity is `O(2^n · n)`; instances are capped at `n ≤ 20`.

/// Maximum instance size accepted by the oracle.
pub const MAX_ORACLE_ITEMS: usize = 20;

/// Exact inclusion probabilities for a weighted SWOR of size `s` from
/// `weights`.
///
/// Returns `p[i] = P(item i ∈ sample)`. If `s >= n` every probability is 1.
///
/// # Panics
/// Panics if `weights.len() > MAX_ORACLE_ITEMS`, if any weight is
/// non-positive, or if `s == 0`.
pub fn inclusion_probabilities(weights: &[f64], s: usize) -> Vec<f64> {
    let n = weights.len();
    assert!(
        n <= MAX_ORACLE_ITEMS,
        "oracle limited to {MAX_ORACLE_ITEMS} items"
    );
    assert!(s >= 1, "sample size must be >= 1");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );
    if s >= n {
        return vec![1.0; n];
    }
    let total: f64 = weights.iter().sum();
    // f[mask] = probability that the first popcount(mask) draws selected
    // exactly the set `mask` (in some order).
    let full = 1usize << n;
    let mut f = vec![0.0f64; full];
    f[0] = 1.0;
    // Pre-compute subset weights incrementally: wsum[mask].
    let mut wsum = vec![0.0f64; full];
    for mask in 1..full {
        let low = mask.trailing_zeros() as usize;
        wsum[mask] = wsum[mask & (mask - 1)] + weights[low];
    }
    let mut incl = vec![0.0f64; n];
    for mask in 0..full {
        let size = mask.count_ones() as usize;
        if size >= s || f[mask] == 0.0 {
            if size == s {
                // Accumulate inclusion for all members.
                let mut m = mask;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    incl[i] += f[mask];
                    m &= m - 1;
                }
            }
            continue;
        }
        let remaining = total - wsum[mask];
        debug_assert!(remaining > 0.0);
        // Extend by each item not in mask.
        for (i, &w) in weights.iter().enumerate() {
            if mask & (1 << i) == 0 {
                f[mask | (1 << i)] += f[mask] * w / remaining;
            }
        }
    }
    incl
}

/// Exact probability that the *first* draw is item `i`: `w_i / W` — the
/// definitional marginal used in quick sanity tests.
pub fn first_draw_probabilities(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    weights.iter().map(|&w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_give_s_over_n() {
        let w = vec![1.0; 6];
        let p = inclusion_probabilities(&w, 2);
        for &pi in &p {
            assert!((pi - 2.0 / 6.0).abs() < 1e-12, "pi = {pi}");
        }
    }

    #[test]
    fn probabilities_sum_to_s() {
        let w = vec![1.0, 2.0, 3.0, 4.0, 0.5, 7.0];
        for s in 1..=5 {
            let p = inclusion_probabilities(&w, s);
            let sum: f64 = p.iter().sum();
            assert!((sum - s as f64).abs() < 1e-10, "s={s}, sum={sum}");
        }
    }

    #[test]
    fn s_equals_n_gives_ones() {
        let w = vec![1.0, 5.0, 2.0];
        let p = inclusion_probabilities(&w, 3);
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
        let p = inclusion_probabilities(&w, 10);
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn two_items_s1_closed_form() {
        let p = inclusion_probabilities(&[1.0, 3.0], 1);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn three_items_s2_closed_form() {
        // Weights 1,1,2 (W=4); P(item 2 of weight 2 in sample of 2):
        // 1 - P(2 not drawn in 2 draws)
        // P(not) = sum over first picks i in {0,1}: (w_i/4)*(w_other/(4-w_i))
        // = (1/4)*(1/3) + (1/4)*(1/3) = 1/6. So p2 = 5/6.
        let p = inclusion_probabilities(&[1.0, 1.0, 2.0], 2);
        assert!((p[2] - 5.0 / 6.0).abs() < 1e-12, "p2 = {}", p[2]);
        assert!((p[0] - p[1]).abs() < 1e-12);
        assert!((p[0] - (2.0 - 5.0 / 6.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_weight() {
        let w = vec![0.5, 1.0, 2.0, 4.0, 8.0];
        let p = inclusion_probabilities(&w, 2);
        for i in 1..w.len() {
            assert!(p[i] > p[i - 1], "inclusion not monotone at {i}");
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let w = [3.0, 1.0, 1.0, 5.0, 2.0];
        let s = 2;
        let p = inclusion_probabilities(&w, s);
        let mut rng = crate::rng::Rng::new(77);
        let trials = 200_000;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            // Simulate definitional SWOR.
            let mut avail: Vec<usize> = (0..w.len()).collect();
            for _ in 0..s {
                let tot: f64 = avail.iter().map(|&i| w[i]).sum();
                let mut x = rng.f64() * tot;
                let mut pick = avail.len() - 1;
                for (j, &i) in avail.iter().enumerate() {
                    if x < w[i] {
                        pick = j;
                        break;
                    }
                    x -= w[i];
                }
                counts[avail[pick]] += 1;
                avail.remove(pick);
            }
        }
        for i in 0..w.len() {
            let emp = counts[i] as f64 / trials as f64;
            let se = (p[i] * (1.0 - p[i]) / trials as f64).sqrt();
            assert!(
                (emp - p[i]).abs() < 6.0 * se + 1e-4,
                "item {i}: emp {emp} vs exact {}",
                p[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oversize_instance_rejected() {
        let w = vec![1.0; 21];
        let _ = inclusion_probabilities(&w, 2);
    }
}
