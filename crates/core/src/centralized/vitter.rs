//! Vitter's Algorithm R — classic unweighted reservoir sampling (reference
//! \[33\] of the paper; the "reservoir sampling" the paper generalizes).
//!
//! Maintains a uniform sample without replacement of size `s`: item `t > s`
//! replaces a uniformly random reservoir slot with probability `s/t`.

use super::StreamSampler;
use crate::item::Item;
use crate::rng::Rng;

/// Algorithm R reservoir sampler (unweighted SWOR).
#[derive(Debug)]
pub struct VitterR {
    reservoir: Vec<Item>,
    cap: usize,
    rng: Rng,
    observed: u64,
}

impl VitterR {
    /// Creates a reservoir of size `s`.
    pub fn new(s: usize, seed: u64) -> Self {
        assert!(s >= 1);
        Self {
            reservoir: Vec::with_capacity(s),
            cap: s,
            rng: Rng::new(seed),
            observed: 0,
        }
    }
}

impl StreamSampler for VitterR {
    fn observe(&mut self, item: Item) {
        self.observed += 1;
        if self.reservoir.len() < self.cap {
            self.reservoir.push(item);
            return;
        }
        let j = self.rng.range(self.observed);
        if (j as usize) < self.cap {
            self.reservoir[j as usize] = item;
        }
    }

    fn sample(&self) -> Vec<Item> {
        self.reservoir.clone()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_inclusion() {
        let n = 10usize;
        let s = 3usize;
        let trials = 60_000u64;
        let mut counts = vec![0u64; n];
        for t in 0..trials {
            let mut v = VitterR::new(s, t + 1);
            for i in 0..n {
                v.observe(Item::unit(i as u64));
            }
            for it in v.sample() {
                counts[it.id as usize] += 1;
            }
        }
        let p = s as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / trials as f64;
            let se = (p * (1.0 - p) / trials as f64).sqrt();
            assert!((emp - p).abs() < 6.0 * se, "item {i}: {emp} vs {p}");
        }
    }

    #[test]
    fn prefix_sample_exact() {
        let mut v = VitterR::new(5, 1);
        for i in 0..4u64 {
            v.observe(Item::unit(i));
        }
        let mut ids: Vec<u64> = v.sample().iter().map(|x| x.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
