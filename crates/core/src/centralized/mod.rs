//! Centralized (single-machine) reference samplers.
//!
//! These are the classical sequential algorithms the paper builds on or
//! cites. They serve three purposes here:
//!
//! 1. **ground truth** — the distributed samplers must agree in distribution
//!    with these (validated statistically in tests and experiment E4);
//! 2. **baselines** — e.g. Efraimidis–Spirakis \[18\] is the sequential
//!    weighted SWOR the paper generalizes;
//! 3. **documentation** — each module states the algorithm's origin.

pub mod efraimidis;
pub mod expclock;
pub mod swr;
pub mod vitter;

pub use efraimidis::{AExpJ, ARes};
pub use expclock::ExpClockSwor;
pub use swr::OnlineWeightedSwr;
pub use vitter::VitterR;

use crate::item::Item;

/// Common interface over centralized one-pass samplers.
pub trait StreamSampler {
    /// Feeds the next stream item.
    fn observe(&mut self, item: Item);
    /// Returns the current sample (order unspecified).
    fn sample(&self) -> Vec<Item>;
    /// Number of items observed so far.
    fn observed(&self) -> u64;
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::StreamSampler;
    use crate::exact::inclusion_probabilities;
    use crate::item::Item;

    /// Runs `trials` independent executions of a sampler factory over
    /// `weights` and checks empirical inclusion frequencies against the
    /// exact oracle within 6 standard errors.
    pub fn check_swor_inclusion<F, S>(weights: &[f64], s: usize, trials: u32, mut make: F)
    where
        F: FnMut(u64) -> S,
        S: StreamSampler,
    {
        let exact = inclusion_probabilities(weights, s);
        let mut counts = vec![0u64; weights.len()];
        for trial in 0..trials {
            let mut sampler = make(trial as u64);
            for (i, &w) in weights.iter().enumerate() {
                sampler.observe(Item::new(i as u64, w));
            }
            for it in sampler.sample() {
                counts[it.id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / trials as f64;
            let p = exact[i];
            let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-9);
            assert!(
                (emp - p).abs() < 6.0 * se + 2e-3,
                "item {i}: empirical {emp:.4} vs exact {p:.4}"
            );
        }
    }
}
