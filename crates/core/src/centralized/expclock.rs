//! Exponential-clock weighted SWOR — the centralized version of the paper's
//! own precision-sampling scheme (Proposition 1).
//!
//! Keys are `v = w/t`, `t ~ Exp(1)`; keep the top-`s`. This is the exact key
//! distribution used by the distributed algorithm, so it is the canonical
//! reference when testing distributional equality between the distributed
//! protocol and a centralized run.

use super::StreamSampler;
use crate::item::{Item, Keyed};
use crate::keys::assign_key;
use crate::rng::Rng;
use crate::topk::TopK;

/// Centralized precision-sampling SWOR.
#[derive(Debug)]
pub struct ExpClockSwor {
    topk: TopK,
    rng: Rng,
    observed: u64,
}

impl ExpClockSwor {
    /// Creates a sampler of size `s` with the given seed.
    pub fn new(s: usize, seed: u64) -> Self {
        Self {
            topk: TopK::new(s),
            rng: Rng::new(seed),
            observed: 0,
        }
    }

    /// Current sample with keys, largest first.
    pub fn sample_keyed(&self) -> Vec<Keyed> {
        self.topk.sorted_desc()
    }

    /// The s-th largest key (0 until the reservoir is full) — the statistic
    /// the L1 tracker concentrates on.
    pub fn u(&self) -> f64 {
        self.topk.u()
    }
}

impl StreamSampler for ExpClockSwor {
    fn observe(&mut self, item: Item) {
        self.observed += 1;
        let keyed = assign_key(item, &mut self.rng);
        self.topk.offer(keyed);
    }

    fn sample(&self) -> Vec<Item> {
        self.topk.iter().map(|k| k.item).collect()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_util::check_swor_inclusion;

    #[test]
    fn inclusion_matches_oracle() {
        check_swor_inclusion(&[5.0, 1.0, 1.0, 2.0, 8.0], 2, 40_000, |seed| {
            ExpClockSwor::new(2, seed.wrapping_mul(6364136223846793005).wrapping_add(3))
        });
    }

    #[test]
    fn u_zero_until_full_then_positive() {
        let mut s = ExpClockSwor::new(3, 4);
        s.observe(Item::new(0, 1.0));
        s.observe(Item::new(1, 1.0));
        assert_eq!(s.u(), 0.0);
        s.observe(Item::new(2, 1.0));
        assert!(s.u() > 0.0);
    }

    #[test]
    fn agrees_with_a_res_in_distribution() {
        // Both are weighted SWOR; compare inclusion frequencies of the
        // heaviest item across many runs.
        let weights = [1.0, 1.0, 1.0, 6.0];
        let trials = 30_000u64;
        let mut hits_clock = 0u64;
        let mut hits_ares = 0u64;
        for t in 0..trials {
            let mut a = ExpClockSwor::new(2, t * 2 + 1);
            let mut b = super::super::ARes::new(2, t * 2 + 2);
            for (i, &w) in weights.iter().enumerate() {
                a.observe(Item::new(i as u64, w));
                b.observe(Item::new(i as u64, w));
            }
            hits_clock += a.sample().iter().filter(|x| x.id == 3).count() as u64;
            hits_ares += b.sample().iter().filter(|x| x.id == 3).count() as u64;
        }
        let (p1, p2) = (
            hits_clock as f64 / trials as f64,
            hits_ares as f64 / trials as f64,
        );
        assert!((p1 - p2).abs() < 0.015, "{p1} vs {p2}");
    }
}
