//! Centralized weighted sampling **with** replacement (Definition 2).
//!
//! `s` independent single-item weighted samplers: sampler `i` holds a single
//! item and, upon arrival of `(e, w)` with running total `W`, replaces its
//! item with probability `w/W`. Induction shows each sampler holds item `j`
//! with probability `w_j / W` independently of the others — exactly a
//! weighted SWR of size `s`.
//!
//! This is the reference distribution for the distributed SWR of Section 2.2
//! and the baseline heavy-hitter sampler of Section 4's motivation.

use super::StreamSampler;
use crate::item::Item;
use crate::rng::Rng;

/// Online centralized weighted SWR of size `s`.
#[derive(Debug)]
pub struct OnlineWeightedSwr {
    slots: Vec<Option<Item>>,
    total: f64,
    rng: Rng,
    observed: u64,
}

impl OnlineWeightedSwr {
    /// Creates a sampler with `s` independent slots.
    pub fn new(s: usize, seed: u64) -> Self {
        assert!(s >= 1);
        Self {
            slots: vec![None; s],
            total: 0.0,
            rng: Rng::new(seed),
            observed: 0,
        }
    }

    /// The with-replacement sample; `None` slots only before the first item.
    pub fn slots(&self) -> &[Option<Item>] {
        &self.slots
    }
}

impl StreamSampler for OnlineWeightedSwr {
    fn observe(&mut self, item: Item) {
        self.observed += 1;
        self.total += item.weight;
        let p = item.weight / self.total;
        for slot in &mut self.slots {
            if self.rng.bernoulli(p) {
                *slot = Some(item);
            }
        }
    }

    fn sample(&self) -> Vec<Item> {
        self.slots.iter().flatten().copied().collect()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_is_weight_proportional() {
        let weights = [1.0f64, 3.0, 6.0];
        let total: f64 = weights.iter().sum();
        let trials = 60_000u64;
        let s = 4usize;
        let mut counts = vec![0u64; weights.len()];
        for t in 0..trials {
            let mut swr = OnlineWeightedSwr::new(s, t + 11);
            for (i, &w) in weights.iter().enumerate() {
                swr.observe(Item::new(i as u64, w));
            }
            for it in swr.sample() {
                counts[it.id as usize] += 1;
            }
        }
        let draws = trials * s as u64;
        for (i, &c) in counts.iter().enumerate() {
            let p = weights[i] / total;
            let emp = c as f64 / draws as f64;
            let se = (p * (1.0 - p) / draws as f64).sqrt();
            assert!((emp - p).abs() < 6.0 * se, "item {i}: {emp} vs {p}");
        }
    }

    #[test]
    fn slots_are_independent_pairwise() {
        // P(slot0 = heavy AND slot1 = heavy) should be ~ p^2.
        let weights = [1.0f64, 1.0, 2.0];
        let p = 0.5f64; // heavy item has weight 2 of total 4
        let trials = 60_000u64;
        let mut both = 0u64;
        for t in 0..trials {
            let mut swr = OnlineWeightedSwr::new(2, t + 5);
            for (i, &w) in weights.iter().enumerate() {
                swr.observe(Item::new(i as u64, w));
            }
            let s = swr.slots();
            if s[0].map(|x| x.id) == Some(2) && s[1].map(|x| x.id) == Some(2) {
                both += 1;
            }
        }
        let emp = both as f64 / trials as f64;
        let expect = p * p;
        let se = (expect * (1.0 - expect) / trials as f64).sqrt();
        assert!((emp - expect).abs() < 6.0 * se, "{emp} vs {expect}");
    }

    #[test]
    fn sample_can_repeat_items() {
        // With replacement: a dominant item should appear multiple times.
        let mut swr = OnlineWeightedSwr::new(8, 3);
        swr.observe(Item::new(0, 1.0));
        swr.observe(Item::new(1, 1e9));
        let sample = swr.sample();
        let heavy = sample.iter().filter(|x| x.id == 1).count();
        assert!(heavy >= 7, "heavy item appeared only {heavy} times");
    }
}
