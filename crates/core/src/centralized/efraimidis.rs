//! Efraimidis–Spirakis sequential weighted SWOR (reference \[18\] of the
//! paper, *"Weighted random sampling with a reservoir"*, IPL 2006).
//!
//! Two variants:
//!
//! * [`ARes`] — the basic algorithm: each item gets key `u^{1/w}` with
//!   `u ~ Uniform(0,1)`; the sample is the `s` items with the largest keys.
//! * [`AExpJ`] — the exponential-jumps variant: distributionally identical,
//!   but instead of drawing a key per item it draws how much *weight* to
//!   skip until the next reservoir insertion, needing O(s·log(n/s)) random
//!   draws in expectation.
//!
//! Note `u^{1/w}` and `w/t` (the paper's exponential keys) induce the same
//! sample distribution: `-ln(u)/w` is Exp(rate w), so ordering by largest
//! `u^{1/w}` equals ordering by smallest `Exp(w)` equals ordering by largest
//! `w/t`.

use super::StreamSampler;
use crate::item::{Item, Keyed};
use crate::rng::Rng;
use crate::topk::TopK;

/// A-Res: one key per item, keep top-`s`.
#[derive(Debug)]
pub struct ARes {
    topk: TopK,
    rng: Rng,
    observed: u64,
}

impl ARes {
    /// Creates a sampler of size `s` with the given seed.
    pub fn new(s: usize, seed: u64) -> Self {
        Self {
            topk: TopK::new(s),
            rng: Rng::new(seed),
            observed: 0,
        }
    }

    /// Current sample with keys (largest first).
    pub fn sample_keyed(&self) -> Vec<Keyed> {
        self.topk.sorted_desc()
    }
}

impl StreamSampler for ARes {
    fn observe(&mut self, item: Item) {
        self.observed += 1;
        let key = self.rng.open01().powf(1.0 / item.weight);
        self.topk.offer(Keyed::new(item, key));
    }

    fn sample(&self) -> Vec<Item> {
        self.topk.iter().map(|k| k.item).collect()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

/// A-ExpJ: exponential jumps — skip a random amount of weight between
/// reservoir updates.
#[derive(Debug)]
pub struct AExpJ {
    topk: TopK,
    rng: Rng,
    observed: u64,
    /// Weight remaining to skip before the next insertion (valid once the
    /// reservoir is full).
    skip: f64,
    draws: u64,
}

impl AExpJ {
    /// Creates a sampler of size `s` with the given seed.
    pub fn new(s: usize, seed: u64) -> Self {
        Self {
            topk: TopK::new(s),
            rng: Rng::new(seed),
            observed: 0,
            skip: 0.0,
            draws: 0,
        }
    }

    /// Number of random key/jump draws made so far (the quantity A-ExpJ
    /// economizes compared to A-Res's one-per-item).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    fn reset_skip(&mut self) {
        // X_w = ln(r) / ln(T_w): weight to skip until next insertion, where
        // T_w is the current smallest key in the reservoir.
        let t_w = self.topk.min_key().expect("reservoir full");
        let r = self.rng.open01();
        self.skip = r.ln() / t_w.ln();
        self.draws += 1;
    }
}

impl StreamSampler for AExpJ {
    fn observe(&mut self, item: Item) {
        self.observed += 1;
        if !self.topk.is_full() {
            let key = self.rng.open01().powf(1.0 / item.weight);
            self.draws += 1;
            self.topk.offer(Keyed::new(item, key));
            if self.topk.is_full() {
                self.reset_skip();
            }
            return;
        }
        if item.weight < self.skip {
            self.skip -= item.weight;
            return;
        }
        // This item is inserted: its key is conditioned to beat T_w.
        let t_w = self.topk.min_key().expect("reservoir full");
        // key = Uniform(t_w^w, 1)^{1/w}
        let low = t_w.powf(item.weight);
        let key = self.rng.f64_range(low, 1.0).powf(1.0 / item.weight);
        self.draws += 1;
        self.topk.offer(Keyed::new(item, key));
        self.reset_skip();
    }

    fn sample(&self) -> Vec<Item> {
        self.topk.iter().map(|k| k.item).collect()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_util::check_swor_inclusion;

    #[test]
    fn a_res_inclusion_matches_oracle() {
        check_swor_inclusion(&[1.0, 2.0, 3.0, 4.0, 10.0], 2, 40_000, |seed| {
            ARes::new(2, seed.wrapping_mul(2654435761).wrapping_add(1))
        });
    }

    #[test]
    fn a_expj_inclusion_matches_oracle() {
        check_swor_inclusion(&[1.0, 2.0, 3.0, 4.0, 10.0], 2, 40_000, |seed| {
            AExpJ::new(2, seed.wrapping_mul(0x9E3779B9).wrapping_add(7))
        });
    }

    #[test]
    fn a_expj_uses_fewer_draws_on_long_streams() {
        let n = 20_000u64;
        let mut expj = AExpJ::new(8, 3);
        for i in 0..n {
            expj.observe(Item::new(i, 1.0 + (i % 5) as f64));
        }
        assert_eq!(expj.observed(), n);
        // A-Res would draw n times; ExpJ should be ~ s*log(n/s) << n.
        assert!(
            expj.draws() < n / 10,
            "draws {} not sublinear",
            expj.draws()
        );
    }

    #[test]
    fn sample_size_is_min_n_s() {
        let mut r = ARes::new(5, 1);
        for i in 0..3u64 {
            r.observe(Item::new(i, 1.0));
        }
        assert_eq!(r.sample().len(), 3);
        for i in 3..10u64 {
            r.observe(Item::new(i, 1.0));
        }
        assert_eq!(r.sample().len(), 5);
    }
}
