//! Hierarchical (fan-in) deployments.
//!
//! The paper's model has one coordinator; large fleets in practice hang
//! sites off regional aggregators that a root merges. Precision-sampling
//! samples are *mergeable* (`dwrs_core::merge`): the top-`s` of a union of
//! top-`s` keyed samples over disjoint streams is a weighted SWOR of the
//! union. This module wires that up: each group runs the full weighted SWOR
//! protocol against its own aggregator; aggregators ship their current
//! sample to the root every `sync_every` items (costing `s` messages each),
//! and the root merges.
//!
//! The root's sample is therefore an *exact* weighted SWOR of everything
//! the groups had seen as of their last syncs — a bounded-staleness
//! guarantee traded against the extra `g·s/sync_every` message rate.

use dwrs_core::merge::merge_samples;
use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
use dwrs_core::{Item, Keyed};

use crate::adapters::build_swor;
use crate::runner::Runner;

/// A two-level deployment: `g` groups of `k_per_group` sites, one root.
#[derive(Debug)]
pub struct FanInTree {
    groups: Vec<Runner<SworSite, SworCoordinator>>,
    group_samples: Vec<Vec<Keyed>>,
    sample_size: usize,
    k_per_group: usize,
    sync_every: u64,
    items_since_sync: Vec<u64>,
    /// Aggregator → root messages (each synced sample entry counts 1).
    pub root_messages: u64,
    /// Total items observed.
    pub observed: u64,
}

impl FanInTree {
    /// Builds `groups` groups with `k_per_group` sites each, sample size
    /// `s` everywhere, syncing each aggregator to the root every
    /// `sync_every` items it processes.
    pub fn new(s: usize, groups: usize, k_per_group: usize, sync_every: u64, seed: u64) -> Self {
        assert!(groups >= 1 && k_per_group >= 1 && sync_every >= 1);
        let groups_vec = (0..groups)
            .map(|gi| {
                build_swor(
                    SworConfig::new(s, k_per_group),
                    dwrs_core::rng::mix(seed, 0x7EE0 + gi as u64),
                )
            })
            .collect();
        Self {
            groups: groups_vec,
            group_samples: vec![Vec::new(); groups],
            sample_size: s,
            k_per_group,
            sync_every,
            items_since_sync: vec![0; groups],
            root_messages: 0,
            observed: 0,
        }
    }

    /// Feeds one item to site `site` of group `group`.
    pub fn observe(&mut self, group: usize, site: usize, item: Item) {
        assert!(site < self.k_per_group);
        self.observed += 1;
        self.groups[group].step(site, item);
        self.items_since_sync[group] += 1;
        if self.items_since_sync[group] >= self.sync_every {
            self.sync_group(group);
        }
    }

    /// Forces a sync of one group's sample to the root.
    pub fn sync_group(&mut self, group: usize) {
        let sample = self.groups[group].coordinator.sample();
        self.root_messages += sample.len() as u64;
        self.group_samples[group] = sample;
        self.items_since_sync[group] = 0;
    }

    /// Syncs every group (e.g. before a strongly consistent query).
    pub fn sync_all(&mut self) {
        for g in 0..self.groups.len() {
            self.sync_group(g);
        }
    }

    /// The root's merged sample: an exact weighted SWOR of the union of
    /// the groups' streams as of their last syncs.
    pub fn root_sample(&self) -> Vec<Keyed> {
        let parts: Vec<&[Keyed]> = self.group_samples.iter().map(Vec::as_slice).collect();
        merge_samples(&parts, self.sample_size)
    }

    /// Total messages: intra-group protocol traffic plus aggregator→root
    /// sync traffic.
    pub fn total_messages(&self) -> u64 {
        self.groups.iter().map(|g| g.metrics.total()).sum::<u64>() + self.root_messages
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::exact::inclusion_probabilities;

    #[test]
    fn root_sample_size_is_min_t_s() {
        let mut tree = FanInTree::new(4, 2, 2, 1, 7);
        for i in 0..10u64 {
            tree.observe((i % 2) as usize, ((i / 2) % 2) as usize, Item::unit(i));
            let expect = ((i + 1) as usize).min(4);
            assert_eq!(tree.root_sample().len(), expect, "at t = {}", i + 1);
        }
    }

    #[test]
    fn synced_root_matches_oracle_distribution() {
        let weights = [3.0, 1.0, 7.0, 1.0, 2.0, 9.0, 1.0, 4.0];
        let s = 2;
        let exact = inclusion_probabilities(&weights, s);
        let trials = 25_000u64;
        let mut counts = vec![0u64; weights.len()];
        for t in 0..trials {
            let mut tree = FanInTree::new(s, 2, 2, 1, 40_000 + t);
            for (i, &w) in weights.iter().enumerate() {
                tree.observe(i % 2, (i / 2) % 2, Item::new(i as u64, w));
            }
            tree.sync_all();
            for kd in tree.root_sample() {
                counts[kd.item.id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = exact[i];
            let emp = c as f64 / trials as f64;
            let se = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (emp - p).abs() < 6.0 * se,
                "item {i}: {emp:.4} vs exact {p:.4}"
            );
        }
    }

    #[test]
    fn stale_root_reflects_last_sync_only() {
        let mut tree = FanInTree::new(2, 1, 1, 1_000_000, 3);
        tree.observe(0, 0, Item::new(0, 1.0));
        // Never synced: root is empty until sync.
        assert!(tree.root_sample().is_empty());
        tree.sync_all();
        assert_eq!(tree.root_sample().len(), 1);
    }

    #[test]
    fn sync_rate_controls_root_traffic() {
        let run = |every: u64| {
            let mut tree = FanInTree::new(8, 4, 2, every, 9);
            for i in 0..8_000u64 {
                tree.observe((i % 4) as usize, ((i / 4) % 2) as usize, Item::unit(i));
            }
            tree.root_messages
        };
        let chatty = run(10);
        let lazy = run(1_000);
        assert!(
            chatty > 50 * lazy.max(1),
            "sync period had no effect: {chatty} vs {lazy}"
        );
    }
}
