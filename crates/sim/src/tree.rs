//! Hierarchical (fan-in) deployments.
//!
//! The paper's model has one coordinator; large fleets in practice hang
//! sites off regional aggregators that a root merges. Precision-sampling
//! samples are *mergeable* (`dwrs_core::merge`): the top-`s` of a union of
//! top-`s` keyed samples over disjoint streams is a weighted SWOR of the
//! union. This module wires that up: each group runs the full weighted SWOR
//! protocol against its own aggregator; aggregators ship their current
//! sample to the root every `sync_every` items (a [`SyncMsg`], costing one
//! message per synced entry), and the root merges.
//!
//! The root's sample is therefore an *exact* weighted SWOR of everything
//! the groups had seen as of their last syncs — a bounded-staleness
//! guarantee traded against the extra `g·s/sync_every` message rate.
//!
//! This is the lockstep (specification) implementation of the topology; the
//! `dwrs-runtime` crate runs the identical tree — same
//! [`crate::adapters::tree_group_seed`] seeding, same [`SyncMsg`] frames —
//! on concurrent threads and loopback TCP.

use dwrs_core::merge::merge_samples;
use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite, SyncMsg};
use dwrs_core::{Item, Keyed};

use crate::adapters::{build_swor, tree_group_seed};
use crate::metrics::Metrics;
use crate::protocol::Meter;
use crate::runner::Runner;

/// A two-level deployment: `g` groups of `k_per_group` sites, one root.
///
/// ```
/// use dwrs_core::Item;
/// use dwrs_sim::FanInTree;
///
/// // 2 groups × 4 sites, sample size 16, group→root sync every 100 items.
/// let mut tree = FanInTree::new(16, 2, 4, 100, 42);
/// for i in 0..10_000u64 {
///     let (group, site) = ((i % 2) as usize, ((i / 2) % 4) as usize);
///     tree.observe(group, site, Item::new(i, 1.0 + (i % 7) as f64));
/// }
/// tree.sync_all(); // strong consistency before querying
/// assert_eq!(tree.root_sample().len(), 16);
/// // All tiers account into one paper-accounting total: every upstream
/// // message is an intra-group protocol message (early/regular) or one
/// // synced sample entry ("sync").
/// let m = tree.merged_metrics();
/// assert!(m.kind("sync") > 0);
/// assert_eq!(
///     m.up_total,
///     m.kind("early") + m.kind("regular") + m.kind("sync")
/// );
/// ```
#[derive(Debug)]
pub struct FanInTree {
    groups: Vec<Runner<SworSite, SworCoordinator>>,
    group_samples: Vec<Vec<Keyed>>,
    sample_size: usize,
    k_per_group: usize,
    sync_every: u64,
    items_since_sync: Vec<u64>,
    observed_per_group: Vec<u64>,
    syncs_per_group: Vec<u64>,
    max_unsynced: Vec<u64>,
    /// Root-tier accounting: aggregator→root sync traffic, metered through
    /// the same [`Metrics`] machinery as every other tier (one message per
    /// synced sample entry, exact `SyncMsg` wire bytes), with a timeline
    /// snapshot per sync.
    metrics: Metrics,
}

impl FanInTree {
    /// Builds `groups` groups with `k_per_group` sites each, sample size
    /// `s` everywhere, syncing each aggregator to the root every
    /// `sync_every` items it processes. Group `gi` is seeded with
    /// [`tree_group_seed`]`(seed, gi)` — the derivation shared with the
    /// `dwrs-runtime` tree engines.
    pub fn new(s: usize, groups: usize, k_per_group: usize, sync_every: u64, seed: u64) -> Self {
        Self::from_config(SworConfig::new(s, k_per_group), groups, sync_every, seed)
    }

    /// Like [`FanInTree::new`], but with an explicit intra-group protocol
    /// configuration (ablation knobs included): every group runs `cfg`
    /// against `cfg.num_sites` sites. Used by the `dwrs-runtime` scenario
    /// driver, whose [`SworConfig`] carries the level-sets toggle.
    pub fn from_config(cfg: SworConfig, groups: usize, sync_every: u64, seed: u64) -> Self {
        assert!(groups >= 1 && cfg.num_sites >= 1 && sync_every >= 1);
        let (s, k_per_group) = (cfg.sample_size, cfg.num_sites);
        let groups_vec = (0..groups)
            .map(|gi| build_swor(cfg.clone(), tree_group_seed(seed, gi)))
            .collect();
        Self {
            groups: groups_vec,
            group_samples: vec![Vec::new(); groups],
            sample_size: s,
            k_per_group,
            sync_every,
            items_since_sync: vec![0; groups],
            observed_per_group: vec![0; groups],
            syncs_per_group: vec![0; groups],
            max_unsynced: vec![0; groups],
            metrics: Metrics::new(),
        }
    }

    /// Feeds one item to site `site` of group `group`.
    pub fn observe(&mut self, group: usize, site: usize, item: Item) {
        assert!(site < self.k_per_group);
        self.observed_per_group[group] += 1;
        self.groups[group].step(site, item);
        self.items_since_sync[group] += 1;
        if self.items_since_sync[group] >= self.sync_every {
            self.sync_group(group);
        }
    }

    /// Forces a sync of one group's sample to the root, metering the
    /// [`SyncMsg`] into the root-tier [`Metrics`].
    pub fn sync_group(&mut self, group: usize) {
        let msg = SyncMsg {
            group: group as u32,
            items: self.observed_per_group[group],
            sample: self.groups[group].coordinator.sample(),
        };
        self.metrics
            .count_up(Meter::kind(&msg), msg.units(), msg.wire_bytes());
        self.metrics.snapshot(self.observed());
        self.group_samples[group] = msg.sample;
        self.max_unsynced[group] = self.max_unsynced[group].max(self.items_since_sync[group]);
        self.items_since_sync[group] = 0;
        self.syncs_per_group[group] += 1;
    }

    /// Syncs every group (e.g. before a strongly consistent query).
    pub fn sync_all(&mut self) {
        for g in 0..self.groups.len() {
            self.sync_group(g);
        }
    }

    /// The root's merged sample: an exact weighted SWOR of the union of
    /// the groups' streams as of their last syncs.
    pub fn root_sample(&self) -> Vec<Keyed> {
        let parts: Vec<&[Keyed]> = self.group_samples.iter().map(Vec::as_slice).collect();
        merge_samples(&parts, self.sample_size)
    }

    /// Total items observed across all groups.
    pub fn observed(&self) -> u64 {
        self.observed_per_group.iter().sum()
    }

    /// Items observed by one group.
    pub fn group_observed(&self, group: usize) -> u64 {
        self.observed_per_group[group]
    }

    /// Number of aggregator→root syncs one group has performed.
    pub fn group_syncs(&self, group: usize) -> u64 {
        self.syncs_per_group[group]
    }

    /// Largest item watermark lag a group reached before syncing — in the
    /// lockstep tree this never exceeds `sync_every` (the bounded-staleness
    /// guarantee at item granularity).
    pub fn group_max_unsynced(&self, group: usize) -> u64 {
        self.max_unsynced[group]
    }

    /// The sample a group last shipped to the root.
    pub fn group_sample(&self, group: usize) -> &[Keyed] {
        &self.group_samples[group]
    }

    /// Aggregator → root messages (each synced sample entry counts 1).
    pub fn root_messages(&self) -> u64 {
        self.metrics.kind("sync")
    }

    /// All tiers' accounting folded into one [`Metrics`] via
    /// [`Metrics::merge`]: every group's intra-group protocol counters plus
    /// the root-tier sync counters, so tree message totals read exactly
    /// like the flat protocol's.
    pub fn merged_metrics(&self) -> Metrics {
        let mut total = self.metrics.clone();
        for g in &self.groups {
            total.merge(&g.metrics);
        }
        total
    }

    /// Total messages: intra-group protocol traffic plus aggregator→root
    /// sync traffic.
    pub fn total_messages(&self) -> u64 {
        self.merged_metrics().total()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::exact::inclusion_probabilities;
    use dwrs_core::swor::wire::sync_len;

    #[test]
    fn root_sample_size_is_min_t_s() {
        let mut tree = FanInTree::new(4, 2, 2, 1, 7);
        for i in 0..10u64 {
            tree.observe((i % 2) as usize, ((i / 2) % 2) as usize, Item::unit(i));
            let expect = ((i + 1) as usize).min(4);
            assert_eq!(tree.root_sample().len(), expect, "at t = {}", i + 1);
        }
    }

    #[test]
    fn synced_root_matches_oracle_distribution() {
        let weights = [3.0, 1.0, 7.0, 1.0, 2.0, 9.0, 1.0, 4.0];
        let s = 2;
        let exact = inclusion_probabilities(&weights, s);
        let trials = 25_000u64;
        let mut counts = vec![0u64; weights.len()];
        for t in 0..trials {
            let mut tree = FanInTree::new(s, 2, 2, 1, 40_000 + t);
            for (i, &w) in weights.iter().enumerate() {
                tree.observe(i % 2, (i / 2) % 2, Item::new(i as u64, w));
            }
            tree.sync_all();
            for kd in tree.root_sample() {
                counts[kd.item.id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = exact[i];
            let emp = c as f64 / trials as f64;
            let se = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (emp - p).abs() < 6.0 * se,
                "item {i}: {emp:.4} vs exact {p:.4}"
            );
        }
    }

    #[test]
    fn stale_root_reflects_last_sync_only() {
        let mut tree = FanInTree::new(2, 1, 1, 1_000_000, 3);
        tree.observe(0, 0, Item::new(0, 1.0));
        // Never synced: root is empty until sync.
        assert!(tree.root_sample().is_empty());
        tree.sync_all();
        assert_eq!(tree.root_sample().len(), 1);
    }

    #[test]
    fn sync_rate_controls_root_traffic() {
        let run = |every: u64| {
            let mut tree = FanInTree::new(8, 4, 2, every, 9);
            for i in 0..8_000u64 {
                tree.observe((i % 4) as usize, ((i / 4) % 2) as usize, Item::unit(i));
            }
            tree.root_messages()
        };
        let chatty = run(10);
        let lazy = run(1_000);
        assert!(
            chatty > 50 * lazy.max(1),
            "sync period had no effect: {chatty} vs {lazy}"
        );
    }

    #[test]
    fn metrics_fold_root_tier_into_paper_accounting() {
        // Satellite of ISSUE 3: tree message accounting must flow through
        // `Metrics` (merged key-wise), not ad-hoc counters.
        let mut tree = FanInTree::new(4, 2, 2, 50, 11);
        for i in 0..2_000u64 {
            tree.observe((i % 2) as usize, ((i / 2) % 2) as usize, Item::unit(i));
        }
        tree.sync_all();
        let m = tree.merged_metrics();
        // The sync bucket carries exactly the root messages.
        assert_eq!(m.kind("sync"), tree.root_messages());
        assert!(tree.root_messages() > 0);
        // Full paper-accounting byte decomposition across tiers: every
        // upstream byte is either an exact intra-group frame (17 B early,
        // 25 B regular) or part of a SyncMsg frame (17 B header per sync +
        // 24 B per synced entry).
        let syncs = tree.group_syncs(0) + tree.group_syncs(1);
        assert_eq!(
            m.up_bytes,
            17 * m.kind("early") + 25 * m.kind("regular") + 17 * syncs + 24 * m.kind("sync")
        );
        assert_eq!(
            m.down_bytes,
            5 * m.kind("level_saturated") + 9 * m.kind("update_epoch")
        );
        // Message totals decompose the same way.
        assert_eq!(
            m.up_total,
            m.kind("early") + m.kind("regular") + m.kind("sync")
        );
        // Timeline snapshots recorded one entry per sync, in item order.
        assert_eq!(m.timeline.len() as u64, syncs);
        assert!(m.timeline.windows(2).all(|w| w[0].0 <= w[1].0));
        // Items observed are tracked per group.
        assert_eq!(tree.observed(), 2_000);
        assert_eq!(tree.group_observed(0) + tree.group_observed(1), 2_000);
        // Spot-check the exact frame size helper against one sync.
        let msg = SyncMsg {
            group: 0,
            items: tree.group_observed(0),
            sample: tree.root_sample(),
        };
        assert_eq!(sync_len(&msg), 17 + 24 * msg.sample.len());
    }
}
