//! The round-driving loop.
//!
//! One round per stream item (Section 2.1's model: per round a site observes
//! at most one item, may send a message, and may receive a response). In
//! instant mode, responses triggered by the item are applied to every site
//! within the round; in delayed mode they sit in per-site FIFO queues for a
//! configurable number of rounds — a site only consults its queue when it is
//! about to act, which preserves FIFO order per channel.

use std::collections::VecDeque;

use dwrs_core::Item;

use crate::metrics::Metrics;
use crate::protocol::{CoordinatorNode, Meter, Outbox, SiteNode};

/// Downstream delivery policy.
#[derive(Debug)]
enum Delivery<D> {
    Instant,
    Delayed {
        latency: u64,
        queues: Vec<VecDeque<(u64, D)>>,
    },
}

/// Drives a set of sites and a coordinator over a partitioned stream.
#[derive(Debug)]
pub struct Runner<S, C>
where
    S: SiteNode,
    C: CoordinatorNode<Up = S::Up, Down = S::Down>,
{
    /// The site protocol endpoints.
    pub sites: Vec<S>,
    /// The coordinator endpoint.
    pub coordinator: C,
    /// Message accounting for the run.
    pub metrics: Metrics,
    delivery: Delivery<S::Down>,
    time: u64,
    up_buf: Vec<S::Up>,
    outbox: Outbox<S::Down>,
}

impl<S, C> Runner<S, C>
where
    S: SiteNode,
    C: CoordinatorNode<Up = S::Up, Down = S::Down>,
{
    /// Creates a runner with instant delivery.
    pub fn new(coordinator: C, sites: Vec<S>) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        Self {
            sites,
            coordinator,
            metrics: Metrics::new(),
            delivery: Delivery::Instant,
            time: 0,
            up_buf: Vec::new(),
            outbox: Outbox::new(),
        }
    }

    /// Switches to delayed delivery: coordinator responses become visible to
    /// sites `latency` rounds after being sent.
    pub fn with_latency(mut self, latency: u64) -> Self {
        let k = self.sites.len();
        self.delivery = Delivery::Delayed {
            latency,
            queues: (0..k).map(|_| VecDeque::new()).collect(),
        };
        self
    }

    /// Number of sites `k`.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Rounds elapsed (= items processed).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Delivers all downstream messages due at or before `self.time` to
    /// site `i`.
    fn drain_due(&mut self, i: usize) {
        if let Delivery::Delayed { queues, .. } = &mut self.delivery {
            while let Some(&(due, _)) = queues[i].front() {
                if due <= self.time {
                    let (_, msg) = queues[i].pop_front().expect("non-empty");
                    self.sites[i].receive(&msg);
                } else {
                    break;
                }
            }
        }
    }

    /// Routes everything in the outbox, applying metrics.
    fn route_outbox(&mut self) {
        let k = self.sites.len();
        let (unicasts, broadcasts) = self.outbox.take();
        for (to, msg) in unicasts {
            self.metrics
                .count_unicast(msg.kind(), msg.units(), msg.wire_bytes());
            match &mut self.delivery {
                Delivery::Instant => self.sites[to].receive(&msg),
                Delivery::Delayed { latency, queues } => {
                    queues[to].push_back((self.time + *latency, msg));
                }
            }
        }
        for msg in broadcasts {
            self.metrics
                .count_broadcast(msg.kind(), msg.units(), msg.wire_bytes(), k);
            match &mut self.delivery {
                Delivery::Instant => {
                    for site in &mut self.sites {
                        site.receive(&msg);
                    }
                }
                Delivery::Delayed { latency, queues } => {
                    for q in queues.iter_mut() {
                        q.push_back((self.time + *latency, msg.clone()));
                    }
                }
            }
        }
    }

    /// Feeds one stream item to `site` and completes the round.
    pub fn step(&mut self, site: usize, item: Item) {
        self.time += 1;
        self.drain_due(site);
        debug_assert!(self.up_buf.is_empty());
        self.sites[site].observe(item, &mut self.up_buf);
        let ups = std::mem::take(&mut self.up_buf);
        for up in ups {
            self.metrics
                .count_up(up.kind(), up.units(), up.wire_bytes());
            self.coordinator.receive(site, up, &mut self.outbox);
            self.route_outbox();
        }
    }

    /// Runs the whole partitioned stream.
    pub fn run<I>(&mut self, stream: I)
    where
        I: IntoIterator<Item = (usize, Item)>,
    {
        for (site, item) in stream {
            self.step(site, item);
        }
    }

    /// Runs the stream, invoking `probe` after every `every` items (and once
    /// at the end).
    pub fn run_with_probes<I, F>(&mut self, stream: I, every: u64, mut probe: F)
    where
        I: IntoIterator<Item = (usize, Item)>,
        F: FnMut(u64, &C, &Metrics),
    {
        assert!(every >= 1);
        let mut n = 0u64;
        for (site, item) in stream {
            self.step(site, item);
            n += 1;
            if n.is_multiple_of(every) {
                self.metrics.snapshot(n);
                probe(n, &self.coordinator, &self.metrics);
            }
        }
        if !n.is_multiple_of(every) {
            self.metrics.snapshot(n);
            probe(n, &self.coordinator, &self.metrics);
        }
    }

    /// Ends the stream: every site's [`SiteNode::finish`] messages are
    /// routed through the coordinator with the usual accounting. Protocols
    /// that assemble their answer at end-of-stream (the sliding-window
    /// sampler) need this before the coordinator is queried; per-item
    /// protocols are unaffected (the default `finish` sends nothing).
    pub fn finish(&mut self) {
        for site in 0..self.sites.len() {
            debug_assert!(self.up_buf.is_empty());
            self.sites[site].finish(&mut self.up_buf);
            let ups = std::mem::take(&mut self.up_buf);
            for up in ups {
                self.metrics
                    .count_up(up.kind(), up.units(), up.wire_bytes());
                self.coordinator.receive(site, up, &mut self.outbox);
                self.route_outbox();
            }
        }
    }

    /// Delivers every still-queued downstream message (delayed mode), e.g.
    /// at the end of a stream before inspecting site state.
    pub fn flush_delayed(&mut self) {
        if let Delivery::Delayed { queues, .. } = &mut self.delivery {
            for (i, q) in queues.iter_mut().enumerate() {
                while let Some((_, msg)) = q.pop_front() {
                    self.sites[i].receive(&msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: sites forward every item; coordinator echoes a counter
    /// broadcast every 3 receipts.
    struct EchoSite {
        seen_down: u64,
    }
    #[derive(Clone, Copy)]
    struct Up(#[allow(dead_code)] u64);
    #[derive(Clone, Copy)]
    struct Down(#[allow(dead_code)] u64);
    impl Meter for Up {
        fn kind(&self) -> &'static str {
            "up"
        }
    }
    impl Meter for Down {
        fn kind(&self) -> &'static str {
            "down"
        }
    }
    impl SiteNode for EchoSite {
        type Up = Up;
        type Down = Down;
        fn observe(&mut self, item: Item, out: &mut Vec<Up>) {
            out.push(Up(item.id));
        }
        fn receive(&mut self, _msg: &Down) {
            self.seen_down += 1;
        }
    }
    struct EchoCoord {
        received: u64,
    }
    impl CoordinatorNode for EchoCoord {
        type Up = Up;
        type Down = Down;
        fn receive(&mut self, _from: usize, _msg: Up, out: &mut Outbox<Down>) {
            self.received += 1;
            if self.received.is_multiple_of(3) {
                out.broadcast(Down(self.received));
            }
        }
    }

    fn items(n: u64) -> impl Iterator<Item = (usize, Item)> {
        (0..n).map(|i| ((i % 2) as usize, Item::unit(i)))
    }

    #[test]
    fn instant_delivery_counts_and_delivers() {
        let sites = vec![EchoSite { seen_down: 0 }, EchoSite { seen_down: 0 }];
        let mut r = Runner::new(EchoCoord { received: 0 }, sites);
        r.run(items(9));
        assert_eq!(r.metrics.up_total, 9);
        // 3 broadcasts × 2 sites
        assert_eq!(r.metrics.down_total, 6);
        assert_eq!(r.metrics.broadcast_events, 3);
        for s in &r.sites {
            assert_eq!(s.seen_down, 3);
        }
    }

    #[test]
    fn delayed_delivery_defers_but_flushes() {
        let sites = vec![EchoSite { seen_down: 0 }, EchoSite { seen_down: 0 }];
        let mut r = Runner::new(EchoCoord { received: 0 }, sites).with_latency(1_000_000);
        r.run(items(9));
        // Nothing delivered yet.
        assert!(r.sites.iter().all(|s| s.seen_down == 0));
        // But the messages were still counted when sent.
        assert_eq!(r.metrics.down_total, 6);
        r.flush_delayed();
        assert!(r.sites.iter().all(|s| s.seen_down == 3));
    }

    #[test]
    fn delayed_delivery_respects_latency() {
        let sites = vec![EchoSite { seen_down: 0 }];
        let mut r = Runner::new(EchoCoord { received: 0 }, sites).with_latency(2);
        // Round 1..3 generate a broadcast at round 3 (3rd receipt), due at 5.
        for i in 0..4u64 {
            r.step(0, Item::unit(i));
        }
        assert_eq!(r.sites[0].seen_down, 0, "latency not yet elapsed");
        r.step(0, Item::unit(4)); // round 5: due message delivered pre-observe
        assert_eq!(r.sites[0].seen_down, 1);
    }

    #[test]
    fn probes_fire_on_schedule() {
        let sites = vec![EchoSite { seen_down: 0 }, EchoSite { seen_down: 0 }];
        let mut r = Runner::new(EchoCoord { received: 0 }, sites);
        let mut probes = Vec::new();
        r.run_with_probes(items(10), 4, |n, c, m| {
            probes.push((n, c.received, m.total()));
        });
        assert_eq!(probes.len(), 3); // at 4, 8, and the tail at 10
        assert_eq!(probes[0].0, 4);
        assert_eq!(probes[1].0, 8);
        assert_eq!(probes[2].0, 10);
        assert_eq!(r.metrics.timeline.len(), 3);
    }
}
