//! Stream partitioning strategies.
//!
//! The paper's model places no assumption on how the adversary splits the
//! global stream across sites; these strategies cover the benign and
//! adversarial regimes used by the experiments.

use dwrs_core::rng::Rng;

/// How the globally ordered stream is split across the `k` sites.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Partition {
    /// Item `t` goes to site `t mod k`.
    RoundRobin,
    /// Each item goes to an independently uniform site.
    Random,
    /// Everything lands on one site (worst-case skew).
    SingleSite(usize),
    /// Site 0 receives each item with probability `hot`; the rest spread
    /// uniformly over the remaining sites.
    Skewed {
        /// Probability an item lands on the hot site.
        hot: f64,
    },
    /// Contiguous blocks of the given length rotate across sites — the
    /// lower-bound constructions deliver per-epoch bursts this way.
    Blocks(
        /// Block length.
        usize,
    ),
}

/// Stateful assigner of sites to stream positions.
#[derive(Debug)]
pub struct Partitioner {
    strategy: Partition,
    k: usize,
    rng: Rng,
    t: u64,
}

impl Partitioner {
    /// Creates an assigner over `k` sites.
    pub fn new(strategy: Partition, k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        if let Partition::SingleSite(i) = strategy {
            assert!(i < k, "single site index out of range");
        }
        Self {
            strategy,
            k,
            rng: Rng::new(seed),
            t: 0,
        }
    }

    /// Site for the next stream position.
    pub fn next_site(&mut self) -> usize {
        let t = self.t;
        self.t += 1;
        match self.strategy {
            Partition::RoundRobin => (t % self.k as u64) as usize,
            Partition::Random => self.rng.index(self.k),
            Partition::SingleSite(i) => i,
            Partition::Skewed { hot } => {
                if self.k == 1 || self.rng.bernoulli(hot) {
                    0
                } else {
                    1 + self.rng.index(self.k - 1)
                }
            }
            Partition::Blocks(len) => ((t / len.max(1) as u64) % self.k as u64) as usize,
        }
    }
}

/// Assigns sites for `n` stream positions in one shot.
pub fn assign_sites(strategy: Partition, k: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut p = Partitioner::new(strategy, k, seed);
    (0..n).map(|_| p.next_site()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let a = assign_sites(Partition::RoundRobin, 3, 7, 0);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn single_site_constant() {
        let a = assign_sites(Partition::SingleSite(2), 4, 5, 0);
        assert!(a.iter().all(|&s| s == 2));
    }

    #[test]
    fn random_covers_all_sites() {
        let a = assign_sites(Partition::Random, 4, 1000, 1);
        for site in 0..4 {
            let c = a.iter().filter(|&&s| s == site).count();
            assert!(c > 150, "site {site} got only {c}");
        }
    }

    #[test]
    fn skewed_prefers_hot_site() {
        let a = assign_sites(Partition::Skewed { hot: 0.9 }, 4, 10_000, 2);
        let hot = a.iter().filter(|&&s| s == 0).count();
        assert!(hot > 8_700 && hot < 9_300, "hot count {hot}");
    }

    #[test]
    fn blocks_rotate() {
        let a = assign_sites(Partition::Blocks(2), 2, 8, 0);
        assert_eq!(a, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_site_bounds_checked() {
        let _ = Partitioner::new(Partition::SingleSite(5), 3, 0);
    }
}
