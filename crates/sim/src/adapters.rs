//! Adapters implementing the simulator traits for the protocols in
//! `dwrs-core`, plus convenience builders that wire up `k` seeded sites and
//! a coordinator into a [`Runner`].

use dwrs_core::framed::FrameCodec;
use dwrs_core::item::Keyed;
use dwrs_core::rng::mix;
use dwrs_core::swor::wire::WireError;
use dwrs_core::swor::{
    DownMsg, FaithfulCoordinator, NaiveCoordinator, NaiveSite, SworConfig, SworCoordinator,
    SworSite, SyncMsg, UpMsg,
};
use dwrs_core::swr::{SwrConfig, SwrDown, SwrUp, WeightedSwrCoordinator, WeightedSwrSite};
use dwrs_core::unweighted::swor::{TagConfig, TagCoordinator, TagDown, TagSite, TagUp};
use dwrs_core::Item;

use crate::protocol::{CoordinatorNode, Meter, Outbox, SiteNode};
use crate::runner::Runner;

// ---------------------------------------------------------------- weighted SWOR

impl Meter for UpMsg {
    fn kind(&self) -> &'static str {
        UpMsg::kind(self)
    }
    fn wire_bytes(&self) -> u64 {
        dwrs_core::swor::wire::up_len(self) as u64
    }
}

impl Meter for DownMsg {
    fn kind(&self) -> &'static str {
        DownMsg::kind(self)
    }
    fn wire_bytes(&self) -> u64 {
        dwrs_core::swor::wire::down_len(self) as u64
    }
}

impl Meter for SyncMsg {
    fn kind(&self) -> &'static str {
        SyncMsg::kind(self)
    }
    /// Each synced sample entry costs one message in the paper's accounting
    /// (an empty sync is pure transport overhead, zero protocol messages).
    fn units(&self) -> u64 {
        self.sample.len() as u64
    }
    fn wire_bytes(&self) -> u64 {
        dwrs_core::swor::wire::sync_len(self) as u64
    }
}

impl SiteNode for SworSite {
    type Up = UpMsg;
    type Down = DownMsg;
    fn observe(&mut self, item: Item, out: &mut Vec<UpMsg>) {
        if let Some(msg) = SworSite::observe(self, item) {
            out.push(msg);
        }
    }
    fn receive(&mut self, msg: &DownMsg) {
        SworSite::receive(self, msg);
    }
}

impl CoordinatorNode for SworCoordinator {
    type Up = UpMsg;
    type Down = DownMsg;
    fn receive(&mut self, _from: usize, msg: UpMsg, out: &mut Outbox<DownMsg>) {
        let mut downs = Vec::new();
        SworCoordinator::receive(self, msg, &mut downs);
        for d in downs {
            out.broadcast(d);
        }
    }
}

impl CoordinatorNode for FaithfulCoordinator {
    type Up = UpMsg;
    type Down = DownMsg;
    fn receive(&mut self, _from: usize, msg: UpMsg, out: &mut Outbox<DownMsg>) {
        let mut downs = Vec::new();
        FaithfulCoordinator::receive(self, msg, &mut downs);
        for d in downs {
            out.broadcast(d);
        }
    }
}

/// Canonical per-group seed derivation for fan-in tree deployments: group
/// `gi` of a tree seeded with `seed` runs its intra-group weighted-SWOR
/// protocol with this seed (sites and aggregator then derive theirs via
/// [`swor_site`] / [`swor_coordinator`]). Both the lockstep
/// [`crate::tree::FanInTree`] and the `dwrs-runtime` tree engines construct
/// groups through it, so identically-seeded trees are identical across
/// substrates — which is what makes their output distributions comparable.
pub fn tree_group_seed(seed: u64, group: usize) -> u64 {
    mix(seed, 0x7EE0 + group as u64)
}

/// Builds site `i` of a weighted-SWOR deployment. This is the canonical
/// seed derivation — every execution substrate (lockstep runner, the
/// `dwrs-runtime` engines, the CLI's `serve`/`feed` halves) must construct
/// sites through it so identically-seeded deployments are identical
/// across substrates.
pub fn swor_site(cfg: &SworConfig, seed: u64, i: usize) -> SworSite {
    SworSite::new(cfg, mix(seed, 0x5173_0000 + i as u64))
}

/// Builds the O(s)-space weighted-SWOR coordinator of a deployment (the
/// canonical seed derivation; see [`swor_site`]).
pub fn swor_coordinator(cfg: SworConfig, seed: u64) -> SworCoordinator {
    SworCoordinator::new(cfg, mix(seed, 0xC00D))
}

/// Builds a full weighted-SWOR deployment: `k` seeded sites plus the
/// O(s)-space coordinator.
pub fn build_swor(cfg: SworConfig, seed: u64) -> Runner<SworSite, SworCoordinator> {
    let sites = (0..cfg.num_sites)
        .map(|i| swor_site(&cfg, seed, i))
        .collect();
    let coordinator = swor_coordinator(cfg, seed);
    Runner::new(coordinator, sites)
}

/// Builds the verbatim-Algorithm-2 deployment (full level-set storage).
pub fn build_swor_faithful(cfg: SworConfig, seed: u64) -> Runner<SworSite, FaithfulCoordinator> {
    let sites = (0..cfg.num_sites)
        .map(|i| swor_site(&cfg, seed, i))
        .collect();
    let coordinator = FaithfulCoordinator::new(cfg, mix(seed, 0xC00D));
    Runner::new(coordinator, sites)
}

// ---------------------------------------------------------------- naive SWOR

/// Uninhabited-ish downstream type for protocols with no coordinator→site
/// traffic (the naive baseline, the tree root's reply path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoDown;

impl Meter for NoDown {
    fn kind(&self) -> &'static str {
        "none"
    }
}

/// A `NoDown` value is never sent, but framed transports require both
/// directions of a link to have a codec: encoding emits nothing and any
/// received frame is rejected (nobody legitimately sends one).
impl FrameCodec for NoDown {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        Err(buf
            .first()
            .map_or(WireError::Truncated, |&t| WireError::BadTag(t)))
    }
}

impl Meter for Keyed {
    fn kind(&self) -> &'static str {
        "local_change"
    }
}

impl SiteNode for NaiveSite {
    type Up = Keyed;
    type Down = NoDown;
    fn observe(&mut self, item: Item, out: &mut Vec<Keyed>) {
        if let Some(k) = NaiveSite::observe(self, item) {
            out.push(k);
        }
    }
    fn receive(&mut self, _msg: &NoDown) {}
}

impl CoordinatorNode for NaiveCoordinator {
    type Up = Keyed;
    type Down = NoDown;
    fn receive(&mut self, _from: usize, msg: Keyed, _out: &mut Outbox<NoDown>) {
        NaiveCoordinator::receive(self, msg);
    }
}

/// Builds the naive `O(ks·log W)` baseline deployment.
pub fn build_naive(s: usize, k: usize, seed: u64) -> Runner<NaiveSite, NaiveCoordinator> {
    let sites = (0..k)
        .map(|i| NaiveSite::new(s, mix(seed, 0xA1FE_0000 + i as u64)))
        .collect();
    Runner::new(NaiveCoordinator::new(s), sites)
}

// ---------------------------------------------------------------- min-tag SWOR

impl Meter for TagUp {
    fn kind(&self) -> &'static str {
        "tag"
    }
}

impl Meter for TagDown {
    fn kind(&self) -> &'static str {
        "threshold"
    }
}

impl SiteNode for TagSite {
    type Up = TagUp;
    type Down = TagDown;
    fn observe(&mut self, item: Item, out: &mut Vec<TagUp>) {
        if let Some(m) = TagSite::observe(self, item) {
            out.push(m);
        }
    }
    fn receive(&mut self, msg: &TagDown) {
        TagSite::receive(self, msg);
    }
}

impl CoordinatorNode for TagCoordinator {
    type Up = TagUp;
    type Down = TagDown;
    fn receive(&mut self, _from: usize, msg: TagUp, out: &mut Outbox<TagDown>) {
        let mut downs = Vec::new();
        TagCoordinator::receive(self, msg, &mut downs);
        for d in downs {
            out.broadcast(d);
        }
    }
}

/// Builds the unweighted min-tag SWOR baseline deployment.
pub fn build_tag(cfg: TagConfig, seed: u64) -> Runner<TagSite, TagCoordinator> {
    let sites = (0..cfg.num_sites)
        .map(|i| TagSite::new(mix(seed, 0x7A60_0000 + i as u64)))
        .collect();
    Runner::new(TagCoordinator::new(cfg), sites)
}

// ---------------------------------------------------------------- weighted SWR

impl Meter for SwrUp {
    fn kind(&self) -> &'static str {
        "candidate"
    }
}

impl Meter for SwrDown {
    fn kind(&self) -> &'static str {
        "threshold"
    }
}

impl SiteNode for WeightedSwrSite {
    type Up = SwrUp;
    type Down = SwrDown;
    fn observe(&mut self, item: Item, out: &mut Vec<SwrUp>) {
        WeightedSwrSite::observe(self, item, out);
    }
    fn receive(&mut self, msg: &SwrDown) {
        WeightedSwrSite::receive(self, msg);
    }
}

impl CoordinatorNode for WeightedSwrCoordinator {
    type Up = SwrUp;
    type Down = SwrDown;
    fn receive(&mut self, _from: usize, msg: SwrUp, out: &mut Outbox<SwrDown>) {
        let mut downs = Vec::new();
        WeightedSwrCoordinator::receive(self, msg, &mut downs);
        for d in downs {
            out.broadcast(d);
        }
    }
}

/// Builds the distributed weighted SWR deployment (Corollary 1).
pub fn build_swr(cfg: SwrConfig, seed: u64) -> Runner<WeightedSwrSite, WeightedSwrCoordinator> {
    let sites = (0..cfg.num_sites)
        .map(|i| WeightedSwrSite::new(&cfg, mix(seed, 0x5172_0000 + i as u64)))
        .collect();
    Runner::new(WeightedSwrCoordinator::new(cfg), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{assign_sites, Partition};

    #[test]
    fn swor_runner_end_to_end() {
        let cfg = SworConfig::new(8, 4);
        let mut r = build_swor(cfg, 42);
        let n = 5000usize;
        let sites = assign_sites(Partition::RoundRobin, 4, n, 1);
        let stream = sites
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, Item::new(i as u64, 1.0 + (i % 7) as f64)));
        r.run(stream);
        assert_eq!(r.coordinator.sample().len(), 8);
        assert!(r.metrics.up_total > 0);
        // Strong sublinearity: far fewer messages than items.
        assert!(
            r.metrics.total() < (n as u64) / 2,
            "total {} vs n {n}",
            r.metrics.total()
        );
    }

    #[test]
    fn swor_sample_valid_at_every_probe() {
        let cfg = SworConfig::new(4, 2);
        let mut r = build_swor(cfg, 7);
        let n = 300u64;
        let stream = (0..n).map(|i| ((i % 2) as usize, Item::new(i, 1.0)));
        let mut sizes = Vec::new();
        r.run_with_probes(stream, 1, |t, coord, _| {
            sizes.push((t, coord.sample().len()));
        });
        for &(t, len) in &sizes {
            assert_eq!(len as u64, t.min(4), "at time {t}");
        }
    }

    #[test]
    fn byte_accounting_matches_frame_sizes() {
        let cfg = SworConfig::new(8, 4);
        let mut r = build_swor(cfg, 21);
        let stream = (0..6000u64).map(|i| ((i % 4) as usize, Item::new(i, 1.0 + (i % 5) as f64)));
        r.run(stream);
        let m = &r.metrics;
        let expect_up = 17 * m.kind("early") + 25 * m.kind("regular");
        assert_eq!(m.up_bytes, expect_up, "upstream bytes must match frames");
        let expect_down = 5 * m.kind("level_saturated") + 9 * m.kind("update_epoch");
        assert_eq!(
            m.down_bytes, expect_down,
            "downstream bytes must match frames"
        );
        // Every message is O(1) machine words on the wire (Prop. 7).
        assert!(m.up_bytes <= 32 * m.up_total);
        assert!(m.down_bytes <= 32 * m.down_total);
    }

    #[test]
    fn swor_meter_uses_exact_frame_sizes() {
        // Satellite of ISSUE 2: the SWOR messages must report their exact
        // `swor::wire` frame sizes, not the generic two-word default.
        let early = UpMsg::Early {
            item: Item::new(1, 2.0),
        };
        let regular = UpMsg::Regular {
            item: Item::new(1, 2.0),
            key: 3.0,
        };
        let saturated = DownMsg::LevelSaturated { level: 4 };
        let epoch = DownMsg::UpdateEpoch { threshold: 8.0 };
        assert_eq!(Meter::wire_bytes(&early), 17);
        assert_eq!(Meter::wire_bytes(&regular), 25);
        assert_eq!(Meter::wire_bytes(&saturated), 5);
        assert_eq!(Meter::wire_bytes(&epoch), 9);
        // None of them coincide with the default model figure, so a
        // regression to the default would be caught here.
        let default_bytes = 2 * dwrs_core::swor::wire::WORD_BYTES as u64;
        for bytes in [17u64, 25, 5, 9] {
            assert_ne!(bytes, default_bytes);
        }
        // The default itself is the paper's two-words-per-message figure,
        // scaled by `units` for batched meters.
        struct Plain(u64);
        impl Meter for Plain {
            fn kind(&self) -> &'static str {
                "plain"
            }
            fn units(&self) -> u64 {
                self.0
            }
        }
        assert_eq!(Plain(1).wire_bytes(), 16);
        assert_eq!(Plain(3).wire_bytes(), 48);
    }

    #[test]
    fn naive_runner_counts_per_site_changes() {
        let mut r = build_naive(4, 2, 3);
        let stream = (0..2000u64).map(|i| ((i % 2) as usize, Item::new(i, 1.0)));
        r.run(stream);
        assert_eq!(r.metrics.down_total, 0, "naive protocol sends nothing down");
        assert_eq!(r.metrics.kind("local_change"), r.metrics.up_total);
        assert_eq!(r.coordinator.sample().len(), 4);
    }

    #[test]
    fn swr_runner_end_to_end() {
        let cfg = SwrConfig::new(6, 3);
        let mut r = build_swr(cfg, 11);
        let stream = (0..3000u64).map(|i| ((i % 3) as usize, Item::new(i, 1.0 + (i % 9) as f64)));
        r.run(stream);
        assert_eq!(r.coordinator.sample().len(), 6);
    }

    #[test]
    fn tag_runner_end_to_end() {
        let cfg = TagConfig::new(5, 2);
        let mut r = build_tag(cfg, 13);
        let stream = (0..4000u64).map(|i| ((i % 2) as usize, Item::unit(i)));
        r.run(stream);
        assert_eq!(r.coordinator.sample().len(), 5);
    }

    #[test]
    fn delayed_swor_remains_correct() {
        // With a large broadcast latency, sites keep stale thresholds; the
        // sample must still be exactly the top-s of all generated keys —
        // verified here by size and by comparing message counts vs instant.
        let cfg = SworConfig::new(8, 4);
        let n = 8000u64;
        let mk_stream = || (0..n).map(|i| ((i % 4) as usize, Item::new(i, 1.0 + (i % 11) as f64)));
        let mut instant = build_swor(cfg.clone(), 99);
        instant.run(mk_stream());
        let mut delayed = build_swor(cfg, 99).with_latency(50);
        delayed.run(mk_stream());
        assert_eq!(delayed.coordinator.sample().len(), 8);
        // Stale thresholds can only increase traffic.
        assert!(
            delayed.metrics.up_total >= instant.metrics.up_total / 2,
            "sanity: delayed {} vs instant {}",
            delayed.metrics.up_total,
            instant.metrics.up_total
        );
    }
}
