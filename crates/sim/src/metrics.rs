//! Message accounting.
//!
//! Mirrors the paper's cost model: every site→coordinator message counts 1,
//! a coordinator unicast counts 1, and a coordinator broadcast counts `k`
//! (one message per site). Counts are additionally bucketed by message kind
//! so experiments can separate e.g. early vs. regular vs. epoch traffic.

use std::collections::BTreeMap;

/// Message counters for one protocol run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total site → coordinator messages.
    pub up_total: u64,
    /// Total coordinator → site messages (broadcasts count `k`).
    pub down_total: u64,
    /// Number of broadcast *events* (each costing `k` messages).
    pub broadcast_events: u64,
    /// Total upstream bytes (exact wire encoding where available).
    pub up_bytes: u64,
    /// Total downstream bytes (broadcast bytes count `k`-fold).
    pub down_bytes: u64,
    /// Per-kind message counts (both directions).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Optional timeline of `(items_processed, total_messages)` snapshots.
    pub timeline: Vec<(u64, u64)>,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages in both directions.
    pub fn total(&self) -> u64 {
        self.up_total + self.down_total
    }

    /// Records an upstream message of `units` wire messages and `bytes`
    /// encoded bytes.
    pub fn count_up(&mut self, kind: &'static str, units: u64, bytes: u64) {
        self.up_total += units;
        self.up_bytes += bytes;
        *self.by_kind.entry(kind).or_insert(0) += units;
    }

    /// Records a unicast downstream message.
    pub fn count_unicast(&mut self, kind: &'static str, units: u64, bytes: u64) {
        self.down_total += units;
        self.down_bytes += bytes;
        *self.by_kind.entry(kind).or_insert(0) += units;
    }

    /// Records a broadcast downstream message delivered to `k` sites.
    pub fn count_broadcast(&mut self, kind: &'static str, units: u64, bytes: u64, k: usize) {
        self.broadcast_events += 1;
        let total = units * k as u64;
        self.down_total += total;
        self.down_bytes += bytes * k as u64;
        *self.by_kind.entry(kind).or_insert(0) += total;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.up_bytes + self.down_bytes
    }

    /// Folds another run's (or another thread's) counters into this one.
    ///
    /// All scalar totals add; per-kind buckets add key-wise. Timelines are
    /// concatenated in `(items_processed, …)` order so a merged timeline
    /// stays sorted when the inputs cover disjoint item ranges — the
    /// runtime's per-thread metrics have no timelines, and lockstep runs
    /// merge with empty ones, so in practice one side is always empty.
    ///
    /// This is the supported way to aggregate metrics across engines and
    /// threads; summing `by_kind` entries by hand is not.
    pub fn merge(&mut self, other: &Metrics) {
        self.up_total += other.up_total;
        self.down_total += other.down_total;
        self.broadcast_events += other.broadcast_events;
        self.up_bytes += other.up_bytes;
        self.down_bytes += other.down_bytes;
        for (kind, count) in &other.by_kind {
            *self.by_kind.entry(kind).or_insert(0) += count;
        }
        let mut timeline = std::mem::take(&mut self.timeline);
        timeline.extend_from_slice(&other.timeline);
        timeline.sort_by_key(|&(items, _)| items);
        self.timeline = timeline;
    }

    /// Appends a timeline snapshot.
    pub fn snapshot(&mut self, items_processed: u64) {
        self.timeline.push((items_processed, self.total()));
    }

    /// Count for one kind (0 if absent).
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_adds_up() {
        let mut m = Metrics::new();
        m.count_up("early", 1, 17);
        m.count_up("regular", 2, 50);
        m.count_broadcast("update_epoch", 1, 9, 8);
        m.count_unicast("ack", 1, 16);
        assert_eq!(m.up_total, 3);
        assert_eq!(m.down_total, 9);
        assert_eq!(m.total(), 12);
        assert_eq!(m.up_bytes, 67);
        assert_eq!(m.down_bytes, 9 * 8 + 16);
        assert_eq!(m.total_bytes(), 67 + 72 + 16);
        assert_eq!(m.kind("early"), 1);
        assert_eq!(m.kind("regular"), 2);
        assert_eq!(m.kind("update_epoch"), 8);
        assert_eq!(m.kind("missing"), 0);
        assert_eq!(m.broadcast_events, 1);
    }

    #[test]
    fn merge_adds_counters_keywise() {
        let mut a = Metrics::new();
        a.count_up("early", 2, 34);
        a.count_broadcast("update_epoch", 1, 9, 4);
        a.snapshot(10);
        let mut b = Metrics::new();
        b.count_up("early", 1, 17);
        b.count_up("regular", 3, 75);
        b.count_unicast("ack", 1, 16);
        a.merge(&b);
        assert_eq!(a.up_total, 6);
        assert_eq!(a.down_total, 4 + 1);
        assert_eq!(a.broadcast_events, 1);
        assert_eq!(a.up_bytes, 34 + 17 + 75);
        assert_eq!(a.down_bytes, 9 * 4 + 16);
        assert_eq!(a.kind("early"), 3);
        assert_eq!(a.kind("regular"), 3);
        assert_eq!(a.kind("update_epoch"), 4);
        assert_eq!(a.kind("ack"), 1);
        assert_eq!(a.timeline, vec![(10, 2 + 4)]);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Metrics::new();
        a.count_up("x", 7, 112);
        a.count_broadcast("y", 1, 8, 3);
        a.snapshot(5);
        let before = a.clone();
        a.merge(&Metrics::new());
        assert_eq!(a.up_total, before.up_total);
        assert_eq!(a.down_total, before.down_total);
        assert_eq!(a.by_kind, before.by_kind);
        assert_eq!(a.timeline, before.timeline);
        let mut fresh = Metrics::new();
        fresh.merge(&before);
        assert_eq!(fresh.total(), before.total());
        assert_eq!(fresh.total_bytes(), before.total_bytes());
        assert_eq!(fresh.by_kind, before.by_kind);
    }

    #[test]
    fn merge_is_associative_on_totals() {
        let mk = |seed: u64| {
            let mut m = Metrics::new();
            m.count_up("a", seed, seed * 10);
            m.count_unicast("b", seed + 1, seed * 3);
            m
        };
        let (x, y, z) = (mk(1), mk(2), mk(3));
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        assert_eq!(left.total(), right.total());
        assert_eq!(left.total_bytes(), right.total_bytes());
        assert_eq!(left.by_kind, right.by_kind);
    }

    #[test]
    fn timeline_snapshots() {
        let mut m = Metrics::new();
        m.count_up("x", 5, 80);
        m.snapshot(10);
        m.count_up("x", 5, 80);
        m.snapshot(20);
        assert_eq!(m.timeline, vec![(10, 5), (20, 10)]);
    }
}
