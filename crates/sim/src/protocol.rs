//! Protocol traits: what a site and a coordinator must implement to run
//! under the [`crate::runner::Runner`].

use dwrs_core::Item;

/// Message metadata used by the metrics layer.
///
/// `units` is the number of wire messages this value represents; protocols
/// that batch several logical messages into one value (e.g. the L1 tracker's
/// duplicated updates) report the faithful count here so measured message
/// complexity matches the unbatched protocol.
pub trait Meter {
    /// Short label for aggregation (e.g. `"early"`, `"regular"`).
    fn kind(&self) -> &'static str;
    /// Number of wire messages represented (default 1).
    fn units(&self) -> u64 {
        1
    }
    /// Encoded size in bytes.
    ///
    /// The default charges exactly **two machine words per wire message**
    /// (`2 × WORD_BYTES = 16` bytes) — the paper's Section 2.1 cost model,
    /// where every message carries O(1) words of Θ(log nW) bits and
    /// message count equals word count up to constants. It is a *model*
    /// figure for protocols without a codec, not a measured size: protocols
    /// with a real byte encoding must override it (the weighted SWOR
    /// messages report their exact `swor::wire` frame sizes of 5–25 bytes,
    /// still O(1) words but not equal to the default — asserted by
    /// `swor_meter_uses_exact_frame_sizes` in `adapters`).
    fn wire_bytes(&self) -> u64 {
        2 * (dwrs_core::swor::wire::WORD_BYTES as u64) * self.units()
    }
}

/// Site-side protocol endpoint.
pub trait SiteNode {
    /// Site → coordinator message type.
    type Up: Meter;
    /// Coordinator → site message type.
    type Down: Meter + Clone;

    /// Processes one stream item, pushing any upstream messages to `out`.
    fn observe(&mut self, item: Item, out: &mut Vec<Self::Up>);

    /// Processes one downstream message.
    fn receive(&mut self, msg: &Self::Down);

    /// Called once after the site's stream is exhausted, before the final
    /// flush: protocols whose answer is assembled at end-of-stream (e.g.
    /// the sliding-window sampler shipping its retained set) push their
    /// closing messages here. The default is a no-op — per-item protocols
    /// need nothing at shutdown.
    fn finish(&mut self, out: &mut Vec<Self::Up>) {
        let _ = out;
    }
}

/// Coordinator-side protocol endpoint.
pub trait CoordinatorNode {
    /// Site → coordinator message type.
    type Up: Meter;
    /// Coordinator → site message type.
    type Down: Meter + Clone;

    /// Processes one upstream message from site `from`, pushing responses
    /// into `out`.
    fn receive(&mut self, from: usize, msg: Self::Up, out: &mut Outbox<Self::Down>);
}

/// Collector for coordinator responses within one round.
#[derive(Debug)]
pub struct Outbox<D> {
    pub(crate) unicasts: Vec<(usize, D)>,
    pub(crate) broadcasts: Vec<D>,
}

impl<D> Default for Outbox<D> {
    fn default() -> Self {
        Self {
            unicasts: Vec::new(),
            broadcasts: Vec::new(),
        }
    }
}

impl<D> Outbox<D> {
    /// New empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `msg` to a single site (costs 1 message).
    pub fn unicast(&mut self, to: usize, msg: D) {
        self.unicasts.push((to, msg));
    }

    /// Sends `msg` to every site (costs `k` messages, per the paper's
    /// accounting).
    pub fn broadcast(&mut self, msg: D) {
        self.broadcasts.push(msg);
    }

    /// Removes and returns everything queued: `(unicasts, broadcasts)`.
    /// This is how execution substrates (the lockstep [`crate::Runner`],
    /// the `dwrs-runtime` thread/TCP engines) route coordinator responses.
    pub fn take(&mut self) -> (Vec<(usize, D)>, Vec<D>) {
        (
            std::mem::take(&mut self.unicasts),
            std::mem::take(&mut self.broadcasts),
        )
    }

    /// Whether nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.unicasts.is_empty() && self.broadcasts.is_empty()
    }

    /// Drops all queued messages (between rounds).
    pub fn clear(&mut self) {
        self.unicasts.clear();
        self.broadcasts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects() {
        let mut ob: Outbox<u32> = Outbox::new();
        assert!(ob.is_empty());
        ob.unicast(3, 7);
        ob.broadcast(9);
        assert!(!ob.is_empty());
        assert_eq!(ob.unicasts, vec![(3, 7)]);
        assert_eq!(ob.broadcasts, vec![9]);
        ob.clear();
        assert!(ob.is_empty());
    }

    #[test]
    fn outbox_take_drains() {
        let mut ob: Outbox<u32> = Outbox::new();
        ob.unicast(1, 5);
        ob.broadcast(6);
        let (uni, bcast) = ob.take();
        assert_eq!(uni, vec![(1, 5)]);
        assert_eq!(bcast, vec![6]);
        assert!(ob.is_empty());
    }
}
