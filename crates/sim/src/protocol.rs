//! Protocol traits: what a site and a coordinator must implement to run
//! under the [`crate::runner::Runner`].

use dwrs_core::Item;

/// Message metadata used by the metrics layer.
///
/// `units` is the number of wire messages this value represents; protocols
/// that batch several logical messages into one value (e.g. the L1 tracker's
/// duplicated updates) report the faithful count here so measured message
/// complexity matches the unbatched protocol.
pub trait Meter {
    /// Short label for aggregation (e.g. `"early"`, `"regular"`).
    fn kind(&self) -> &'static str;
    /// Number of wire messages represented (default 1).
    fn units(&self) -> u64 {
        1
    }
    /// Encoded size in bytes (default: two machine words per wire message;
    /// protocols with a real codec override this — the weighted SWOR
    /// messages use their exact `swor::wire` frame sizes).
    fn wire_bytes(&self) -> u64 {
        16 * self.units()
    }
}

/// Site-side protocol endpoint.
pub trait SiteNode {
    /// Site → coordinator message type.
    type Up: Meter;
    /// Coordinator → site message type.
    type Down: Meter + Clone;

    /// Processes one stream item, pushing any upstream messages to `out`.
    fn observe(&mut self, item: Item, out: &mut Vec<Self::Up>);

    /// Processes one downstream message.
    fn receive(&mut self, msg: &Self::Down);
}

/// Coordinator-side protocol endpoint.
pub trait CoordinatorNode {
    /// Site → coordinator message type.
    type Up: Meter;
    /// Coordinator → site message type.
    type Down: Meter + Clone;

    /// Processes one upstream message from site `from`, pushing responses
    /// into `out`.
    fn receive(&mut self, from: usize, msg: Self::Up, out: &mut Outbox<Self::Down>);
}

/// Collector for coordinator responses within one round.
#[derive(Debug)]
pub struct Outbox<D> {
    pub(crate) unicasts: Vec<(usize, D)>,
    pub(crate) broadcasts: Vec<D>,
}

impl<D> Default for Outbox<D> {
    fn default() -> Self {
        Self {
            unicasts: Vec::new(),
            broadcasts: Vec::new(),
        }
    }
}

impl<D> Outbox<D> {
    /// New empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `msg` to a single site (costs 1 message).
    pub fn unicast(&mut self, to: usize, msg: D) {
        self.unicasts.push((to, msg));
    }

    /// Sends `msg` to every site (costs `k` messages, per the paper's
    /// accounting).
    pub fn broadcast(&mut self, msg: D) {
        self.broadcasts.push(msg);
    }

    /// Whether nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.unicasts.is_empty() && self.broadcasts.is_empty()
    }

    /// Drops all queued messages (between rounds).
    pub fn clear(&mut self) {
        self.unicasts.clear();
        self.broadcasts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects() {
        let mut ob: Outbox<u32> = Outbox::new();
        assert!(ob.is_empty());
        ob.unicast(3, 7);
        ob.broadcast(9);
        assert!(!ob.is_empty());
        assert_eq!(ob.unicasts, vec![(3, 7)]);
        assert_eq!(ob.broadcasts, vec![9]);
        ob.clear();
        assert!(ob.is_empty());
    }
}
